//! Readiness shim for the release server: `epoll(7)` on Linux, a
//! `poll(2)` fallback for other unixes, and a rotation-cadence simulator
//! off unix — plus the [`TimerWheel`] that makes deadline reaping exact
//! instead of cadence-quantized.
//!
//! The workspace vendors no libc crate, so — in the style of
//! `shutdown.rs`'s `signal(2)` binding — the syscalls are bound directly
//! with `extern "C"` declarations against the platform libc that std
//! already links. No new dependencies.
//!
//! ## Semantics
//!
//! Registrations are **one-shot**: an fd armed with [`Poller::register`]
//! or [`Poller::rearm`] delivers at most one event and is then disarmed
//! until re-armed. That is what makes a single poller safe to `wait` on
//! from many worker threads at once — the kernel (or the fallback's
//! dispatch queue) hands each readiness event to exactly one waiter, so
//! two workers can never service the same connection concurrently.
//! Events may be *spurious* (readiness that yields zero bytes); callers
//! must already tolerate `WouldBlock`, and the simulator backend leans on
//! that tolerance hard (it reports every armed fd as ready on a short
//! cadence, which is exactly the PR 7 rotation behavior).
//!
//! Every wakeup, dispatched event, spurious wakeup, and timer fire is
//! counted ([`Poller::stats`]) and exposed in `/v1/status` under
//! `"poller"` so a saturation run is explainable from the status
//! endpoint.

use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token reserved for the poller's internal wake pipe; user tokens must
/// stay below it.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Which readiness backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Pick the best available: epoll on Linux, poll(2) on other
    /// unixes, the simulator elsewhere.
    Auto,
    /// Linux `epoll(7)` (one-shot, level-triggered).
    Epoll,
    /// Portable `poll(2)` — one poller thread at a time, events fanned
    /// out through a dispatch queue.
    Poll,
    /// No OS readiness at all: report every armed fd ready on a short
    /// cadence. The only backend available off unix.
    Sim,
}

impl Backend {
    /// Parse a `--poller` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Backend::Auto),
            "epoll" => Ok(Backend::Epoll),
            "poll" => Ok(Backend::Poll),
            "sim" => Ok(Backend::Sim),
            other => Err(format!("bad --poller {other:?} (auto|epoll|poll|sim)")),
        }
    }
}

/// Read/write interest for one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
}

/// One readiness event, tagged with the registration's token.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (includes hangup/error — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Monotonic counters, snapshot via [`Poller::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PollerStats {
    /// `wait` calls that returned (with or without events).
    pub wakeups: u64,
    /// Events handed to workers.
    pub events: u64,
    /// Wakeups that carried no events and fired no timers.
    pub spurious: u64,
    /// Timer-wheel entries that came due and were acted on.
    pub timer_fires: u64,
    /// Currently registered fds.
    pub registered: u64,
}

#[derive(Default)]
struct Counters {
    wakeups: AtomicU64,
    events: AtomicU64,
    spurious: AtomicU64,
    timer_fires: AtomicU64,
    registered: AtomicU64,
}

/// The readiness poller: register nonblocking fds under tokens, then
/// `wait` from any number of worker threads.
pub struct Poller {
    imp: Imp,
    counters: Counters,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    #[cfg(unix)]
    Poll(pollfd::PollBackend),
    Sim(sim::SimBackend),
}

impl Poller {
    /// Open a poller with the requested backend. `Auto` picks the best
    /// available for the target; asking for an unavailable backend is an
    /// `Unsupported` error (the caller can fall back or refuse loudly).
    pub fn new(backend: Backend) -> io::Result<Poller> {
        let imp = match backend {
            Backend::Auto => {
                #[cfg(target_os = "linux")]
                {
                    Imp::Epoll(epoll::Epoll::new()?)
                }
                #[cfg(all(unix, not(target_os = "linux")))]
                {
                    Imp::Poll(pollfd::PollBackend::new()?)
                }
                #[cfg(not(unix))]
                {
                    Imp::Sim(sim::SimBackend::new())
                }
            }
            Backend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    Imp::Epoll(epoll::Epoll::new()?)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll is Linux-only (use --poller auto)",
                    ));
                }
            }
            Backend::Poll => {
                #[cfg(unix)]
                {
                    Imp::Poll(pollfd::PollBackend::new()?)
                }
                #[cfg(not(unix))]
                {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "poll(2) needs a unix target (use --poller sim)",
                    ));
                }
            }
            Backend::Sim => Imp::Sim(sim::SimBackend::new()),
        };
        Ok(Poller {
            imp,
            counters: Counters::default(),
        })
    }

    /// The backend actually running (after `Auto` resolution).
    pub fn backend_name(&self) -> &'static str {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => "epoll",
            #[cfg(unix)]
            Imp::Poll(_) => "poll",
            Imp::Sim(_) => "sim",
        }
    }

    /// Register `fd` under `token` with one-shot `interest`. The token
    /// must be unique among live registrations and below [`WAKE_TOKEN`].
    pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert!(token < WAKE_TOKEN);
        let r = match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.register(fd, token, interest),
            #[cfg(unix)]
            Imp::Poll(p) => p.register(fd, token, interest),
            Imp::Sim(s) => s.register(fd, token, interest),
        };
        if r.is_ok() {
            self.counters.registered.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Re-arm an existing registration (after its one-shot fired).
    pub fn rearm(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.rearm(fd, token, interest),
            #[cfg(unix)]
            Imp::Poll(p) => p.rearm(fd, token, interest),
            Imp::Sim(s) => s.rearm(fd, token, interest),
        }
    }

    /// Remove a registration entirely (before closing the fd).
    pub fn deregister(&self, fd: i32, token: u64) {
        let removed = match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.deregister(fd, token),
            #[cfg(unix)]
            Imp::Poll(p) => p.deregister(fd, token),
            Imp::Sim(s) => s.deregister(fd, token),
        };
        if removed {
            self.counters.registered.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Block until readiness, `timeout`, or a [`Poller::wake`]. Appends
    /// events to `out` (which the caller should clear first). Multiple
    /// threads may wait concurrently; each event goes to exactly one.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        let before = out.len();
        let r = match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.wait(out, timeout),
            #[cfg(unix)]
            Imp::Poll(p) => p.wait(out, timeout),
            Imp::Sim(s) => s.wait(out, timeout),
        };
        self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
        let n = (out.len() - before) as u64;
        if n > 0 {
            self.counters.events.fetch_add(n, Ordering::Relaxed);
        }
        r
    }

    /// Interrupt one in-flight `wait` (shutdown, or a registration change
    /// the fallback backend's active poll set must pick up).
    pub fn wake(&self) {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(e) => e.wake(),
            #[cfg(unix)]
            Imp::Poll(p) => p.wake(),
            Imp::Sim(s) => s.wake(),
        }
    }

    /// Record a wakeup that carried no events and fired no timers.
    pub fn note_spurious(&self) {
        self.counters.spurious.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` timer-wheel entries coming due.
    pub fn note_timer_fires(&self, n: u64) {
        self.counters.timer_fires.fetch_add(n, Ordering::Relaxed);
    }

    /// Counter snapshot for `/v1/status`.
    pub fn stats(&self) -> PollerStats {
        PollerStats {
            wakeups: self.counters.wakeups.load(Ordering::Relaxed),
            events: self.counters.events.load(Ordering::Relaxed),
            spurious: self.counters.spurious.load(Ordering::Relaxed),
            timer_fires: self.counters.timer_fires.load(Ordering::Relaxed),
            registered: self.counters.registered.load(Ordering::Relaxed),
        }
    }
}

/// Clamp a `Duration` to a nonzero poll-style millisecond timeout
/// (rounding a sub-millisecond wait *up* so a 0 never busy-spins).
#[cfg(unix)]
fn timeout_ms(timeout: Duration) -> i32 {
    if timeout.is_zero() {
        return 0;
    }
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    ms.max(1)
}

// ---------------------------------------------------------------------------
// Shared unix plumbing: the self-pipe used to interrupt a blocked wait.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod pipe {
    use std::io;

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x4;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    /// A nonblocking self-pipe: `notify` makes the read end readable.
    pub struct WakePipe {
        pub r: i32,
        w: i32,
    }

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [0_i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                unsafe {
                    let flags = fcntl(fd, F_GETFL, 0);
                    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
                }
            }
            Ok(WakePipe {
                r: fds[0],
                w: fds[1],
            })
        }

        pub fn notify(&self) {
            let byte = 1_u8;
            // A full pipe already guarantees the next wait wakes.
            let _ = unsafe { write(self.w, &byte, 1) };
        }

        /// Drain pending wake bytes (called at the top of each poll
        /// round so stale wakes don't spin).
        pub fn drain(&self) {
            let mut sink = [0_u8; 64];
            while unsafe { read(self.r, sink.as_mut_ptr(), sink.len()) } > 0 {}
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                close(self.r);
                close(self.w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::pipe::WakePipe;
    use super::{timeout_ms, Event, Interest, WAKE_TOKEN};
    use std::io;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const MAX_EVENTS: usize = 64;

    /// `struct epoll_event` — packed on x86_64 (kernel ABI), natural
    /// alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP | EPOLLONESHOT;
        if interest.read {
            bits |= EPOLLIN;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub struct Epoll {
        epfd: i32,
        wake: WakePipe,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let wake = WakePipe::new()?;
            // The wake pipe is level-triggered and NOT one-shot: a wake
            // byte keeps firing until drained at the top of a wait.
            ctl(epfd, EPOLL_CTL_ADD, wake.r, EPOLLIN, WAKE_TOKEN)?;
            Ok(Epoll { epfd, wake })
        }

        pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_ADD, fd, interest_bits(interest), token)
        }

        pub fn rearm(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_MOD, fd, interest_bits(interest), token)
        }

        pub fn deregister(&self, fd: i32, _token: u64) -> bool {
            ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0).is_ok()
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // counted as a (spurious) wakeup
                }
                return Err(e);
            }
            for ev in events.iter().take(n as usize) {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    self.wake.drain();
                    continue;
                }
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        pub fn wake(&self) {
            self.wake.notify();
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend (portable unix fallback)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod pollfd {
    use super::pipe::WakePipe;
    use super::{timeout_ms, Event, Interest};
    use std::collections::{HashMap, VecDeque};
    use std::io;
    use std::sync::Condvar;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    struct Registration {
        fd: i32,
        interest: Interest,
        armed: bool,
    }

    /// One thread at a time runs the actual `poll(2)` (serialized by
    /// `poll_lock`); delivered events are disarmed and fanned out to the
    /// other waiters through `pending` + the condvar. Re-arms from
    /// serving threads poke the wake pipe so the in-flight poll picks
    /// the fd back up immediately instead of on the next round.
    pub struct PollBackend {
        reg: Mutex<HashMap<u64, Registration>>,
        pending: Mutex<VecDeque<Event>>,
        ready: Condvar,
        poll_lock: Mutex<()>,
        wake: WakePipe,
    }

    impl PollBackend {
        pub fn new() -> io::Result<PollBackend> {
            Ok(PollBackend {
                reg: Mutex::new(HashMap::new()),
                pending: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                poll_lock: Mutex::new(()),
                wake: WakePipe::new()?,
            })
        }

        pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.reg.lock().expect("poller poisoned").insert(
                token,
                Registration {
                    fd,
                    interest,
                    armed: true,
                },
            );
            self.wake.notify();
            Ok(())
        }

        pub fn rearm(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, _fd: i32, token: u64) -> bool {
            self.reg
                .lock()
                .expect("poller poisoned")
                .remove(&token)
                .is_some()
        }

        pub fn wake(&self) {
            self.wake.notify();
            self.ready.notify_all();
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let deadline = Instant::now() + timeout;
            loop {
                {
                    let mut p = self.pending.lock().expect("poller poisoned");
                    if !p.is_empty() {
                        out.extend(p.drain(..));
                        return Ok(());
                    }
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                match self.poll_lock.try_lock() {
                    Ok(_guard) => {
                        let got = self.poll_once(remaining)?;
                        if got == 0 {
                            return Ok(()); // timed out (or pure wake)
                        }
                        self.ready.notify_all();
                        // Loop: drain our share from `pending`.
                    }
                    Err(_) => {
                        // Another thread is polling; wait for fan-out.
                        if remaining.is_zero() {
                            return Ok(());
                        }
                        let p = self.pending.lock().expect("poller poisoned");
                        let (mut p, _) = self
                            .ready
                            .wait_timeout(p, remaining.min(Duration::from_millis(50)))
                            .expect("poller poisoned");
                        if !p.is_empty() {
                            out.extend(p.drain(..));
                            return Ok(());
                        }
                        if Instant::now() >= deadline {
                            return Ok(());
                        }
                    }
                }
            }
        }

        /// Run one `poll(2)` over the armed set; deliver into `pending`.
        /// Returns the number of events delivered.
        fn poll_once(&self, timeout: Duration) -> io::Result<usize> {
            self.wake.drain();
            let mut fds = vec![PollFd {
                fd: self.wake.r,
                events: POLLIN,
                revents: 0,
            }];
            let mut tokens = vec![u64::MAX];
            {
                let reg = self.reg.lock().expect("poller poisoned");
                for (&token, r) in reg.iter() {
                    if !r.armed {
                        continue;
                    }
                    let mut events = 0_i16;
                    if r.interest.read {
                        events |= POLLIN;
                    }
                    if r.interest.write {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd: r.fd,
                        events,
                        revents: 0,
                    });
                    tokens.push(token);
                }
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            let mut delivered = 0;
            let mut reg = self.reg.lock().expect("poller poisoned");
            let mut pending = self.pending.lock().expect("poller poisoned");
            for (f, &token) in fds.iter().zip(&tokens).skip(1) {
                if f.revents == 0 {
                    continue;
                }
                // Disarm (one-shot semantics) — unless the registration
                // was replaced mid-poll, in which case the event may be
                // stale and the new arm must win.
                match reg.get_mut(&token) {
                    Some(r) if r.fd == f.fd => r.armed = false,
                    _ => continue,
                }
                pending.push_back(Event {
                    token,
                    readable: f.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0,
                    writable: f.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0,
                });
                delivered += 1;
            }
            Ok(delivered)
        }
    }
}

// ---------------------------------------------------------------------------
// Simulator backend (non-unix): the old rotation cadence as a Poller.
// ---------------------------------------------------------------------------

mod sim {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// No OS readiness: report every armed registration as ready on a
    /// short cadence (the PR 7 rotation behavior, spurious-wakeup-heavy
    /// but correct, since callers tolerate `WouldBlock`). The cadence
    /// sleep is the simulator's version of the old accept-loop backoff.
    const CADENCE: Duration = Duration::from_millis(5);

    pub struct SimBackend {
        reg: Mutex<HashMap<u64, (Interest, bool)>>,
        ready: Condvar,
    }

    impl SimBackend {
        pub fn new() -> SimBackend {
            SimBackend {
                reg: Mutex::new(HashMap::new()),
                ready: Condvar::new(),
            }
        }

        pub fn register(&self, _fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.reg
                .lock()
                .expect("poller poisoned")
                .insert(token, (interest, true));
            self.ready.notify_all();
            Ok(())
        }

        pub fn rearm(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, _fd: i32, token: u64) -> bool {
            self.reg
                .lock()
                .expect("poller poisoned")
                .remove(&token)
                .is_some()
        }

        pub fn wake(&self) {
            self.ready.notify_all();
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            let reg = self.reg.lock().expect("poller poisoned");
            // Pace every round: this is what keeps spurious "everything
            // is ready" reporting from becoming a hot spin.
            let (mut reg, _) = self
                .ready
                .wait_timeout(reg, timeout.min(CADENCE))
                .expect("poller poisoned");
            for (&token, entry) in reg.iter_mut() {
                if !entry.1 {
                    continue;
                }
                entry.1 = false;
                out.push(Event {
                    token,
                    readable: entry.0.read,
                    writable: entry.0.write,
                });
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Deadline timers keyed by token: arm on park, cancel on take, pop the
/// due set after each poller wakeup. Re-arming a token supersedes its
/// previous deadline; cancellation is O(1) with stale heap entries
/// dropped lazily. `next_deadline` is what makes reaping *exact*: the
/// worker's wait timeout is the distance to the earliest live deadline,
/// not a fixed cadence.
pub struct TimerWheel {
    inner: Mutex<WheelInner>,
}

struct WheelInner {
    /// Min-heap of (deadline, token, gen); entries whose gen no longer
    /// matches `live[token]` are stale and skipped.
    heap: BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
    /// The currently-armed generation per token.
    live: HashMap<u64, u64>,
    next_gen: u64,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel {
            inner: Mutex::new(WheelInner {
                heap: BinaryHeap::new(),
                live: HashMap::new(),
                next_gen: 0,
            }),
        }
    }

    /// Arm (or re-arm) `token` to fire at `at`. Any previous deadline
    /// for the token is superseded.
    pub fn arm(&self, token: u64, at: Instant) {
        let mut w = self.inner.lock().expect("timer wheel poisoned");
        w.next_gen += 1;
        let gen = w.next_gen;
        w.live.insert(token, gen);
        w.heap.push(std::cmp::Reverse((at, token, gen)));
    }

    /// Cancel `token`'s pending deadline (no-op if none).
    pub fn cancel(&self, token: u64) {
        self.inner
            .lock()
            .expect("timer wheel poisoned")
            .live
            .remove(&token);
    }

    /// The earliest live deadline, if any (stale entries pruned).
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut w = self.inner.lock().expect("timer wheel poisoned");
        loop {
            let &std::cmp::Reverse((at, token, gen)) = w.heap.peek()?;
            if w.live.get(&token) == Some(&gen) {
                return Some(at);
            }
            w.heap.pop();
        }
    }

    /// Pop every token whose deadline is `<= now` into `out`, earliest
    /// first. Fired tokens are disarmed (re-arm to keep watching).
    pub fn pop_due(&self, now: Instant, out: &mut Vec<u64>) {
        let mut w = self.inner.lock().expect("timer wheel poisoned");
        while let Some(&std::cmp::Reverse((at, token, gen))) = w.heap.peek() {
            if w.live.get(&token) != Some(&gen) {
                w.heap.pop();
                continue;
            }
            if at > now {
                break;
            }
            w.heap.pop();
            w.live.remove(&token);
            out.push(token);
        }
    }

    /// Number of live (non-stale) timers.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("timer wheel poisoned").live.len()
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn timers_fire_in_expiry_order() {
        let wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.arm(3, t(base, 30));
        wheel.arm(1, t(base, 10));
        wheel.arm(2, t(base, 20));
        assert_eq!(wheel.next_deadline(), Some(t(base, 10)));
        let mut due = Vec::new();
        wheel.pop_due(t(base, 25), &mut due);
        assert_eq!(due, vec![1, 2], "earliest first, only the due ones");
        assert_eq!(wheel.next_deadline(), Some(t(base, 30)));
        wheel.pop_due(t(base, 30), &mut due);
        assert_eq!(due, vec![1, 2, 3]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn rearm_supersedes_the_previous_deadline() {
        let wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.arm(7, t(base, 10));
        wheel.arm(7, t(base, 50)); // pushed out: the 10 ms entry is stale
        let mut due = Vec::new();
        wheel.pop_due(t(base, 20), &mut due);
        assert!(due.is_empty(), "superseded deadline must not fire");
        assert_eq!(wheel.next_deadline(), Some(t(base, 50)));
        wheel.pop_due(t(base, 50), &mut due);
        assert_eq!(due, vec![7], "fires exactly once at the new deadline");

        // Re-arm to an *earlier* instant also wins.
        wheel.arm(7, t(base, 100));
        wheel.arm(7, t(base, 60));
        assert_eq!(wheel.next_deadline(), Some(t(base, 60)));
    }

    #[test]
    fn cancellation_on_close_drops_the_timer() {
        let wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.arm(1, t(base, 10));
        wheel.arm(2, t(base, 15));
        wheel.cancel(1);
        assert_eq!(wheel.len(), 1);
        assert_eq!(
            wheel.next_deadline(),
            Some(t(base, 15)),
            "stale head is pruned"
        );
        let mut due = Vec::new();
        wheel.pop_due(t(base, 60), &mut due);
        assert_eq!(due, vec![2], "cancelled token never fires");
        // Cancelling an unknown token is a no-op.
        wheel.cancel(99);
    }

    #[test]
    fn fired_timers_disarm_until_rearmed() {
        let wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.arm(5, t(base, 5));
        let mut due = Vec::new();
        wheel.pop_due(t(base, 10), &mut due);
        assert_eq!(due, vec![5]);
        due.clear();
        wheel.pop_due(t(base, 1000), &mut due);
        assert!(due.is_empty(), "a fired timer stays quiet until re-armed");
        wheel.arm(5, t(base, 20));
        wheel.pop_due(t(base, 25), &mut due);
        assert_eq!(due, vec![5]);
    }

    #[test]
    fn backend_parse_and_auto_open() {
        assert_eq!(Backend::parse("auto").unwrap(), Backend::Auto);
        assert_eq!(Backend::parse("epoll").unwrap(), Backend::Epoll);
        assert_eq!(Backend::parse("poll").unwrap(), Backend::Poll);
        assert_eq!(Backend::parse("sim").unwrap(), Backend::Sim);
        assert!(Backend::parse("kqueue").is_err());
        let p = Poller::new(Backend::Auto).unwrap();
        #[cfg(target_os = "linux")]
        assert_eq!(p.backend_name(), "epoll");
        let stats = p.stats();
        assert_eq!(stats.registered, 0);
    }

    /// The poller actually delivers readiness for a real socket pair —
    /// exercised for every backend available on this target.
    #[cfg(unix)]
    #[test]
    fn delivers_readiness_for_a_socketpair() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        let backends: &[Backend] = if cfg!(target_os = "linux") {
            &[Backend::Epoll, Backend::Poll, Backend::Sim]
        } else {
            &[Backend::Poll, Backend::Sim]
        };
        for &backend in backends {
            let poller = Poller::new(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            poller
                .register(server_side.as_raw_fd(), 42, Interest::READ)
                .unwrap();
            assert_eq!(poller.stats().registered, 1);

            client.write_all(b"ping").unwrap();
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut got = false;
            while Instant::now() < deadline && !got {
                events.clear();
                poller
                    .wait(&mut events, Duration::from_millis(100))
                    .unwrap();
                for ev in &events {
                    if ev.token == 42 {
                        // Sim reports spuriously; real backends only on data.
                        assert!(ev.readable, "{backend:?}");
                        got = true;
                    }
                }
            }
            assert!(got, "{backend:?} never delivered readiness");
            poller.deregister(server_side.as_raw_fd(), 42);
            assert_eq!(poller.stats().registered, 0);
            assert!(poller.stats().wakeups >= 1);
        }
    }

    /// `wake` interrupts a blocked wait promptly (the shutdown path).
    #[test]
    fn wake_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new(Backend::Auto).unwrap());
        let p2 = std::sync::Arc::clone(&poller);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            p2.wake();
        });
        let t0 = Instant::now();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(10)).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "wake did not interrupt the wait"
        );
        waker.join().unwrap();
    }
}
