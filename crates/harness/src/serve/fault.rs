//! Deterministic fault injection for the spend journal.
//!
//! [`FaultyIo`] is an in-memory [`JournalIo`](super::journal::JournalIo)
//! whose failures are scheduled by operation index, mirroring the
//! `FaultyTransport` design from the fleet layer: a test declares
//! *exactly* which append tears at which byte and which fsync fails, so
//! every crash-consistency scenario is a seeded, replayable case rather
//! than a race.
//!
//! The backing "disk" is an `Arc<Mutex<Vec<u8>>>` handed out via
//! [`FaultyIo::disk_handle`]. Simulating a crash is therefore just:
//! snapshot the bytes (optionally tearing the tail at byte *k*), build a
//! fresh `FaultyIo` over the snapshot, and reopen the accountant — the
//! same reopen path production takes after a real power loss.

use super::journal::JournalIo;
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::{Arc, Mutex};

/// How a scheduled append fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// A short write: the first `keep` bytes land, then the write errors
    /// (what a crash or full disk mid-`write(2)` leaves behind).
    Short {
        /// Bytes that reach the disk before the failure.
        keep: usize,
    },
    /// Out of space before any byte lands.
    Enospc,
}

/// In-memory journal storage with scheduled failures.
pub struct FaultyIo {
    disk: Arc<Mutex<Vec<u8>>>,
    appends: u64,
    syncs: u64,
    append_faults: HashMap<u64, AppendFault>,
    sync_faults: HashSet<u64>,
    truncate_fails: bool,
}

impl FaultyIo {
    /// Fresh empty disk, no faults scheduled.
    pub fn new() -> Self {
        Self::over(Arc::new(Mutex::new(Vec::new())))
    }

    /// IO over an existing disk image (e.g. a post-crash snapshot).
    pub fn over(disk: Arc<Mutex<Vec<u8>>>) -> Self {
        Self {
            disk,
            appends: 0,
            syncs: 0,
            append_faults: HashMap::new(),
            sync_faults: HashSet::new(),
            truncate_fails: false,
        }
    }

    /// Schedule the `idx`-th append (0-based, counting every call
    /// including `open_with`'s header/newline writes) to fail as `fault`.
    pub fn fail_append(mut self, idx: u64, fault: AppendFault) -> Self {
        self.append_faults.insert(idx, fault);
        self
    }

    /// Schedule the `idx`-th sync (0-based) to fail.
    pub fn fail_sync(mut self, idx: u64) -> Self {
        self.sync_faults.insert(idx);
        self
    }

    /// Make every truncate fail — a dead disk, forcing the journal's
    /// wedge path when an append repair is attempted.
    pub fn fail_truncate(mut self) -> Self {
        self.truncate_fails = true;
        self
    }

    /// Shared handle to the backing bytes (survives dropping the IO —
    /// the "disk" outliving the "process").
    pub fn disk_handle(&self) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(&self.disk)
    }
}

impl Default for FaultyIo {
    fn default() -> Self {
        Self::new()
    }
}

impl JournalIo for FaultyIo {
    fn read(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.disk.lock().expect("disk lock").clone())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if self.truncate_fails {
            return Err(io::Error::other("injected truncate failure (dead disk)"));
        }
        let mut disk = self.disk.lock().expect("disk lock");
        if (len as usize) <= disk.len() {
            disk.truncate(len as usize);
        }
        Ok(())
    }

    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let idx = self.appends;
        self.appends += 1;
        match self.append_faults.get(&idx) {
            Some(AppendFault::Short { keep }) => {
                let keep = (*keep).min(data.len());
                self.disk
                    .lock()
                    .expect("disk lock")
                    .extend_from_slice(&data[..keep]);
                Err(io::Error::other(format!(
                    "injected short write: {keep}/{} bytes",
                    data.len()
                )))
            }
            Some(AppendFault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC: no space left on device",
            )),
            None => {
                self.disk.lock().expect("disk lock").extend_from_slice(data);
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let idx = self.syncs;
        self.syncs += 1;
        if self.sync_faults.contains(&idx) {
            return Err(io::Error::other("injected fsync failure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::journal::{JournalOp, SpendJournal};

    #[test]
    fn short_write_is_repaired_by_truncate() {
        // Append 0 is the header; append 1 tears after 7 bytes.
        let io = FaultyIo::new().fail_append(1, AppendFault::Short { keep: 7 });
        let disk = io.disk_handle();
        let (mut j, _) = SpendJournal::open_with(Box::new(io)).unwrap();
        let err = j.append("a", JournalOp::Spend, 0.5).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert!(!j.is_wedged(), "repair succeeded, journal stays usable");
        // The torn bytes were truncated away; the next append lands clean.
        j.append("a", JournalOp::Spend, 0.25).unwrap();
        let bytes = disk.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2, "header + one record:\n{text}");
        assert!(text.contains("\"eps\":0.25"));
        assert!(!text.contains("0.5"), "torn record fully gone:\n{text}");
    }

    #[test]
    fn failed_repair_wedges_the_journal() {
        let io = FaultyIo::new()
            .fail_append(1, AppendFault::Short { keep: 3 })
            .fail_truncate();
        let disk = io.disk_handle();
        let (mut j, _) = SpendJournal::open_with(Box::new(io)).unwrap();
        let err = j.append("a", JournalOp::Spend, 0.5).unwrap_err();
        assert!(err.to_string().contains("wedged"), "{err}");
        assert!(j.is_wedged());
        let err2 = j.append("a", JournalOp::Spend, 0.1).unwrap_err();
        assert!(err2.to_string().contains("wedged"), "{err2}");
        // Crash + reopen: the torn 3 bytes are the final line, healed by
        // the open-time truncate (a fresh IO whose truncate works).
        let (_, replayed) = SpendJournal::open_with(Box::new(FaultyIo::over(disk))).unwrap();
        assert!(replayed.is_empty(), "no record survived, none invented");
    }

    #[test]
    fn enospc_leaves_disk_untouched() {
        let io = FaultyIo::new().fail_append(1, AppendFault::Enospc);
        let disk = io.disk_handle();
        let (mut j, _) = SpendJournal::open_with(Box::new(io)).unwrap();
        let before = disk.lock().unwrap().clone();
        let err = j.append("a", JournalOp::Spend, 0.5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(*disk.lock().unwrap(), before, "nothing landed");
        assert!(!j.is_wedged());
        j.append("a", JournalOp::Spend, 0.25).unwrap();
    }
}
