//! `dpbench serve` — an online DP release server with per-tenant budget
//! accounting.
//!
//! The paper evaluates mechanisms in batch, but its framing — many users
//! each spending a small privacy budget on range-query workloads — is an
//! online service. This module is that service, built entirely on the
//! batch machinery the harness already trusts:
//!
//! - [`http`] — a hand-rolled HTTP/1.1 layer over `std::net::TcpListener`
//!   (the workspace is offline-vendored; no tokio/hyper): request
//!   parsing, keep-alive, and a flat-JSON body parser.
//! - [`accountant`] — [`TenantAccountant`], per-tenant ε budgets on the
//!   existing `BudgetLedger` with atomic check-and-reserve before
//!   `Plan::execute`, refund on mechanism error, and 429-style admission
//!   control once a tenant's ε is exhausted.
//! - [`journal`] — a persistent JSONL spend journal with the sink
//!   module's strict-reader discipline (mid-file corruption is a hard
//!   error; only a torn final line is healed), so a restarted server
//!   recovers **bit-exact** balances by replaying the same float ops in
//!   the same order.
//! - [`batcher`] — groups same-strategy, same-ε requests arriving within
//!   a short window into one `Plan::execute`; every joiner still reserves
//!   its own ε (sharing one released value with more recipients is
//!   post-processing and costs nothing extra against the data).
//! - [`poller`] — the readiness layer: a raw `extern "C"` epoll binding
//!   on Linux (one-shot events, any worker can wait), a serialized
//!   `poll(2)` fallback for other unixes, a dependency-free timer wheel
//!   for connection deadlines, and a self-pipe wakeup.
//! - [`server`] — the event-driven worker pool, router, and endpoints:
//!   `POST /v1/release`, `GET /v1/tenants/:id/budget`, `GET /v1/status`,
//!   `GET /v1/healthz`, `GET /v1/readyz`, `POST /v1/admin/reload`.
//!   Connections park on the poller between requests, so a slow or idle
//!   peer costs a wakeup per byte — never a pinned worker or a scan
//!   cadence.
//! - [`limits`] — the hostile-world knobs: connection caps, header/idle/
//!   write deadlines, admission-queue bounds, and per-tenant token-bucket
//!   rate limits. Violations answer with clean 408/413/429/431/503 (see
//!   the README's "Failure modes & error contract" table).
//! - [`fault`] — deterministic fault injection ([`fault::FaultyIo`]) for
//!   the journal's [`journal::JournalIo`] seam: short writes, fsync
//!   errors, torn tails, ENOSPC — so crash consistency is a seeded test
//!   matrix, not a hope.
//! - [`shutdown`] — process-wide SIGINT/SIGTERM flag (no deps: a plain
//!   `extern "C"` binding to `signal(2)`), polled by the accept loop and
//!   by `dpbench run`'s cancel hook so both drain and flush before exit;
//!   plus the SIGHUP → tenant-reload flag for `dpbench serve`.
//!
//! The `PlanCache` is shared across requests (it was already concurrent
//! and keyed by content), so a repeated release request skips strategy
//! construction entirely — the response carries a per-request
//! `plan_cache_hit` bit.

pub mod accountant;
pub mod batcher;
pub mod fault;
pub mod http;
pub mod journal;
pub mod limits;
pub mod poller;
pub mod server;
pub mod shutdown;

pub use accountant::{
    parse_tenant_grants, AdmissionError, BudgetSnapshot, ReloadOutcome, TenantAccountant,
};
pub use batcher::Batcher;
pub use fault::{AppendFault, FaultyIo};
pub use journal::{FileIo, JournalIo, JournalOp, JournalRecord, SpendJournal};
pub use limits::{Limits, RateLimit, RateLimiter};
pub use poller::{Backend, Poller, TimerWheel};
pub use server::{start, ServeConfig, ServerHandle};
