//! Process-wide graceful-shutdown flag, set from SIGINT/SIGTERM.
//!
//! The workspace vendors no libc crate, so the Unix path binds `signal(2)`
//! directly with an `extern "C"` declaration; the handler only stores to
//! a static `AtomicBool` (async-signal-safe — no allocation, no locks).
//! Long-running loops — the serve accept loop, keep-alive readers, and
//! `dpbench run`'s cancel watcher — poll [`requested`] and drain: workers
//! finish in-flight requests/units, sinks and the spend journal flush and
//! fsync, and only then does the process exit. A kill therefore never
//! leaves a torn journal mid-file.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_reload(_sig: i32) {
        super::RELOAD.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn install_reload() {
        unsafe {
            signal(SIGHUP, on_reload);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal plumbing off Unix; [`super::trigger`] still works for
    /// in-process shutdown.
    pub fn install() {}

    pub fn install_reload() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent). Call once at
/// subcommand start, before spawning workers.
pub fn install() {
    imp::install();
}

/// True once a shutdown signal arrived (or [`trigger`] was called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Request shutdown from in-process code (tests, embedders).
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clear the flag — for tests that simulate repeated shutdown cycles.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Install the SIGHUP → tenant-reload handler (separate from [`install`]
/// so only `dpbench serve` opts in; other subcommands keep the default
/// SIGHUP disposition of terminating).
pub fn install_reload() {
    imp::install_reload();
}

/// Consume a pending reload request (SIGHUP since the last call). The
/// serve loop polls this and re-reads the tenant config when true.
pub fn take_reload() -> bool {
    RELOAD.swap(false, Ordering::SeqCst)
}
