//! Request batching: same-strategy, same-ε releases arriving within a
//! short window share one `Plan::execute`.
//!
//! The first request for a key becomes the **leader**: it sleeps out the
//! window, unregisters the batch (so later arrivals start a fresh one),
//! runs the execution once, and publishes the result. Requests that land
//! on a registered batch are **followers**: they block on the batch's
//! condvar and receive the leader's result.
//!
//! Privacy: a batch returns the *same released value* to every joiner.
//! Publishing one DP release to more recipients is post-processing — it
//! costs nothing extra against the data — yet every joiner's tenant has
//! already reserved its own ε, so the accounting stays conservative.
//!
//! A zero window disables batching entirely (the default): `run` then
//! degenerates to calling the executor inline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A batch's shared result slot: `None` until the leader publishes.
struct Batch<T> {
    result: Mutex<Option<Result<Arc<T>, String>>>,
    done: Condvar,
}

/// Cumulative batching counters for `/v1/status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Batches led (= executions actually run through the batcher).
    pub led: u64,
    /// Requests served by another request's execution.
    pub followed: u64,
}

/// Groups concurrent same-key executions; generic in the result so the
/// batching logic is testable without a live mechanism.
pub struct Batcher<T> {
    window: Duration,
    open: Mutex<HashMap<u64, Arc<Batch<T>>>>,
    led: AtomicU64,
    followed: AtomicU64,
}

impl<T> Batcher<T> {
    /// A batcher with the given collection window (zero disables).
    pub fn new(window: Duration) -> Self {
        Self {
            window,
            open: Mutex::new(HashMap::new()),
            led: AtomicU64::new(0),
            followed: AtomicU64::new(0),
        }
    }

    /// Run `exec` for `key`, or wait for an in-flight execution of the
    /// same key started within the window. Leaders hold no lock while
    /// sleeping or executing, so distinct keys never serialize. The
    /// boolean is `true` when this call was served by another request's
    /// execution (a follower) — the response's `batched` bit.
    pub fn run<F>(&self, key: u64, exec: F) -> Result<(Arc<T>, bool), String>
    where
        F: FnOnce() -> Result<T, String>,
    {
        if self.window.is_zero() {
            return exec().map(|v| (Arc::new(v), false));
        }
        let (batch, leader) = {
            let mut open = self.open.lock().expect("batcher poisoned");
            match open.get(&key) {
                Some(batch) => (Arc::clone(batch), false),
                None => {
                    let batch = Arc::new(Batch {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    open.insert(key, Arc::clone(&batch));
                    (batch, true)
                }
            }
        };
        if leader {
            std::thread::sleep(self.window);
            // Close the batch *before* executing: anyone arriving from
            // here on starts a new batch rather than waiting on a result
            // drawn before they asked.
            self.open.lock().expect("batcher poisoned").remove(&key);
            self.led.fetch_add(1, Ordering::Relaxed);
            let result = exec().map(Arc::new);
            let mut slot = batch.result.lock().expect("batch poisoned");
            *slot = Some(result.clone());
            batch.done.notify_all();
            result.map(|v| (v, false))
        } else {
            self.followed.fetch_add(1, Ordering::Relaxed);
            let mut slot = batch.result.lock().expect("batch poisoned");
            while slot.is_none() {
                slot = batch.done.wait(slot).expect("batch poisoned");
            }
            slot.as_ref()
                .expect("checked above")
                .clone()
                .map(|v| (v, true))
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            led: self.led.load(Ordering::Relaxed),
            followed: self.followed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_window_executes_inline() {
        let b: Batcher<u32> = Batcher::new(Duration::ZERO);
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, batched) = b
                .run(7, || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Ok(41)
                })
                .unwrap();
            assert_eq!(*v, 41);
            assert!(!batched);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(b.stats(), BatchStats::default());
    }

    #[test]
    fn concurrent_same_key_requests_share_one_execution() {
        let b: Arc<Batcher<usize>> = Arc::new(Batcher::new(Duration::from_millis(60)));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let b = Arc::clone(&b);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                b.run(42, move || {
                    // Distinct executions would return distinct values.
                    Ok(calls.fetch_add(1, Ordering::Relaxed))
                })
                .unwrap()
            }));
        }
        let results: Vec<(Arc<usize>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "six requests inside one window must execute once"
        );
        assert!(results.iter().all(|(v, _)| **v == 0));
        assert_eq!(results.iter().filter(|(_, batched)| *batched).count(), 5);
        let stats = b.stats();
        assert_eq!(stats.led, 1);
        assert_eq!(stats.followed, 5);
    }

    #[test]
    fn distinct_keys_do_not_batch() {
        let b: Arc<Batcher<u64>> = Arc::new(Batcher::new(Duration::from_millis(30)));
        let mut handles = Vec::new();
        for key in 0..4_u64 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                *b.run(key, || Ok(key)).unwrap().0
            }));
        }
        let mut results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![0, 1, 2, 3]);
        assert_eq!(b.stats().led, 4);
    }

    #[test]
    fn errors_propagate_to_all_joiners() {
        let b: Arc<Batcher<u8>> = Arc::new(Batcher::new(Duration::from_millis(50)));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                b.run(1, || Err("mechanism failed".to_string()))
            }));
        }
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            assert_eq!(err, "mechanism failed");
        }
    }

    #[test]
    fn late_arrival_after_window_starts_a_new_batch() {
        let b: Batcher<u32> = Batcher::new(Duration::from_millis(10));
        let calls = AtomicUsize::new(0);
        let (first, _) = b
            .run(9, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(1)
            })
            .unwrap();
        let (second, _) = b
            .run(9, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(2)
            })
            .unwrap();
        assert_eq!((*first, *second), (1, 2));
        assert_eq!(
            calls.load(Ordering::Relaxed),
            2,
            "sequential requests re-execute"
        );
    }
}
