//! Per-tenant budget accounting on the existing [`BudgetLedger`].
//!
//! Each tenant owns one ledger with its configured lifetime ε. A release
//! request performs an **atomic check-and-reserve** before
//! `Plan::execute`: under the tenant's lock, the ε is spent on the ledger
//! and appended to the [`SpendJournal`] — so concurrent requests can
//! never jointly overdraw, and the journal's per-tenant record order is
//! exactly the order the in-memory f64 ops ran in. Replaying the journal
//! on restart therefore reproduces every balance **bit-exactly**.
//!
//! A mechanism error refunds the reservation (typed `refund` record, not
//! a negative spend). An exhausted tenant gets [`AdmissionError::Exhausted`]
//! — the server maps it to HTTP 429 with the remaining budget, which is
//! safe to reveal: the budget state depends only on granted requests, not
//! on the private data.

use super::journal::{JournalOp, JournalRecord, SpendJournal};
use crate::config::is_valid_identifier;
use dpbench_core::BudgetLedger;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Why a reservation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// No tenant with this id is configured.
    UnknownTenant(String),
    /// The tenant's remaining ε cannot cover the request — the 429 case.
    Exhausted {
        /// ε the request asked for.
        requested: f64,
        /// ε the tenant still has.
        remaining: f64,
    },
    /// The spend journal could not be written; the reservation was rolled
    /// back (a release must never outrun its durable record).
    Journal(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            AdmissionError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            AdmissionError::Journal(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

/// A point-in-time view of one tenant's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSnapshot {
    /// Lifetime ε granted by configuration.
    pub total: f64,
    /// ε spent (reservations minus refunds).
    pub spent: f64,
    /// ε still available.
    pub remaining: f64,
    /// Successful releases charged so far.
    pub releases: u64,
}

struct TenantState {
    ledger: BudgetLedger,
    releases: u64,
}

/// The per-tenant budget authority of the release server.
pub struct TenantAccountant {
    tenants: HashMap<String, Mutex<TenantState>>,
    journal: Option<Mutex<SpendJournal>>,
}

impl TenantAccountant {
    /// Build the accountant from `(tenant, lifetime ε)` pairs, optionally
    /// backed by a spend journal at `journal_path`. An existing journal
    /// is replayed first (healing a torn tail), so a restarted server
    /// resumes with the exact pre-crash balances.
    pub fn new(budgets: &[(String, f64)], journal_path: Option<&Path>) -> io::Result<Self> {
        let mut tenants = HashMap::new();
        for (name, eps) in budgets {
            if !is_valid_identifier(name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("tenant name {name:?} is not a plain identifier"),
                ));
            }
            if !(eps.is_finite() && *eps > 0.0) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("tenant {name}: budget must be positive and finite, got {eps}"),
                ));
            }
            let prior = tenants.insert(
                name.clone(),
                Mutex::new(TenantState {
                    ledger: BudgetLedger::new(*eps),
                    releases: 0,
                }),
            );
            if prior.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("tenant {name} configured twice"),
                ));
            }
        }
        let journal = match journal_path {
            None => None,
            Some(path) => {
                let (journal, records) = SpendJournal::open(path)?;
                apply_records(&tenants, &records)?;
                Some(Mutex::new(journal))
            }
        };
        Ok(Self { tenants, journal })
    }

    /// Atomically check-and-reserve `eps` for `tenant`; on success the ε
    /// is spent on the ledger **and** durable in the journal before this
    /// returns. Call before `Plan::execute`; pair with
    /// [`TenantAccountant::refund`] if the mechanism then fails.
    pub fn reserve(&self, tenant: &str, eps: f64) -> Result<(), AdmissionError> {
        assert!(
            eps.is_finite() && eps > 0.0,
            "requested ε must be positive and finite (validated by the router)"
        );
        let state = self
            .tenants
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant(tenant.to_string()))?;
        let mut state = state.lock().expect("tenant state poisoned");
        state
            .ledger
            .reserve(eps)
            .map_err(|e| AdmissionError::Exhausted {
                requested: e.requested,
                remaining: e.remaining,
            })?;
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock().expect("journal poisoned");
            if let Err(e) = journal.append(tenant, JournalOp::Spend, eps) {
                // Roll back: a spend that is not durable must not stand.
                state.ledger.refund_as("journal-error", eps);
                return Err(AdmissionError::Journal(e.to_string()));
            }
        }
        state.releases += 1;
        Ok(())
    }

    /// Return a reservation after a mechanism error. A journal write
    /// failure here leaves the persisted balance *more* spent than the
    /// live one — the conservative direction — and is surfaced to the
    /// caller for logging.
    pub fn refund(&self, tenant: &str, eps: f64) -> io::Result<()> {
        let state = self
            .tenants
            .get(tenant)
            .unwrap_or_else(|| panic!("refund for unknown tenant {tenant} (reserve admitted it)"));
        let mut state = state.lock().expect("tenant state poisoned");
        state.ledger.refund_as("refund", eps);
        state.releases = state.releases.saturating_sub(1);
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock().expect("journal poisoned");
            journal.append(tenant, JournalOp::Refund, eps)?;
        }
        Ok(())
    }

    /// Current budget state of one tenant.
    pub fn snapshot(&self, tenant: &str) -> Option<BudgetSnapshot> {
        let state = self.tenants.get(tenant)?;
        let state = state.lock().expect("tenant state poisoned");
        Some(BudgetSnapshot {
            total: state.ledger.total(),
            spent: state.ledger.spent(),
            remaining: state.ledger.remaining(),
            releases: state.releases,
        })
    }

    /// Number of configured tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant is configured.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Flush and fsync the journal — the graceful-shutdown barrier.
    pub fn sync(&self) -> io::Result<()> {
        if let Some(journal) = &self.journal {
            journal.lock().expect("journal poisoned").sync()?;
        }
        Ok(())
    }
}

/// Apply replayed journal records to freshly-configured tenants —
/// the identical ledger ops the live path ran, in the identical
/// per-tenant order, so balances come back bit-exact.
fn apply_records(
    tenants: &HashMap<String, Mutex<TenantState>>,
    records: &[JournalRecord],
) -> io::Result<()> {
    for rec in records {
        let Some(state) = tenants.get(&rec.tenant) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal names tenant {:?} which is not configured \
                     (tenant removal requires a fresh journal)",
                    rec.tenant
                ),
            ));
        };
        let mut state = state.lock().expect("tenant state poisoned");
        match rec.op {
            JournalOp::Spend => {
                state.releases += 1;
                if state.ledger.reserve(rec.eps).is_err() {
                    // The configured total shrank below the recorded
                    // spend: clamp to fully exhausted — the conservative
                    // reading of a journal that outspends the new grant.
                    state.ledger.spend_all_as("replay-clamp");
                }
            }
            JournalOp::Refund => {
                state.releases = state.releases.saturating_sub(1);
                // Under an unchanged configuration the refund can never
                // exceed the spend it undoes; the clamp only engages
                // after a replay-clamp above already distorted balances.
                let eps = rec.eps.min(state.ledger.spent());
                if eps > 0.0 {
                    state.ledger.refund_as("refund", eps);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpbench-accountant-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("spend.jsonl")
    }

    #[test]
    fn reserve_counts_down_and_refuses_past_zero() {
        let acct =
            TenantAccountant::new(&[("alice".into(), 1.0), ("bob".into(), 0.5)], None).unwrap();
        acct.reserve("alice", 0.6).unwrap();
        let err = acct.reserve("alice", 0.6).unwrap_err();
        match err {
            AdmissionError::Exhausted {
                requested,
                remaining,
            } => {
                assert_eq!(requested, 0.6);
                assert!((remaining - 0.4).abs() < 1e-12);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        // Bob's budget is untouched by Alice's spending.
        acct.reserve("bob", 0.5).unwrap();
        assert!(matches!(
            acct.reserve("carol", 0.1).unwrap_err(),
            AdmissionError::UnknownTenant(_)
        ));
        let snap = acct.snapshot("alice").unwrap();
        assert_eq!(snap.releases, 1);
        assert!((snap.remaining - 0.4).abs() < 1e-12);
    }

    #[test]
    fn refund_restores_budget_and_release_count() {
        let acct = TenantAccountant::new(&[("a".into(), 1.0)], None).unwrap();
        acct.reserve("a", 0.7).unwrap();
        acct.refund("a", 0.7).unwrap();
        let snap = acct.snapshot("a").unwrap();
        assert_eq!(snap.releases, 0);
        assert!(snap.remaining > 0.99);
        acct.reserve("a", 0.9).unwrap();
    }

    #[test]
    fn journal_replay_restores_balances_bit_exactly() {
        let path = tmpfile("replay");
        let _ = std::fs::remove_file(&path);
        let budgets = vec![("alice".to_string(), 1.0), ("bob".to_string(), 2.0)];
        let live = {
            let acct = TenantAccountant::new(&budgets, Some(&path)).unwrap();
            acct.reserve("alice", 0.1).unwrap();
            acct.reserve("bob", 0.3).unwrap();
            acct.reserve("alice", 0.25).unwrap();
            acct.refund("alice", 0.25).unwrap();
            acct.reserve("alice", 1.0 / 3.0).unwrap();
            acct.sync().unwrap();
            (
                acct.snapshot("alice").unwrap(),
                acct.snapshot("bob").unwrap(),
            )
        };
        let acct = TenantAccountant::new(&budgets, Some(&path)).unwrap();
        let alice = acct.snapshot("alice").unwrap();
        let bob = acct.snapshot("bob").unwrap();
        assert_eq!(alice.spent.to_bits(), live.0.spent.to_bits());
        assert_eq!(bob.spent.to_bits(), live.1.spent.to_bits());
        assert_eq!(alice.releases, live.0.releases);
        // And the recovered accountant keeps enforcing from that state.
        assert!(matches!(
            acct.reserve("alice", 0.9),
            Err(AdmissionError::Exhausted { .. })
        ));
    }

    #[test]
    fn journal_for_unconfigured_tenant_is_rejected() {
        let path = tmpfile("unknown");
        let _ = std::fs::remove_file(&path);
        {
            let acct = TenantAccountant::new(&[("gone".into(), 1.0)], Some(&path)).unwrap();
            acct.reserve("gone", 0.5).unwrap();
            acct.sync().unwrap();
        }
        let err = TenantAccountant::new(&[("other".into(), 1.0)], Some(&path))
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("gone"), "{err}");
    }

    #[test]
    fn shrunken_grant_clamps_to_exhausted_on_replay() {
        let path = tmpfile("shrunk");
        let _ = std::fs::remove_file(&path);
        {
            let acct = TenantAccountant::new(&[("a".into(), 1.0)], Some(&path)).unwrap();
            acct.reserve("a", 0.8).unwrap();
            acct.sync().unwrap();
        }
        // Operator lowers the grant below the recorded spend.
        let acct = TenantAccountant::new(&[("a".into(), 0.5)], Some(&path)).unwrap();
        let snap = acct.snapshot("a").unwrap();
        assert_eq!(snap.remaining, 0.0, "over-spent journal clamps to zero");
        assert!(matches!(
            acct.reserve("a", 0.01),
            Err(AdmissionError::Exhausted { .. })
        ));
    }
}
