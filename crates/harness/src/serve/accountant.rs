//! Per-tenant budget accounting on the existing [`BudgetLedger`].
//!
//! Each tenant owns one ledger with its configured lifetime ε. A release
//! request performs an **atomic check-and-reserve** before
//! `Plan::execute`: under the tenant's lock, the ε is spent on the ledger
//! and appended to the [`SpendJournal`] — so concurrent requests can
//! never jointly overdraw, and the journal's per-tenant record order is
//! exactly the order the in-memory f64 ops ran in. Replaying the journal
//! on restart therefore reproduces every balance **bit-exactly**.
//!
//! A mechanism error refunds the reservation (typed `refund` record, not
//! a negative spend). An exhausted tenant gets [`AdmissionError::Exhausted`]
//! — the server maps it to HTTP 429 with the remaining budget, which is
//! safe to reveal: the budget state depends only on granted requests, not
//! on the private data.
//!
//! Grants can be **hot-reloaded** ([`TenantAccountant::reload`]): new
//! tenants appear, existing totals grow or shrink, and shrinking below
//! the already-spent ε clamps the tenant to exhausted — the *identical*
//! state a journal replay against the new grants would produce, so a
//! reload followed by a crash recovers to the same balances.

use super::journal::{JournalIo, JournalOp, JournalRecord, SpendJournal};
use crate::config::is_valid_identifier;
use dpbench_core::BudgetLedger;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// Why a reservation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// No tenant with this id is configured.
    UnknownTenant(String),
    /// The tenant's remaining ε cannot cover the request — the 429 case.
    Exhausted {
        /// ε the request asked for.
        requested: f64,
        /// ε the tenant still has.
        remaining: f64,
    },
    /// The spend journal could not be written; the reservation was rolled
    /// back (a release must never outrun its durable record).
    Journal(String),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            AdmissionError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            AdmissionError::Journal(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

/// A point-in-time view of one tenant's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSnapshot {
    /// Lifetime ε granted by configuration.
    pub total: f64,
    /// ε spent (reservations minus refunds).
    pub spent: f64,
    /// ε still available.
    pub remaining: f64,
    /// Successful releases charged so far.
    pub releases: u64,
}

/// What a [`TenantAccountant::reload`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// Tenants that did not exist before.
    pub added: usize,
    /// Existing tenants whose grant grew.
    pub extended: usize,
    /// Existing tenants whose grant shrank (possibly clamping to
    /// exhausted when the new total is below the spent ε).
    pub shrunk: usize,
    /// Existing tenants whose grant is unchanged.
    pub unchanged: usize,
}

/// Parse tenant grants from config text: the TOML subset of `name = eps`
/// lines, with `#` comments and an optional `[tenants]` section header.
/// Strict like every other config path — an unrecognized line is an
/// error, not a silently skipped grant. Shared by the CLI at startup and
/// the hot-reload path (SIGHUP / `POST /v1/admin/reload`), so a reload
/// reads the file exactly as a restart would.
pub fn parse_tenant_grants(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut tenants = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line == "[tenants]" {
            continue;
        }
        let (name, eps) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected name = eps", line_no + 1))?;
        let eps: f64 = eps
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad epsilon {:?}", line_no + 1, eps.trim()))?;
        tenants.push((name.trim().trim_matches('"').to_string(), eps));
    }
    Ok(tenants)
}

struct TenantState {
    ledger: BudgetLedger,
    releases: u64,
}

type TenantMap = HashMap<String, Arc<Mutex<TenantState>>>;

/// The per-tenant budget authority of the release server.
pub struct TenantAccountant {
    tenants: RwLock<TenantMap>,
    journal: Option<Mutex<SpendJournal>>,
}

/// Validate one `(tenant, ε)` grant.
fn check_grant(name: &str, eps: f64) -> io::Result<()> {
    if !is_valid_identifier(name) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("tenant name {name:?} is not a plain identifier"),
        ));
    }
    if !(eps.is_finite() && eps > 0.0) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("tenant {name}: budget must be positive and finite, got {eps}"),
        ));
    }
    Ok(())
}

impl TenantAccountant {
    /// Build the accountant from `(tenant, lifetime ε)` pairs, optionally
    /// backed by a spend journal at `journal_path`. An existing journal
    /// is replayed first (healing a torn tail), so a restarted server
    /// resumes with the exact pre-crash balances.
    pub fn new(budgets: &[(String, f64)], journal_path: Option<&Path>) -> io::Result<Self> {
        match journal_path {
            None => Self::build(budgets, None),
            Some(path) => Self::build(budgets, Some(SpendJournal::open(path)?)),
        }
    }

    /// Like [`Self::new`] but journaling through an arbitrary
    /// [`JournalIo`] — the entry point for crash-consistency tests over
    /// [`FaultyIo`](super::fault::FaultyIo).
    pub fn new_with_io(budgets: &[(String, f64)], io: Box<dyn JournalIo>) -> io::Result<Self> {
        Self::build(budgets, Some(SpendJournal::open_with(io)?))
    }

    fn build(
        budgets: &[(String, f64)],
        journal: Option<(SpendJournal, Vec<JournalRecord>)>,
    ) -> io::Result<Self> {
        let mut tenants: TenantMap = HashMap::new();
        for (name, eps) in budgets {
            check_grant(name, *eps)?;
            let prior = tenants.insert(
                name.clone(),
                Arc::new(Mutex::new(TenantState {
                    ledger: BudgetLedger::new(*eps),
                    releases: 0,
                })),
            );
            if prior.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("tenant {name} configured twice"),
                ));
            }
        }
        let journal = match journal {
            None => None,
            Some((journal, records)) => {
                apply_records(&tenants, &records)?;
                Some(Mutex::new(journal))
            }
        };
        Ok(Self {
            tenants: RwLock::new(tenants),
            journal,
        })
    }

    /// Look up one tenant's state handle.
    fn tenant(&self, name: &str) -> Option<Arc<Mutex<TenantState>>> {
        self.tenants
            .read()
            .expect("tenant map poisoned")
            .get(name)
            .cloned()
    }

    /// Atomically check-and-reserve `eps` for `tenant`; on success the ε
    /// is spent on the ledger **and** durable in the journal before this
    /// returns. Call before `Plan::execute`; pair with
    /// [`TenantAccountant::refund`] if the mechanism then fails.
    pub fn reserve(&self, tenant: &str, eps: f64) -> Result<(), AdmissionError> {
        assert!(
            eps.is_finite() && eps > 0.0,
            "requested ε must be positive and finite (validated by the router)"
        );
        let state = self
            .tenant(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant(tenant.to_string()))?;
        let mut state = state.lock().expect("tenant state poisoned");
        state
            .ledger
            .reserve(eps)
            .map_err(|e| AdmissionError::Exhausted {
                requested: e.requested,
                remaining: e.remaining,
            })?;
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock().expect("journal poisoned");
            if let Err(e) = journal.append(tenant, JournalOp::Spend, eps) {
                // Roll back: a spend that is not durable must not stand.
                state.ledger.refund_as("journal-error", eps);
                return Err(AdmissionError::Journal(e.to_string()));
            }
        }
        state.releases += 1;
        Ok(())
    }

    /// Return a reservation after a mechanism error. The live refund is
    /// clamped to the spent ε — a no-op normally, engaged only when a
    /// hot-reload clamped the tenant to exhausted mid-flight — exactly
    /// mirroring the replay path's clamp, so live and recovered balances
    /// stay bit-identical. A journal write failure here leaves the
    /// persisted balance *more* spent than the live one — the
    /// conservative direction — and is surfaced to the caller for
    /// logging.
    pub fn refund(&self, tenant: &str, eps: f64) -> io::Result<()> {
        let state = self
            .tenant(tenant)
            .unwrap_or_else(|| panic!("refund for unknown tenant {tenant} (reserve admitted it)"));
        let mut state = state.lock().expect("tenant state poisoned");
        let clamped = eps.min(state.ledger.spent());
        if clamped > 0.0 {
            state.ledger.refund_as("refund", clamped);
        }
        state.releases = state.releases.saturating_sub(1);
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock().expect("journal poisoned");
            journal.append(tenant, JournalOp::Refund, eps)?;
        }
        Ok(())
    }

    /// Hot-reload tenant grants without a restart: new tenants are added,
    /// existing totals are adjusted in place (shrinking below the spent ε
    /// clamps to exhausted — identical to what replaying the journal
    /// against the new grants produces), and tenants absent from `grants`
    /// are left untouched (removal requires a fresh journal, as before).
    /// Nothing is journaled — grants are configuration, not spend.
    pub fn reload(&self, grants: &[(String, f64)]) -> io::Result<ReloadOutcome> {
        let mut seen = std::collections::HashSet::new();
        for (name, eps) in grants {
            check_grant(name, *eps)?;
            if !seen.insert(name.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("tenant {name} configured twice"),
                ));
            }
        }
        let mut outcome = ReloadOutcome::default();
        let mut tenants = self.tenants.write().expect("tenant map poisoned");
        for (name, eps) in grants {
            match tenants.get(name) {
                Some(state) => {
                    let mut state = state.lock().expect("tenant state poisoned");
                    let old = state.ledger.total();
                    if *eps > old {
                        outcome.extended += 1;
                    } else if *eps < old {
                        outcome.shrunk += 1;
                    } else {
                        outcome.unchanged += 1;
                        continue;
                    }
                    state.ledger.adjust_total(*eps);
                }
                None => {
                    tenants.insert(
                        name.clone(),
                        Arc::new(Mutex::new(TenantState {
                            ledger: BudgetLedger::new(*eps),
                            releases: 0,
                        })),
                    );
                    outcome.added += 1;
                }
            }
        }
        Ok(outcome)
    }

    /// Current budget state of one tenant.
    pub fn snapshot(&self, tenant: &str) -> Option<BudgetSnapshot> {
        let state = self.tenant(tenant)?;
        let state = state.lock().expect("tenant state poisoned");
        Some(BudgetSnapshot {
            total: state.ledger.total(),
            spent: state.ledger.spent(),
            remaining: state.ledger.remaining(),
            releases: state.releases,
        })
    }

    /// Snapshot every tenant, sorted by name (fault-matrix invariant
    /// checks compare full maps).
    pub fn snapshot_all(&self) -> Vec<(String, BudgetSnapshot)> {
        let names: Vec<String> = {
            let tenants = self.tenants.read().expect("tenant map poisoned");
            tenants.keys().cloned().collect()
        };
        let mut out: Vec<(String, BudgetSnapshot)> = names
            .into_iter()
            .filter_map(|n| self.snapshot(&n).map(|s| (n, s)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of configured tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant map poisoned").len()
    }

    /// True when no tenant is configured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the journal refuses all appends until restart.
    pub fn journal_wedged(&self) -> bool {
        self.journal
            .as_ref()
            .is_some_and(|j| j.lock().expect("journal poisoned").is_wedged())
    }

    /// Flush and fsync the journal — the graceful-shutdown barrier.
    pub fn sync(&self) -> io::Result<()> {
        if let Some(journal) = &self.journal {
            journal.lock().expect("journal poisoned").sync()?;
        }
        Ok(())
    }
}

/// Apply replayed journal records to freshly-configured tenants —
/// the identical ledger ops the live path ran, in the identical
/// per-tenant order, so balances come back bit-exact.
fn apply_records(tenants: &TenantMap, records: &[JournalRecord]) -> io::Result<()> {
    for rec in records {
        let Some(state) = tenants.get(&rec.tenant) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal names tenant {:?} which is not configured \
                     (tenant removal requires a fresh journal)",
                    rec.tenant
                ),
            ));
        };
        let mut state = state.lock().expect("tenant state poisoned");
        match rec.op {
            JournalOp::Spend => {
                state.releases += 1;
                if state.ledger.reserve(rec.eps).is_err() {
                    // The configured total shrank below the recorded
                    // spend: clamp to fully exhausted — the conservative
                    // reading of a journal that outspends the new grant.
                    state.ledger.spend_all_as("replay-clamp");
                }
            }
            JournalOp::Refund => {
                state.releases = state.releases.saturating_sub(1);
                // Under an unchanged configuration the refund can never
                // exceed the spend it undoes; the clamp only engages
                // after a replay-clamp above already distorted balances.
                let eps = rec.eps.min(state.ledger.spent());
                if eps > 0.0 {
                    state.ledger.refund_as("refund", eps);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpbench-accountant-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("spend.jsonl")
    }

    #[test]
    fn reserve_counts_down_and_refuses_past_zero() {
        let acct =
            TenantAccountant::new(&[("alice".into(), 1.0), ("bob".into(), 0.5)], None).unwrap();
        acct.reserve("alice", 0.6).unwrap();
        let err = acct.reserve("alice", 0.6).unwrap_err();
        match err {
            AdmissionError::Exhausted {
                requested,
                remaining,
            } => {
                assert_eq!(requested, 0.6);
                assert!((remaining - 0.4).abs() < 1e-12);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        // Bob's budget is untouched by Alice's spending.
        acct.reserve("bob", 0.5).unwrap();
        assert!(matches!(
            acct.reserve("carol", 0.1).unwrap_err(),
            AdmissionError::UnknownTenant(_)
        ));
        let snap = acct.snapshot("alice").unwrap();
        assert_eq!(snap.releases, 1);
        assert!((snap.remaining - 0.4).abs() < 1e-12);
    }

    #[test]
    fn refund_restores_budget_and_release_count() {
        let acct = TenantAccountant::new(&[("a".into(), 1.0)], None).unwrap();
        acct.reserve("a", 0.7).unwrap();
        acct.refund("a", 0.7).unwrap();
        let snap = acct.snapshot("a").unwrap();
        assert_eq!(snap.releases, 0);
        assert!(snap.remaining > 0.99);
        acct.reserve("a", 0.9).unwrap();
    }

    #[test]
    fn journal_replay_restores_balances_bit_exactly() {
        let path = tmpfile("replay");
        let _ = std::fs::remove_file(&path);
        let budgets = vec![("alice".to_string(), 1.0), ("bob".to_string(), 2.0)];
        let live = {
            let acct = TenantAccountant::new(&budgets, Some(&path)).unwrap();
            acct.reserve("alice", 0.1).unwrap();
            acct.reserve("bob", 0.3).unwrap();
            acct.reserve("alice", 0.25).unwrap();
            acct.refund("alice", 0.25).unwrap();
            acct.reserve("alice", 1.0 / 3.0).unwrap();
            acct.sync().unwrap();
            (
                acct.snapshot("alice").unwrap(),
                acct.snapshot("bob").unwrap(),
            )
        };
        let acct = TenantAccountant::new(&budgets, Some(&path)).unwrap();
        let alice = acct.snapshot("alice").unwrap();
        let bob = acct.snapshot("bob").unwrap();
        assert_eq!(alice.spent.to_bits(), live.0.spent.to_bits());
        assert_eq!(bob.spent.to_bits(), live.1.spent.to_bits());
        assert_eq!(alice.releases, live.0.releases);
        // And the recovered accountant keeps enforcing from that state.
        assert!(matches!(
            acct.reserve("alice", 0.9),
            Err(AdmissionError::Exhausted { .. })
        ));
    }

    #[test]
    fn journal_for_unconfigured_tenant_is_rejected() {
        let path = tmpfile("unknown");
        let _ = std::fs::remove_file(&path);
        {
            let acct = TenantAccountant::new(&[("gone".into(), 1.0)], Some(&path)).unwrap();
            acct.reserve("gone", 0.5).unwrap();
            acct.sync().unwrap();
        }
        let err = TenantAccountant::new(&[("other".into(), 1.0)], Some(&path))
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("gone"), "{err}");
    }

    #[test]
    fn shrunken_grant_clamps_to_exhausted_on_replay() {
        let path = tmpfile("shrunk");
        let _ = std::fs::remove_file(&path);
        {
            let acct = TenantAccountant::new(&[("a".into(), 1.0)], Some(&path)).unwrap();
            acct.reserve("a", 0.8).unwrap();
            acct.sync().unwrap();
        }
        // Operator lowers the grant below the recorded spend.
        let acct = TenantAccountant::new(&[("a".into(), 0.5)], Some(&path)).unwrap();
        let snap = acct.snapshot("a").unwrap();
        assert_eq!(snap.remaining, 0.0, "over-spent journal clamps to zero");
        assert!(matches!(
            acct.reserve("a", 0.01),
            Err(AdmissionError::Exhausted { .. })
        ));
    }

    #[test]
    fn reload_adds_extends_and_clamps_like_replay() {
        let path = tmpfile("reload");
        let _ = std::fs::remove_file(&path);
        let acct = TenantAccountant::new(&[("a".into(), 1.0)], Some(&path)).unwrap();
        acct.reserve("a", 0.8).unwrap();
        // Shrink a below spent, add b.
        let outcome = acct
            .reload(&[("a".into(), 0.5), ("b".into(), 2.0)])
            .unwrap();
        assert_eq!(
            outcome,
            ReloadOutcome {
                added: 1,
                shrunk: 1,
                ..Default::default()
            }
        );
        let a = acct.snapshot("a").unwrap();
        assert_eq!(a.remaining, 0.0, "shrink below spent clamps to exhausted");
        assert_eq!(a.spent.to_bits(), 0.5_f64.to_bits(), "spent == new total");
        acct.reserve("b", 1.5).unwrap();
        acct.sync().unwrap();
        // The live clamp must equal the replay clamp bit-for-bit: restart
        // against the *new* grants and compare.
        let live: Vec<_> = acct.snapshot_all();
        let reopened =
            TenantAccountant::new(&[("a".into(), 0.5), ("b".into(), 2.0)], Some(&path)).unwrap();
        for (name, snap) in &live {
            let re = reopened.snapshot(name).unwrap();
            assert_eq!(re.spent.to_bits(), snap.spent.to_bits(), "tenant {name}");
            assert_eq!(re.total.to_bits(), snap.total.to_bits(), "tenant {name}");
        }
    }

    #[test]
    fn refund_after_live_clamp_matches_replay() {
        let path = tmpfile("clamp-refund");
        let _ = std::fs::remove_file(&path);
        let acct = TenantAccountant::new(&[("a".into(), 1.0)], Some(&path)).unwrap();
        acct.reserve("a", 0.8).unwrap();
        acct.reload(&[("a".into(), 0.5)]).unwrap();
        // The in-flight release now fails and refunds its 0.8 — more than
        // the clamped spent of 0.5. The live clamp keeps the ledger sane.
        acct.refund("a", 0.8).unwrap();
        acct.sync().unwrap();
        let live = acct.snapshot("a").unwrap();
        assert_eq!(live.spent, 0.0, "full refund of the clamped spend");
        let reopened = TenantAccountant::new(&[("a".into(), 0.5)], Some(&path)).unwrap();
        let re = reopened.snapshot("a").unwrap();
        assert_eq!(re.spent.to_bits(), live.spent.to_bits());
        assert_eq!(re.remaining.to_bits(), live.remaining.to_bits());
    }
}
