//! The release server: datasets loaded at startup, a bounded worker
//! thread pool over the hand-rolled HTTP layer, and three endpoints.
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /v1/release` | reserve ε → (batched) `Plan::execute` → JSON release with budget trace, optional SLO error block, plan-cache hit bit, latency |
//! | `GET /v1/tenants/:id/budget` | the tenant's live balance |
//! | `GET /v1/status` | uptime, per-mechanism counts, plan-cache and batcher counters, queue depth |
//!
//! Release flow: admission control happens **before** execution
//! ([`TenantAccountant::reserve`] — atomic check-and-reserve, journaled),
//! a mechanism failure refunds, and the response's remaining balance is
//! read back after settlement. Plans come from one [`PlanCache`] shared
//! by all workers (cross-request warm cache); executions of the same
//! (mechanism, domain, workload, dataset, ε) arriving within the batch
//! window share one noise draw through the [`Batcher`].

use super::accountant::{AdmissionError, TenantAccountant};
use super::batcher::Batcher;
use super::http::{self, JsonValue, Request};
use super::shutdown;
use crate::config::WorkloadSpec;
use crate::runner::PlanCache;
use dpbench_algorithms::registry::mechanism_by_name;
use dpbench_core::mechanism::execute_eps_with;
use dpbench_core::rng::{hash_str, rng_for};
use dpbench_core::{
    scaled_per_query_error, DataVector, Domain, Fingerprint, Loss, Release, Workload, Workspace,
};
use dpbench_datasets::{catalog, DataGenerator};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration (the CLI builds this from `dpbench serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Catalog names of the datasets to load at startup.
    pub datasets: Vec<String>,
    /// Scale every dataset is generated at.
    pub scale: u64,
    /// Domain every dataset is generated over (and every plan runs on).
    pub domain: Domain,
    /// `(tenant, lifetime ε)` grants.
    pub tenants: Vec<(String, f64)>,
    /// Spend journal path; `None` serves from memory only.
    pub journal: Option<PathBuf>,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Same-strategy request batching window (zero disables).
    pub batch_window: Duration,
    /// Seed stirred into data generation and release noise.
    pub seed: u64,
    /// Operator opt-in: include the SLO error block (scaled L1/L2 vs the
    /// true workload answers) in release responses.
    pub slo: bool,
    /// Log one line per request to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".into(),
            datasets: vec!["MEDCOST".into()],
            scale: 100_000,
            domain: Domain::D1(1024),
            tenants: Vec::new(),
            journal: None,
            threads: 4,
            batch_window: Duration::ZERO,
            seed: 0,
            slo: false,
            verbose: false,
        }
    }
}

/// One dataset materialized at startup.
struct LoadedDataset {
    x: DataVector,
}

/// Memo of true workload answers, keyed by (dataset, workload
/// fingerprint) — the SLO block evaluates `W x` once per pair.
type YTrueMemo = Mutex<HashMap<(String, u64), Arc<Vec<f64>>>>;

/// Shared state of a running server — exposed through
/// [`ServerHandle::state`] so tests can assert on counters directly.
pub struct ServerState {
    /// Per-tenant budgets (public: the CLI prints balances at shutdown).
    pub accountant: TenantAccountant,
    /// The shared cross-request plan cache.
    pub plan_cache: PlanCache,
    datasets: HashMap<String, LoadedDataset>,
    batcher: Batcher<Release>,
    domain: Domain,
    scale: u64,
    seed: u64,
    slo: bool,
    verbose: bool,
    started: Instant,
    requests: AtomicU64,
    release_seq: AtomicU64,
    queue_depth: AtomicUsize,
    mech_counts: Mutex<HashMap<String, u64>>,
    workload_memo: Mutex<HashMap<(u8, usize), Arc<Workload>>>,
    y_true_memo: YTrueMemo,
}

/// Handle to a started server: address, state, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live server state (counters, accountant, plan cache).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// True once every worker observed the stop flag and exited.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, join
    /// every thread, then flush + fsync the spend journal.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        for join in self.joins {
            let _ = join.join();
        }
        self.state.accountant.sync()
    }
}

/// Start the server; returns once the listener is bound and the worker
/// pool is running. Shut down via [`ServerHandle::shutdown`] (or a
/// process signal — workers also poll [`shutdown::requested`]).
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    if config.tenants.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs at least one tenant (--tenants name=eps,... or --tenant-config)",
        ));
    }
    if config.datasets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs at least one dataset",
        ));
    }
    let mut datasets = HashMap::new();
    for name in &config.datasets {
        let ds = catalog::by_name(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown dataset {name} (see `dpbench list-datasets`)"),
            )
        })?;
        let mut rng = rng_for(
            "serve-data",
            &[
                hash_str(name),
                config.scale,
                config.domain.n_cells() as u64,
                config.seed,
            ],
        );
        let x = DataGenerator::new().generate(&ds, config.domain, config.scale, &mut rng);
        datasets.insert(name.clone(), LoadedDataset { x });
    }
    let accountant = TenantAccountant::new(&config.tenants, config.journal.as_deref())?;
    let state = Arc::new(ServerState {
        accountant,
        plan_cache: PlanCache::new(),
        datasets,
        batcher: Batcher::new(config.batch_window),
        domain: config.domain,
        scale: config.scale,
        seed: config.seed,
        slo: config.slo,
        verbose: config.verbose,
        started: Instant::now(),
        requests: AtomicU64::new(0),
        release_seq: AtomicU64::new(0),
        queue_depth: AtomicUsize::new(0),
        mech_counts: Mutex::new(HashMap::new()),
        workload_memo: Mutex::new(HashMap::new()),
        y_true_memo: Mutex::new(HashMap::new()),
    });

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut joins = Vec::with_capacity(config.threads + 1);

    // Accept loop: non-blocking + 1 ms sleep — short enough that a new
    // connection's accept latency is noise next to a release, cheap
    // enough to idle on, and the stop flag (or a process signal) is
    // still observed promptly.
    {
        let stop = Arc::clone(&stop);
        let state = Arc::clone(&state);
        joins.push(std::thread::spawn(move || loop {
            if stop.load(Ordering::SeqCst) || shutdown::requested() {
                break; // drop tx: workers drain the queue, then exit
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    state.queue_depth.fetch_add(1, Ordering::Relaxed);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }));
    }

    for _ in 0..config.threads.max(1) {
        let stop = Arc::clone(&stop);
        let state = Arc::clone(&state);
        let rx = Arc::clone(&rx);
        joins.push(std::thread::spawn(move || {
            // Per-worker scratch, reused across every request this worker
            // serves (same discipline as the grid runner's workers).
            let mut ws = Workspace::new();
            loop {
                let conn = {
                    let rx = rx.lock().expect("connection queue poisoned");
                    rx.recv_timeout(Duration::from_millis(50))
                };
                match conn {
                    Ok(stream) => {
                        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        handle_connection(stream, &state, &stop, &mut ws);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if stop.load(Ordering::SeqCst) || shutdown::requested() {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }));
    }

    Ok(ServerHandle {
        addr,
        stop,
        joins,
        state,
    })
}

/// Serve one connection with keep-alive until close, error, or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServerState,
    stop: &AtomicBool,
    ws: &mut Workspace,
) {
    // Short read timeout: an idle keep-alive connection re-checks the
    // stop flag every 100 ms instead of pinning its worker.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let stopping = stop.load(Ordering::SeqCst) || shutdown::requested();
        match http::read_request(&mut stream, &mut buf) {
            Ok(Some(req)) => {
                let (status, body) = route(state, &req, ws);
                let close = req.wants_close() || stopping;
                if state.verbose {
                    eprintln!("[serve] {} {} -> {status}", req.method, req.path);
                }
                if http::write_response(&mut stream, status, &body, close).is_err() || close {
                    break;
                }
            }
            Ok(None) => break, // clean close
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stopping {
                    break; // drain: no request in flight on this socket
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let body = error_json("bad_request", &e.to_string());
                let _ = http::write_response(&mut stream, 400, &body, true);
                break;
            }
            Err(_) => break,
        }
    }
}

/// Dispatch one request to its endpoint.
fn route(state: &ServerState, req: &Request, ws: &mut Workspace) -> (u16, String) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/release") => handle_release(state, &req.body, ws),
        ("GET", "/v1/status") => (200, status_json(state)),
        ("GET", path) => {
            if let Some(tenant) = path
                .strip_prefix("/v1/tenants/")
                .and_then(|rest| rest.strip_suffix("/budget"))
            {
                match state.accountant.snapshot(tenant) {
                    Some(snap) => (
                        200,
                        format!(
                            "{{\"tenant\":\"{tenant}\",\"total\":{},\"spent\":{},\"remaining\":{},\"releases\":{}}}",
                            jf(snap.total),
                            jf(snap.spent),
                            jf(snap.remaining),
                            snap.releases
                        ),
                    ),
                    None => (404, error_json("unknown_tenant", tenant)),
                }
            } else {
                (404, error_json("not_found", path))
            }
        }
        ("POST", path) => (404, error_json("not_found", path)),
        (method, _) => (405, error_json("method_not_allowed", method)),
    }
}

/// `POST /v1/release`.
fn handle_release(state: &ServerState, body: &[u8], ws: &mut Workspace) -> (u16, String) {
    let t0 = Instant::now();
    let parsed = std::str::from_utf8(body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(http::parse_object);
    let fields = match parsed {
        Ok(f) => f,
        Err(e) => return (400, error_json("bad_request", &e)),
    };
    let str_field = |key: &str| fields.get(key).and_then(JsonValue::as_str);

    let Some(tenant) = str_field("tenant") else {
        return (400, error_json("bad_request", "missing \"tenant\""));
    };
    let Some(dataset_name) = str_field("dataset") else {
        return (400, error_json("bad_request", "missing \"dataset\""));
    };
    let Some(eps) = fields.get("eps").and_then(JsonValue::as_f64) else {
        return (400, error_json("bad_request", "missing numeric \"eps\""));
    };
    if !(eps.is_finite() && eps > 0.0) {
        return (
            400,
            error_json("bad_request", "eps must be positive and finite"),
        );
    }
    if let Some(domain) = str_field("domain") {
        match crate::results::parse_domain(domain) {
            Some(d) if d == state.domain => {}
            _ => {
                return (
                    400,
                    error_json(
                        "bad_request",
                        &format!(
                            "domain {domain} does not match the served domain {}",
                            state.domain
                        ),
                    ),
                )
            }
        }
    }
    let Some(data) = state.datasets.get(dataset_name) else {
        return (404, error_json("unknown_dataset", dataset_name));
    };

    // Mechanism: explicit name, or `auto` → DAWA where supported (the
    // paper's overall winner), IDENTITY otherwise.
    let requested_mech = str_field("mechanism").unwrap_or("auto");
    let mech_name = if requested_mech == "auto" {
        let dawa = mechanism_by_name("DAWA").expect("registry always has DAWA");
        if dawa.supports(&state.domain) {
            "DAWA".to_string()
        } else {
            "IDENTITY".to_string()
        }
    } else {
        requested_mech.to_string()
    };
    let Some(mech) = mechanism_by_name(&mech_name) else {
        return (400, error_json("unknown_mechanism", &mech_name));
    };
    if !mech.supports(&state.domain) {
        return (
            400,
            error_json(
                "bad_request",
                &format!("{mech_name} does not support domain {}", state.domain),
            ),
        );
    }
    {
        let mut counts = state.mech_counts.lock().expect("counts poisoned");
        *counts.entry(mech_name.clone()).or_insert(0) += 1;
    }

    let workload = match workload_for(state, str_field("workload")) {
        Ok(w) => w,
        Err(e) => return (400, error_json("bad_request", &e)),
    };

    // Admission control: atomic check-and-reserve, durable before any
    // noise is drawn.
    match state.accountant.reserve(tenant, eps) {
        Ok(()) => {}
        Err(AdmissionError::UnknownTenant(t)) => return (404, error_json("unknown_tenant", &t)),
        Err(AdmissionError::Exhausted {
            requested,
            remaining,
        }) => {
            return (
                429,
                format!(
                    "{{\"error\":\"budget_exhausted\",\"requested\":{},\"remaining\":{}}}",
                    jf(requested),
                    jf(remaining)
                ),
            )
        }
        Err(AdmissionError::Journal(e)) => return (503, error_json("journal_unavailable", &e)),
    }

    // Everything below owes the tenant a refund on failure.
    let refund_and = |status: u16, body: String| -> (u16, String) {
        if let Err(e) = state.accountant.refund(tenant, eps) {
            eprintln!("[serve] refund journal write failed for {tenant}: {e}");
        }
        (status, body)
    };

    let (plan, cache_hit) =
        match state
            .plan_cache
            .plan_for_traced(mech.as_ref(), &state.domain, &workload)
        {
            Ok(pair) => pair,
            Err(e) => return refund_and(500, error_json("plan_failed", &e.to_string())),
        };

    let (dims, da, db) = match state.domain {
        Domain::D1(n) => (1, n as u64, 0),
        Domain::D2(r, c) => (2, r as u64, c as u64),
    };
    let batch_key = Fingerprint::new()
        .str(&mech_name)
        .word(mech.config_fingerprint())
        .word(dims)
        .word(da)
        .word(db)
        .word(workload.fingerprint())
        .str(dataset_name)
        .f64(eps)
        .finish();
    let executed = state.batcher.run(batch_key, || {
        let seq = state.release_seq.fetch_add(1, Ordering::Relaxed);
        let mut rng = rng_for("serve", &[state.seed, batch_key, seq]);
        execute_eps_with(plan.as_ref(), &data.x, eps, ws, &mut rng).map_err(|e| e.to_string())
    });
    let (release, batched) = match executed {
        Ok(pair) => pair,
        Err(e) => return refund_and(500, error_json("mechanism_failed", &e)),
    };

    // Optional SLO block (operator opt-in): scaled per-query L1/L2 error
    // of this very release against the true workload answers.
    let slo = state.slo.then(|| {
        let y_true = y_true_for(state, dataset_name, &workload, &data.x);
        let y_hat = workload.evaluate_cells(&release.estimate);
        let scale = state.scale as f64;
        (
            scaled_per_query_error(&y_true, &y_hat, scale, Loss::L1),
            scaled_per_query_error(&y_true, &y_hat, scale, Loss::L2),
        )
    });

    let remaining = state
        .accountant
        .snapshot(tenant)
        .map(|s| s.remaining)
        .unwrap_or(0.0);
    let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut out = String::with_capacity(256 + 16 * release.estimate.len());
    out.push_str(&format!(
        "{{\"tenant\":\"{tenant}\",\"dataset\":\"{dataset_name}\",\"mechanism\":\"{mech_name}\",\"eps\":{},\"remaining\":{},\"plan_cache_hit\":{cache_hit},\"batched\":{batched},\"latency_ms\":{}",
        jf(eps),
        jf(remaining),
        jf(latency_ms)
    ));
    if let Some((l1, l2)) = slo {
        out.push_str(&format!(
            ",\"slo\":{{\"scaled_l1\":{},\"scaled_l2\":{}}}",
            jf(l1),
            jf(l2)
        ));
    }
    out.push_str(",\"release\":");
    out.push_str(&release.to_json());
    out.push('}');
    (200, out)
}

/// Resolve (and memoize) the workload for a request's `workload` field.
fn workload_for(state: &ServerState, spec: Option<&str>) -> Result<Arc<Workload>, String> {
    let spec = match spec {
        None => {
            if state.domain.dims() == 1 {
                WorkloadSpec::Prefix
            } else {
                WorkloadSpec::RandomRanges(2000)
            }
        }
        Some("prefix") => {
            if state.domain.dims() != 1 {
                return Err("prefix workload is 1-D only".into());
            }
            WorkloadSpec::Prefix
        }
        Some("identity") => WorkloadSpec::Identity,
        Some(s) if s.starts_with("random:") => WorkloadSpec::RandomRanges(
            s["random:".len()..]
                .parse()
                .map_err(|_| format!("bad workload {s:?}"))?,
        ),
        Some(s) => return Err(format!("unknown workload {s:?} (prefix|identity|random:N)")),
    };
    let key = match spec {
        WorkloadSpec::Prefix => (1_u8, 0_usize),
        WorkloadSpec::Identity => (2, 0),
        WorkloadSpec::RandomRanges(n) => (3, n),
    };
    let mut memo = state.workload_memo.lock().expect("workload memo poisoned");
    if let Some(w) = memo.get(&key) {
        return Ok(Arc::clone(w));
    }
    let w = Arc::new(spec.build(state.domain));
    memo.insert(key, Arc::clone(&w));
    Ok(w)
}

/// True workload answers for the SLO block, memoized per (dataset,
/// workload) — evaluating `W x` once per pair, not per request.
fn y_true_for(
    state: &ServerState,
    dataset: &str,
    workload: &Workload,
    x: &DataVector,
) -> Arc<Vec<f64>> {
    let key = (dataset.to_string(), workload.fingerprint());
    let mut memo = state.y_true_memo.lock().expect("y_true memo poisoned");
    if let Some(y) = memo.get(&key) {
        return Arc::clone(y);
    }
    let y = Arc::new(workload.evaluate(x));
    memo.insert(key, Arc::clone(&y));
    y
}

/// `GET /v1/status`.
fn status_json(state: &ServerState) -> String {
    let plan = state.plan_cache.stats();
    let batches = state.batcher.stats();
    let mut mechs: Vec<(String, u64)> = {
        let counts = state.mech_counts.lock().expect("counts poisoned");
        counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
    };
    mechs.sort();
    let mech_json = mechs
        .iter()
        .map(|(name, count)| format!("\"{name}\":{count}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"uptime_s\":{},\"requests\":{},\"queue_depth\":{},\"tenants\":{},\"mechanisms\":{{{mech_json}}},\"plan_cache\":{{\"hits\":{},\"misses\":{},\"built\":{}}},\"batches\":{{\"led\":{},\"followed\":{}}}}}",
        jf(state.started.elapsed().as_secs_f64()),
        state.requests.load(Ordering::Relaxed),
        state.queue_depth.load(Ordering::Relaxed),
        state.accountant.len(),
        plan.hits,
        plan.misses,
        state.plan_cache.len(),
        batches.led,
        batches.followed,
    )
}

/// `{"error": code, "detail": detail}` with minimal escaping (details are
/// our own messages; quotes/backslashes are escaped defensively).
fn error_json(code: &str, detail: &str) -> String {
    let mut escaped = String::with_capacity(detail.len());
    for c in detail.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    format!("{{\"error\":\"{code}\",\"detail\":\"{escaped}\"}}")
}

/// JSON float: shortest round-trip for finite values, `null` otherwise.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
