//! The release server: datasets loaded at startup, an event-driven
//! worker pool over the hand-rolled HTTP layer, and six endpoints.
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /v1/release` | shed check → rate limit → reserve ε → (batched) `Plan::execute` → JSON release |
//! | `GET /v1/tenants/:id/budget` | the tenant's live balance |
//! | `GET /v1/status` | uptime, per-mechanism counts, plan-cache/batcher/poller/robustness counters |
//! | `GET /v1/healthz` | liveness: 200 whenever the process can answer |
//! | `GET /v1/readyz` | readiness: 503 while draining, at the connection cap, or overloaded |
//! | `POST /v1/admin/reload` | re-read `--tenant-config` and apply grants without restart |
//!
//! ## Scheduling
//!
//! Workers do not own connections; connections are **parked** on a
//! readiness [`Poller`] (`epoll` on Linux, `poll(2)` on other unixes —
//! see [`super::poller`]). The listener and every parked socket register
//! one-shot read/write interest; workers block on `poller.wait()` and
//! each delivered event hands exactly one connection to exactly one
//! worker, which drains arrived bytes, serves any complete requests,
//! queues response bytes for nonblocking flush, and re-parks. A
//! slowloris client dribbling one byte a second therefore costs one
//! wakeup per byte — never a pinned worker, never a polling cadence —
//! and its 408 fires from the [`TimerWheel`]: every parked connection
//! arms a deadline (write/partial/idle) keyed by the next-expiry
//! instant, so reaping is exact rather than cadence-quantized.
//! Deadlines and caps live in [`Limits`]; violations answer with clean
//! 408/413/429/431/503 per the error contract in the README.
//!
//! Release flow: load shedding and rate limiting run **before**
//! admission ([`TenantAccountant::reserve`] — atomic check-and-reserve,
//! journaled), so a shed request costs zero ε. A mechanism failure
//! refunds, and the response's remaining balance is read back after
//! settlement. Plans come from one [`PlanCache`] shared by all workers;
//! executions of the same (mechanism, domain, workload, dataset, ε)
//! arriving within the batch window share one noise draw through the
//! [`Batcher`]. Per-connection buffers (read, body, response, output)
//! are pooled across keep-alive requests, so the steady-state request
//! path allocates only inside the mechanism itself.

use super::accountant::{parse_tenant_grants, AdmissionError, ReloadOutcome, TenantAccountant};
use super::batcher::Batcher;
use super::http::{self, JsonValue, Request};
use super::limits::{Limits, RateLimiter};
use super::poller::{Backend, Event, Interest, Poller, TimerWheel};
use super::shutdown;
use crate::config::WorkloadSpec;
use crate::runner::PlanCache;
use crate::selector::{Confidence, SelectionProfile, SelectorQuery, ShapeClass};
use dpbench_algorithms::registry::mechanism_by_name;
use dpbench_core::mechanism::execute_eps_with;
use dpbench_core::rng::{hash_str, rng_for};
use dpbench_core::{
    scaled_per_query_error, DataVector, Domain, Fingerprint, Loss, Release, Workload, Workspace,
};
use dpbench_datasets::{catalog, DataGenerator};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The listener's poller token; connection tokens start above it.
const LISTENER_TOKEN: u64 = 0;

/// Cap on any single `poller.wait` so workers notice the stop flag and
/// process signals promptly even when no deadline is near.
const STOP_POLL: Duration = Duration::from_millis(50);

/// Server configuration (the CLI builds this from `dpbench serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Catalog names of the datasets to load at startup.
    pub datasets: Vec<String>,
    /// Scale every dataset is generated at.
    pub scale: u64,
    /// Domain every dataset is generated over (and every plan runs on).
    pub domain: Domain,
    /// `(tenant, lifetime ε)` grants.
    pub tenants: Vec<(String, f64)>,
    /// Tenant-config file the grants came from; kept so SIGHUP or
    /// `POST /v1/admin/reload` can re-read it without restart.
    pub tenant_config: Option<PathBuf>,
    /// Spend journal path; `None` serves from memory only.
    pub journal: Option<PathBuf>,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Same-strategy request batching window (zero disables).
    pub batch_window: Duration,
    /// Connection caps, deadlines, and rate limits.
    pub limits: Limits,
    /// Readiness backend (`Auto` resolves to epoll on Linux, `poll(2)`
    /// on other unixes). `Poll` forces the portable fallback — the
    /// fallback test suite runs the full hostile contract against it.
    pub poller: Backend,
    /// Seed stirred into data generation and release noise.
    pub seed: u64,
    /// Operator opt-in: include the SLO error block (scaled L1/L2 vs the
    /// true workload answers) in release responses.
    pub slo: bool,
    /// Selection-profile file (`dpbench recommend --profile`); when set,
    /// `"mechanism":"auto"` resolves through the profile per request and
    /// SIGHUP / `POST /v1/admin/reload` re-reads it without restart.
    pub profile: Option<PathBuf>,
    /// Log one line per request to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".into(),
            datasets: vec!["MEDCOST".into()],
            scale: 100_000,
            domain: Domain::D1(1024),
            tenants: Vec::new(),
            tenant_config: None,
            journal: None,
            threads: 4,
            batch_window: Duration::ZERO,
            limits: Limits::default(),
            poller: Backend::Auto,
            seed: 0,
            slo: false,
            profile: None,
            verbose: false,
        }
    }
}

/// One dataset materialized at startup.
struct LoadedDataset {
    x: DataVector,
    /// Shape class of the catalog base shape — the selector's lookup key
    /// component that depends on *which* data is being released.
    shape: ShapeClass,
}

/// Memo of true workload answers, keyed by (dataset, workload
/// fingerprint) — the SLO block evaluates `W x` once per pair.
type YTrueMemo = Mutex<HashMap<(String, u64), Arc<Vec<f64>>>>;

/// Robustness counters — every shed, timeout, and reject is counted so
/// the chaos tests (and operators) can see exactly where hostile traffic
/// went. All monotonic; exposed in `/v1/status` under `"robustness"`.
#[derive(Default)]
pub struct Robustness {
    /// Connects refused at the concurrent-connection cap.
    pub shed_conns: AtomicU64,
    /// Connects refused because the parked-connection set was full.
    pub shed_queue: AtomicU64,
    /// Releases shed because the estimated queue wait was too long.
    pub shed_wait: AtomicU64,
    /// 408s: connections that dribbled a partial request past the
    /// header deadline (slowloris).
    pub timeouts: AtomicU64,
    /// 429s from the token bucket (NOT budget exhaustion).
    pub rate_limited: AtomicU64,
    /// Idle keep-alive connections reaped silently.
    pub reaped_idle: AtomicU64,
    /// Parser rejects (4xx from hostile bytes).
    pub rejects: AtomicU64,
}

/// One live connection, either parked in the readiness map or being
/// serviced by exactly one worker. All buffers are pooled across the
/// connection's keep-alive lifetime.
struct Conn {
    stream: TcpStream,
    /// The poller/timer token (unique for the server's lifetime — fd
    /// reuse after close can never alias a stale event to a new conn).
    token: u64,
    /// Accumulated inbound bytes not yet parsed.
    buf: Vec<u8>,
    /// Recycled request-body allocation (see [`http::try_parse_with`]).
    body_scratch: Vec<u8>,
    /// Recycled response-body build buffer.
    resp_body: String,
    /// Serialized response bytes not yet written to the socket.
    out: Vec<u8>,
    /// How much of `out` has been written.
    out_pos: usize,
    /// Last time bytes arrived or a request was served (idle reaping).
    last_activity: Instant,
    /// Set while an incomplete request sits in `buf` (408 deadline).
    partial_since: Option<Instant>,
    /// Set while a response is stuck behind a slow-reading peer.
    write_since: Option<Instant>,
    /// Close once `out` is fully flushed.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Self {
        Self {
            stream,
            token,
            buf: Vec::new(),
            body_scratch: Vec::new(),
            resp_body: String::new(),
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            partial_since: None,
            write_since: None,
            close_after_flush: false,
        }
    }

    /// Unwritten response bytes pending on this connection.
    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The earliest deadline this connection is on: flush-to-peer, then
    /// partial-request (408), then keep-alive idle.
    fn next_deadline(&self, limits: &Limits) -> Instant {
        if self.pending_out() {
            self.write_since.unwrap_or_else(Instant::now) + limits.write_timeout
        } else if let Some(t) = self.partial_since {
            t + limits.header_timeout
        } else {
            self.last_activity + limits.idle_timeout
        }
    }

    /// The readiness the connection is waiting on.
    fn interest(&self) -> Interest {
        if self.pending_out() {
            Interest::WRITE
        } else {
            Interest::READ
        }
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(s: &T) -> i32 {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    0 // the Sim backend never touches real fds
}

/// Shared state of a running server — exposed through
/// [`ServerHandle::state`] so tests can assert on counters directly.
pub struct ServerState {
    /// Per-tenant budgets (public: the CLI prints balances at shutdown).
    pub accountant: TenantAccountant,
    /// The shared cross-request plan cache.
    pub plan_cache: PlanCache,
    /// Robustness counters (sheds, timeouts, rejects).
    pub robust: Robustness,
    /// The caps and deadlines this server enforces.
    pub limits: Limits,
    datasets: HashMap<String, LoadedDataset>,
    batcher: Batcher<Release>,
    rate_limiter: Option<RateLimiter>,
    tenant_config: Option<PathBuf>,
    /// The readiness poller every worker blocks on.
    poller: Poller,
    /// Deadline timers for every parked connection.
    wheel: TimerWheel,
    /// Parked connections by token; taking one out of the map is the
    /// exclusive claim to service it.
    parked: Mutex<HashMap<u64, Conn>>,
    /// Monotonic token source (never reused; starts above the listener).
    next_token: AtomicU64,
    listener: TcpListener,
    domain: Domain,
    scale: u64,
    threads: usize,
    seed: u64,
    slo: bool,
    verbose: bool,
    started: Instant,
    requests: AtomicU64,
    release_seq: AtomicU64,
    /// Live connections (accepted, not yet closed).
    conn_count: AtomicUsize,
    /// Releases currently executing (the shed estimator's input).
    inflight: AtomicUsize,
    /// EWMA of successful release service time, microseconds.
    ewma_us: AtomicU64,
    stopping: AtomicBool,
    mech_counts: Mutex<HashMap<String, u64>>,
    workload_memo: Mutex<HashMap<(u8, usize), Arc<Workload>>>,
    y_true_memo: YTrueMemo,
    /// Profile file `auto` routing resolves through; kept for hot reload.
    profile_path: Option<PathBuf>,
    /// The loaded selection profile (swapped atomically on reload).
    selector: Mutex<Option<Arc<SelectionProfile>>>,
    /// Auto-routing counters (also in `/v1/status`).
    pub selector_stats: SelectorStats,
}

/// Counters for profile-driven `auto` routing.
#[derive(Default)]
pub struct SelectorStats {
    /// Requests that asked for `"mechanism":"auto"`.
    pub auto_requests: AtomicU64,
    /// Auto requests answered from an exactly-matching profile cell.
    pub exact: AtomicU64,
    /// Auto requests answered from a nearest-cell fallback.
    pub near: AtomicU64,
    /// Auto requests that fell through to the built-in default (no
    /// profile loaded, or no cell for this domain).
    pub fallback_default: AtomicU64,
    /// Successful profile (re)loads, including the one at startup.
    pub reloads: AtomicU64,
}

impl ServerState {
    /// Estimated queue wait for a newly-arriving release, in ms: releases
    /// beyond the worker count, times the smoothed service time.
    fn est_wait_ms(&self) -> f64 {
        let inflight = self.inflight.load(Ordering::Relaxed);
        let waiting = (inflight + 1).saturating_sub(self.threads.max(1));
        waiting as f64 * self.ewma_us.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Fold one successful release's service time into the EWMA.
    fn observe_service_us(&self, us: u64) {
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - old / 8 + us / 8 };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    fn parked_len(&self) -> usize {
        self.parked.lock().expect("parked map poisoned").len()
    }

    /// Live readiness-poller counters (also in `/v1/status`).
    pub fn poller_stats(&self) -> super::poller::PollerStats {
        self.poller.stats()
    }

    /// Read and parse the tenant-config file without applying anything
    /// — the commit half is [`TenantAccountant::reload`].
    fn stage_tenants(&self) -> io::Result<Vec<(String, f64)>> {
        let Some(path) = &self.tenant_config else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no --tenant-config file to reload from",
            ));
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        parse_tenant_grants(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Read and parse the selection-profile file without applying
    /// anything — the commit half is [`apply_profile`](Self::apply_profile).
    fn stage_profile(&self) -> io::Result<SelectionProfile> {
        let Some(path) = &self.profile_path else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no --profile file to reload from",
            ));
        };
        SelectionProfile::read_file(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    }

    /// Swap a staged profile in.
    fn apply_profile(&self, profile: SelectionProfile) {
        *self.selector.lock().expect("selector poisoned") = Some(Arc::new(profile));
        self.selector_stats.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-read the tenant-config file and apply the grants (see
    /// [`TenantAccountant::reload`]).
    pub fn reload_tenants(&self) -> io::Result<ReloadOutcome> {
        let grants = self.stage_tenants()?;
        self.accountant.reload(&grants)
    }

    /// Re-read the selection-profile file and swap it in. Errors leave
    /// the previously-loaded profile serving.
    pub fn reload_profile(&self) -> io::Result<()> {
        let profile = self.stage_profile()?;
        self.apply_profile(profile);
        Ok(())
    }

    /// The currently-loaded selection profile, if any.
    fn current_profile(&self) -> Option<Arc<SelectionProfile>> {
        self.selector.lock().expect("selector poisoned").clone()
    }
}

/// Handle to a started server: address, state, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live server state (counters, accountant, plan cache).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// True once shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Hot-reload from the configured files (the SIGHUP handler path):
    /// tenant grants if `--tenant-config` was given, and the selection
    /// profile if `--profile` was. Both files are parsed before either
    /// is applied, so an error from one aborts the whole reload without
    /// leaving the other half-committed.
    pub fn reload(&self) -> io::Result<ReloadOutcome> {
        if self.state.tenant_config.is_none() && self.state.profile_path.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "nothing to reload: neither --tenant-config nor --profile configured",
            ));
        }
        let grants = match self.state.tenant_config {
            Some(_) => Some(self.state.stage_tenants()?),
            None => None,
        };
        let profile = match self.state.profile_path {
            Some(_) => Some(self.state.stage_profile()?),
            None => None,
        };
        let outcome = match grants {
            Some(g) => self.state.accountant.reload(&g)?,
            None => ReloadOutcome::default(),
        };
        if let Some(p) = profile {
            self.state.apply_profile(p);
        }
        Ok(outcome)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, join
    /// every thread, then flush + fsync the spend journal.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.poller.wake();
        for join in self.joins {
            let _ = join.join();
        }
        self.state.accountant.sync()
    }
}

/// Start the server; returns once the listener is bound and the worker
/// pool is running. Shut down via [`ServerHandle::shutdown`] (or a
/// process signal — workers also poll [`shutdown::requested`]).
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    if config.tenants.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs at least one tenant (--tenants name=eps,... or --tenant-config)",
        ));
    }
    if config.datasets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs at least one dataset",
        ));
    }
    let mut datasets = HashMap::new();
    for name in &config.datasets {
        let ds = catalog::by_name(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown dataset {name} (see `dpbench list-datasets`)"),
            )
        })?;
        let mut rng = rng_for(
            "serve-data",
            &[
                hash_str(name),
                config.scale,
                config.domain.n_cells() as u64,
                config.seed,
            ],
        );
        let x = DataGenerator::new().generate(&ds, config.domain, config.scale, &mut rng);
        let shape = ShapeClass::of_dataset(name);
        datasets.insert(name.clone(), LoadedDataset { x, shape });
    }
    let selector = match &config.profile {
        Some(path) => {
            let profile = SelectionProfile::read_file(path)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
            Some(Arc::new(profile))
        }
        None => None,
    };
    let accountant = TenantAccountant::new(&config.tenants, config.journal.as_deref())?;
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poller = Poller::new(config.poller)?;
    poller.register(raw_fd(&listener), LISTENER_TOKEN, Interest::READ)?;

    let state = Arc::new(ServerState {
        accountant,
        plan_cache: PlanCache::new(),
        robust: Robustness::default(),
        rate_limiter: config.limits.rate_limit.map(RateLimiter::new),
        limits: config.limits.clone(),
        tenant_config: config.tenant_config.clone(),
        poller,
        wheel: TimerWheel::new(),
        parked: Mutex::new(HashMap::new()),
        next_token: AtomicU64::new(LISTENER_TOKEN + 1),
        listener,
        datasets,
        batcher: Batcher::new(config.batch_window),
        domain: config.domain,
        scale: config.scale,
        threads: config.threads.max(1),
        seed: config.seed,
        slo: config.slo,
        verbose: config.verbose,
        started: Instant::now(),
        requests: AtomicU64::new(0),
        release_seq: AtomicU64::new(0),
        conn_count: AtomicUsize::new(0),
        inflight: AtomicUsize::new(0),
        ewma_us: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
        mech_counts: Mutex::new(HashMap::new()),
        workload_memo: Mutex::new(HashMap::new()),
        y_true_memo: Mutex::new(HashMap::new()),
        profile_path: config.profile.clone(),
        selector: Mutex::new(selector),
        selector_stats: SelectorStats::default(),
    });
    if state.current_profile().is_some() {
        state.selector_stats.reloads.fetch_add(1, Ordering::Relaxed);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::with_capacity(state.threads);
    for _ in 0..state.threads {
        let stop = Arc::clone(&stop);
        let state = Arc::clone(&state);
        joins.push(std::thread::spawn(move || worker_loop(&state, &stop)));
    }

    Ok(ServerHandle {
        addr,
        stop,
        joins,
        state,
    })
}

/// One event-driven worker: block on the poller (timeout capped at the
/// next timer-wheel deadline), service whatever readiness or expiry it
/// is handed, re-park or close, repeat. There is no accept thread and no
/// rotation cadence — an idle server makes zero syscalls between
/// wakeups.
fn worker_loop(state: &ServerState, stop: &AtomicBool) {
    // Per-worker scratch, reused across every request this worker serves
    // (same discipline as the grid runner's workers).
    let mut ws = Workspace::new();
    let mut events: Vec<Event> = Vec::with_capacity(64);
    let mut due: Vec<u64> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) || shutdown::requested() {
            state.stopping.store(true, Ordering::SeqCst);
            // Cascade the stop to the other blocked workers, then drain.
            state.poller.wake();
            drain_on_stop(state, &mut ws);
            break;
        }
        let timeout = state
            .wheel
            .next_deadline()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(STOP_POLL)
            .min(STOP_POLL);
        events.clear();
        if state.poller.wait(&mut events, timeout).is_err() {
            // A broken wait must not become a hot loop.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        let mut handled = 0_usize;
        // One wait can harvest many ready connections. Claim at most one
        // to service inline; re-arm the rest so idle workers pick them
        // up concurrently — servicing a whole harvest serially here
        // would head-of-line block every later connection behind the
        // first slow request (e.g. a batch-window leader's sleep).
        let mut claimed: Option<Conn> = None;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready(state);
                handled += 1;
            } else if claimed.is_none() {
                // A map miss is a stale event (conn closed or already
                // claimed via its timer) — drop it.
                if let Some(conn) = take_parked(state, ev.token) {
                    claimed = Some(conn);
                    handled += 1;
                }
            } else {
                requeue_ready(state, ev.token);
                handled += 1;
            }
        }
        if let Some(conn) = claimed {
            dispatch(state, conn, &mut ws);
        }
        due.clear();
        state.wheel.pop_due(Instant::now(), &mut due);
        if !due.is_empty() {
            state.poller.note_timer_fires(due.len() as u64);
        }
        for &token in &due {
            if let Some(conn) = take_parked(state, token) {
                // The service slice re-checks the deadline against live
                // state: bytes that raced the expiry simply get served.
                dispatch(state, conn, &mut ws);
                handled += 1;
            }
        }
        if handled == 0 {
            state.poller.note_spurious();
        }
    }
}

/// Remove a connection from the parked map, claiming it exclusively;
/// cancels its pending deadline.
fn take_parked(state: &ServerState, token: u64) -> Option<Conn> {
    let conn = state
        .parked
        .lock()
        .expect("parked map poisoned")
        .remove(&token)?;
    state.wheel.cancel(token);
    Some(conn)
}

/// Hand a ready-but-unclaimed connection back to the poller: the conn
/// stays parked with its deadline armed, and re-arming its one-shot
/// interest (still satisfied) re-fires immediately for whichever worker
/// waits next — instead of queueing behind this worker's inline request.
fn requeue_ready(state: &ServerState, token: u64) {
    let armed = {
        let parked = state.parked.lock().expect("parked map poisoned");
        // A map miss is a stale event — drop it.
        parked
            .get(&token)
            .map(|conn| (raw_fd(&conn.stream), conn.interest()))
    };
    if let Some((fd, interest)) = armed {
        if state.poller.rearm(fd, token, interest).is_err() {
            // Unwatchable connection: nothing will ever wake it — close it.
            if let Some(conn) = take_parked(state, token) {
                close_conn(state, conn);
            }
        }
    }
}

/// Service one claimed connection, then re-park or close it.
fn dispatch(state: &ServerState, mut conn: Conn, ws: &mut Workspace) {
    let stopping = state.stopping.load(Ordering::SeqCst);
    match service_conn(&mut conn, state, stopping, ws) {
        Fate::Keep => park(state, conn),
        Fate::Close => close_conn(state, conn),
    }
}

/// Park a serviced connection: into the map first (so a delivered event
/// always finds it), deadline armed second, readiness re-armed last —
/// this ordering is what makes a wakeup between any two steps harmless.
fn park(state: &ServerState, conn: Conn) {
    let token = conn.token;
    let fd = raw_fd(&conn.stream);
    let interest = conn.interest();
    let deadline = conn.next_deadline(&state.limits);
    state
        .parked
        .lock()
        .expect("parked map poisoned")
        .insert(token, conn);
    state.wheel.arm(token, deadline);
    if state.poller.rearm(fd, token, interest).is_err() {
        // Unwatchable connection: nothing will ever wake it — close it.
        if let Some(conn) = take_parked(state, token) {
            close_conn(state, conn);
        }
    }
}

/// Close a claimed connection and release its resources.
fn close_conn(state: &ServerState, conn: Conn) {
    state.poller.deregister(raw_fd(&conn.stream), conn.token);
    state.conn_count.fetch_sub(1, Ordering::Relaxed);
    // The stream drops (and the fd closes) here.
}

/// Accept every pending connect, then re-arm the listener. Any worker
/// can handle the listener's readiness event; one-shot delivery means
/// exactly one does.
fn accept_ready(state: &ServerState) {
    loop {
        match state.listener.accept() {
            Ok((stream, _)) => admit_conn(stream, state),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    if !state.stopping.load(Ordering::SeqCst) {
        let _ = state
            .poller
            .rearm(raw_fd(&state.listener), LISTENER_TOKEN, Interest::READ);
    }
}

/// Admit (or shed) one freshly-accepted connection.
fn admit_conn(stream: TcpStream, state: &ServerState) {
    let limits = &state.limits;
    let over_conns = state.conn_count.load(Ordering::Relaxed) >= limits.max_conns;
    let over_queue = state.parked_len() >= limits.max_queue;
    if over_conns || over_queue {
        if over_conns {
            state.robust.shed_conns.fetch_add(1, Ordering::Relaxed);
        } else {
            state.robust.shed_queue.fetch_add(1, Ordering::Relaxed);
        }
        // Best-effort one-shot 503: a short write deadline so a client
        // that refuses to read can't stall the accepting worker.
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let mut s = &stream;
        let _ = http::write_response_ex(
            &mut s,
            503,
            &error_json(
                "overloaded",
                if over_conns {
                    "connection cap reached"
                } else {
                    "admission queue full"
                },
            ),
            true,
            Some(1),
        );
        return; // dropped, never parked
    }
    state.conn_count.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(true);
    let token = state.next_token.fetch_add(1, Ordering::Relaxed);
    let conn = Conn::new(stream, token);
    let fd = raw_fd(&conn.stream);
    let deadline = conn.next_deadline(&state.limits);
    state
        .parked
        .lock()
        .expect("parked map poisoned")
        .insert(token, conn);
    state.wheel.arm(token, deadline);
    if state.poller.register(fd, token, Interest::READ).is_err() {
        if let Some(conn) = take_parked(state, token) {
            close_conn(state, conn);
        }
    }
}

/// Shutdown drain: claim every parked connection, serve whatever
/// complete requests it already buffered, flush (bounded, blocking —
/// the last response must not be torn by shutdown), and close.
fn drain_on_stop(state: &ServerState, ws: &mut Workspace) {
    loop {
        let token = {
            let parked = state.parked.lock().expect("parked map poisoned");
            parked.keys().next().copied()
        };
        let Some(token) = token else { break };
        let Some(mut conn) = take_parked(state, token) else {
            continue; // another draining worker got it first
        };
        if matches!(service_conn(&mut conn, state, true, ws), Fate::Keep) {
            // Response bytes still pending for a live peer.
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(state.limits.write_timeout));
            let mut s = &conn.stream;
            let _ = s.write_all(&conn.out[conn.out_pos..]);
        }
        close_conn(state, conn);
    }
}

/// What a worker should do with a connection after one service slice.
enum Fate {
    /// Re-park on the poller until readiness or a deadline.
    Keep,
    /// Drop the connection (the caller closes and decrements the count).
    Close,
}

/// One service slice: flush pending output, drain arrived bytes, serve
/// every complete request into the pooled buffers, flush again, enforce
/// deadlines. Never blocks — a slow peer costs exactly one wakeup.
fn service_conn(conn: &mut Conn, state: &ServerState, stopping: bool, ws: &mut Workspace) -> Fate {
    let limits = &state.limits;

    // 0. Finish any response the peer stalled on before reading more.
    match try_flush(conn) {
        Flush::Done => {}
        Flush::Pending => {
            if conn
                .write_since
                .is_some_and(|t| t.elapsed() > limits.write_timeout)
            {
                return Fate::Close; // peer stopped reading: cut it loose
            }
            return Fate::Keep;
        }
        Flush::Error => return Fate::Close,
    }
    if conn.close_after_flush {
        return Fate::Close;
    }

    // 1. Drain whatever bytes have arrived (nonblocking).
    let mut eof = false;
    let mut progressed = false;
    let mut chunk = [0_u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Fate::Close,
        }
    }
    if progressed {
        conn.last_activity = Instant::now();
    }

    // 2. Serve every complete request already buffered (including, on a
    // half-closed connection, requests that arrived before the FIN).
    // Responses accumulate in `out` — pipelined requests flush as one
    // write.
    loop {
        match http::try_parse_with(&mut conn.buf, &mut conn.body_scratch) {
            Ok(Some(mut req)) => {
                conn.partial_since = None;
                conn.last_activity = Instant::now();
                let close = req.wants_close() || stopping;
                conn.resp_body.clear();
                let meta = route(state, &req, ws, stopping, &mut conn.resp_body);
                if state.verbose {
                    eprintln!("[serve] {} {} -> {}", req.method, req.path, meta.status);
                }
                // Hand the body allocation back for the next request.
                conn.body_scratch = std::mem::take(&mut req.body);
                http::write_response_into(
                    &mut conn.out,
                    meta.status,
                    &conn.resp_body,
                    close,
                    meta.retry_after,
                );
                if close {
                    conn.close_after_flush = true;
                    break;
                }
            }
            Ok(None) => break,
            Err(rej) => {
                state.robust.rejects.fetch_add(1, Ordering::Relaxed);
                conn.resp_body.clear();
                error_json_into(rej.code, &rej.detail, &mut conn.resp_body);
                http::write_response_into(&mut conn.out, rej.status, &conn.resp_body, true, None);
                conn.close_after_flush = true;
                break;
            }
        }
    }

    // 3. Push the accumulated responses out.
    match try_flush(conn) {
        Flush::Done => {
            if conn.close_after_flush {
                return Fate::Close;
            }
        }
        Flush::Pending => return Fate::Keep, // parks with WRITE interest
        Flush::Error => return Fate::Close,
    }

    // 4. Deadlines. A partial request is on the 408 clock (slow headers
    // and slow bodies alike); an empty buffer is on the idle clock.
    if eof || stopping {
        return Fate::Close;
    }
    if conn.buf.is_empty() {
        conn.partial_since = None;
        if conn.last_activity.elapsed() > limits.idle_timeout {
            state.robust.reaped_idle.fetch_add(1, Ordering::Relaxed);
            return Fate::Close;
        }
    } else {
        let since = *conn.partial_since.get_or_insert_with(Instant::now);
        if since.elapsed() > limits.header_timeout {
            state.robust.timeouts.fetch_add(1, Ordering::Relaxed);
            conn.resp_body.clear();
            error_json_into(
                "request_timeout",
                "request not completed in time",
                &mut conn.resp_body,
            );
            http::write_response_into(&mut conn.out, 408, &conn.resp_body, true, None);
            conn.close_after_flush = true;
            return match try_flush(conn) {
                Flush::Done | Flush::Error => Fate::Close,
                Flush::Pending => Fate::Keep,
            };
        }
    }
    Fate::Keep
}

/// Result of a nonblocking flush attempt.
enum Flush {
    /// Everything written; `out` is reset.
    Done,
    /// The socket backed up; remaining bytes stay queued.
    Pending,
    /// The peer is gone.
    Error,
}

/// Write as much of `out` as the socket accepts right now.
fn try_flush(conn: &mut Conn) -> Flush {
    while conn.pending_out() {
        match (&conn.stream).write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Flush::Error,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // The write deadline starts when the peer first stalls.
                conn.write_since.get_or_insert_with(Instant::now);
                return Flush::Pending;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Error,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    conn.write_since = None;
    Flush::Done
}

/// Status and retry hint of one routed response; the body is built in
/// the connection's pooled buffer.
struct RespMeta {
    status: u16,
    retry_after: Option<u64>,
}

impl RespMeta {
    fn new(status: u16) -> Self {
        Self {
            status,
            retry_after: None,
        }
    }

    fn retry(status: u16, after_s: u64) -> Self {
        Self {
            status,
            retry_after: Some(after_s),
        }
    }
}

/// Replace `out` with a `{"error":code,...}` body and return the status.
fn err_meta(out: &mut String, status: u16, code: &str, detail: &str) -> RespMeta {
    out.clear();
    error_json_into(code, detail, out);
    RespMeta::new(status)
}

/// Dispatch one request to its endpoint; the response body is written
/// into `out` (cleared by the caller).
fn route(
    state: &ServerState,
    req: &Request,
    ws: &mut Workspace,
    stopping: bool,
    out: &mut String,
) -> RespMeta {
    state.requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/release") => handle_release(state, &req.body, ws, out),
        ("POST", "/v1/admin/reload") => handle_reload(state, out),
        ("GET", "/v1/status") => {
            out.push_str(&status_json(state));
            RespMeta::new(200)
        }
        ("GET", "/v1/healthz") => {
            out.push_str("{\"ok\":true}");
            RespMeta::new(200)
        }
        ("GET", "/v1/readyz") => handle_readyz(state, stopping, out),
        ("GET", path) => {
            if let Some(tenant) = path
                .strip_prefix("/v1/tenants/")
                .and_then(|rest| rest.strip_suffix("/budget"))
            {
                match state.accountant.snapshot(tenant) {
                    Some(snap) => {
                        let _ = write!(
                            out,
                            "{{\"tenant\":\"{tenant}\",\"total\":{},\"spent\":{},\"remaining\":{},\"releases\":{}}}",
                            jf(snap.total),
                            jf(snap.spent),
                            jf(snap.remaining),
                            snap.releases
                        );
                        RespMeta::new(200)
                    }
                    None => err_meta(out, 404, "unknown_tenant", tenant),
                }
            } else {
                err_meta(out, 404, "not_found", path)
            }
        }
        ("POST", path) => err_meta(out, 404, "not_found", path),
        (method, _) => err_meta(out, 405, "method_not_allowed", method),
    }
}

/// `GET /v1/readyz`: degrade *before* collapse — a load balancer pulls
/// this node while it still answers health checks.
fn handle_readyz(state: &ServerState, stopping: bool, out: &mut String) -> RespMeta {
    if stopping || state.stopping.load(Ordering::SeqCst) {
        return err_meta(out, 503, "draining", "shutting down");
    }
    let conns = state.conn_count.load(Ordering::Relaxed);
    if conns >= state.limits.max_conns {
        let meta = err_meta(out, 503, "at_connection_cap", "connection cap reached");
        return RespMeta::retry(meta.status, 1);
    }
    let est_wait_ms = state.est_wait_ms();
    if est_wait_ms > state.limits.max_wait.as_secs_f64() * 1e3 {
        err_meta(
            out,
            503,
            "overloaded",
            "estimated wait exceeds --max-wait-ms",
        );
        return RespMeta::retry(503, retry_after_s(est_wait_ms));
    }
    let _ = write!(
        out,
        "{{\"ready\":true,\"conns\":{conns},\"est_wait_ms\":{}}}",
        jf(est_wait_ms)
    );
    RespMeta::new(200)
}

/// `POST /v1/admin/reload`: parse the tenant-config file and the
/// selection profile (whichever are configured), then apply both —
/// staging before applying so a bad profile can't leave freshly
/// committed tenant grants behind as a partial reload.
fn handle_reload(state: &ServerState, out: &mut String) -> RespMeta {
    if state.tenant_config.is_none() && state.profile_path.is_none() {
        return err_meta(
            out,
            409,
            "no_tenant_config",
            "server was started without --tenant-config or --profile; nothing to reload",
        );
    }
    let grants = if state.tenant_config.is_some() {
        match state.stage_tenants() {
            Ok(grants) => Some(grants),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return err_meta(out, 400, "bad_tenant_config", &e.to_string())
            }
            Err(e) => return err_meta(out, 500, "reload_failed", &e.to_string()),
        }
    } else {
        None
    };
    let profile = if state.profile_path.is_some() {
        match state.stage_profile() {
            Ok(profile) => Some(profile),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return err_meta(out, 400, "bad_profile", &e.to_string())
            }
            Err(e) => return err_meta(out, 500, "reload_failed", &e.to_string()),
        }
    } else {
        None
    };
    let outcome = match grants {
        Some(grants) => match state.accountant.reload(&grants) {
            Ok(outcome) => outcome,
            Err(e) => return err_meta(out, 500, "reload_failed", &e.to_string()),
        },
        None => ReloadOutcome::default(),
    };
    let mut profile_cells = None;
    if let Some(profile) = profile {
        profile_cells = Some(profile.cells.len());
        state.apply_profile(profile);
    }
    let _ = write!(
        out,
        "{{\"reloaded\":true,\"added\":{},\"extended\":{},\"shrunk\":{},\"unchanged\":{},\"tenants\":{}",
        outcome.added,
        outcome.extended,
        outcome.shrunk,
        outcome.unchanged,
        state.accountant.len()
    );
    if let Some(cells) = profile_cells {
        let _ = write!(out, ",\"profile_cells\":{cells}");
    }
    out.push('}');
    RespMeta::new(200)
}

/// Ceiling of `ms` in whole seconds, floored at 1 — `Retry-After` is an
/// integer header and "retry immediately" defeats the point of shedding.
fn retry_after_s(ms: f64) -> u64 {
    (ms / 1e3).ceil().max(1.0) as u64
}

/// `POST /v1/release`.
fn handle_release(
    state: &ServerState,
    body: &[u8],
    ws: &mut Workspace,
    out: &mut String,
) -> RespMeta {
    let t0 = Instant::now();
    let parsed = std::str::from_utf8(body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(http::parse_object);
    let fields = match parsed {
        Ok(f) => f,
        Err(e) => return err_meta(out, 400, "bad_request", &e),
    };
    let str_field = |key: &str| fields.get(key).and_then(JsonValue::as_str);

    let Some(tenant) = str_field("tenant") else {
        return err_meta(out, 400, "bad_request", "missing \"tenant\"");
    };
    let Some(dataset_name) = str_field("dataset") else {
        return err_meta(out, 400, "bad_request", "missing \"dataset\"");
    };
    let Some(eps) = fields.get("eps").and_then(JsonValue::as_f64) else {
        return err_meta(out, 400, "bad_request", "missing numeric \"eps\"");
    };
    if !(eps.is_finite() && eps > 0.0) {
        return err_meta(out, 400, "bad_request", "eps must be positive and finite");
    }
    if let Some(domain) = str_field("domain") {
        match crate::results::parse_domain(domain) {
            Some(d) if d == state.domain => {}
            _ => {
                return err_meta(
                    out,
                    400,
                    "bad_request",
                    &format!(
                        "domain {domain} does not match the served domain {}",
                        state.domain
                    ),
                )
            }
        }
    }
    let Some(data) = state.datasets.get(dataset_name) else {
        return err_meta(out, 404, "unknown_dataset", dataset_name);
    };

    // Overload control — runs BEFORE any ε is charged, so a shed or
    // rate-limited request costs the tenant nothing.
    let est_wait_ms = state.est_wait_ms();
    if est_wait_ms > state.limits.max_wait.as_secs_f64() * 1e3 {
        state.robust.shed_wait.fetch_add(1, Ordering::Relaxed);
        let _ = write!(
            out,
            "{{\"error\":\"overloaded\",\"detail\":\"estimated wait {}ms exceeds limit\",\"est_wait_ms\":{}}}",
            est_wait_ms.round(),
            jf(est_wait_ms)
        );
        return RespMeta::retry(503, retry_after_s(est_wait_ms));
    }
    if let Some(rl) = &state.rate_limiter {
        if let Err(wait_s) = rl.admit(tenant, Instant::now()) {
            state.robust.rate_limited.fetch_add(1, Ordering::Relaxed);
            error_json_into("rate_limited", "per-tenant request rate exceeded", out);
            return RespMeta::retry(429, retry_after_s(wait_s * 1e3));
        }
    }

    // Mechanism: explicit name, or `auto` resolved through the loaded
    // selection profile per request (nearest-cell fallback), falling
    // back to the paper's overall winner — DAWA where supported,
    // IDENTITY otherwise — only when no profile covers this request.
    let requested_mech = str_field("mechanism").unwrap_or("auto");
    let mut selection: Option<String> = None;
    let mech_name = if requested_mech == "auto" {
        state
            .selector_stats
            .auto_requests
            .fetch_add(1, Ordering::Relaxed);
        let routed = state.current_profile().and_then(|profile| {
            let q = SelectorQuery {
                domain: state.domain,
                shape: Some(data.shape),
                scale: state.scale,
                epsilon: eps,
            };
            let rec = profile.lookup(&q)?;
            // First ranked mechanism the served domain supports: a 1-D
            // profile entry can name a mechanism without a 2-D plan.
            let chosen = rec.cell.ranked.iter().find(|r| {
                mechanism_by_name(&r.mechanism)
                    .map(|m| m.supports(&state.domain))
                    .unwrap_or(false)
            })?;
            match rec.confidence {
                Confidence::Exact => &state.selector_stats.exact,
                Confidence::Near => &state.selector_stats.near,
            }
            .fetch_add(1, Ordering::Relaxed);
            selection = Some(format!(
                "{{\"source\":\"profile\",\"confidence\":\"{}\",\"regret\":{},\"reason\":\"{}\"}}",
                rec.confidence.as_str(),
                jf(chosen.regret),
                rec.reason()
            ));
            Some(chosen.mechanism.clone())
        });
        routed.unwrap_or_else(|| {
            state
                .selector_stats
                .fallback_default
                .fetch_add(1, Ordering::Relaxed);
            let dawa = mechanism_by_name("DAWA").expect("registry always has DAWA");
            let name = if dawa.supports(&state.domain) {
                "DAWA"
            } else {
                "IDENTITY"
            };
            selection = Some(
                "{\"source\":\"default\",\"confidence\":\"none\",\"reason\":\"no profile cell covers this request\"}"
                    .to_string(),
            );
            name.to_string()
        })
    } else {
        requested_mech.to_string()
    };
    let Some(mech) = mechanism_by_name(&mech_name) else {
        return err_meta(out, 400, "unknown_mechanism", &mech_name);
    };
    if !mech.supports(&state.domain) {
        return err_meta(
            out,
            400,
            "bad_request",
            &format!("{mech_name} does not support domain {}", state.domain),
        );
    }
    {
        let mut counts = state.mech_counts.lock().expect("counts poisoned");
        *counts.entry(mech_name.clone()).or_insert(0) += 1;
    }

    let workload = match workload_for(state, str_field("workload")) {
        Ok(w) => w,
        Err(e) => return err_meta(out, 400, "bad_request", &e),
    };

    // Admission control: atomic check-and-reserve, durable before any
    // noise is drawn.
    match state.accountant.reserve(tenant, eps) {
        Ok(()) => {}
        Err(AdmissionError::UnknownTenant(t)) => return err_meta(out, 404, "unknown_tenant", &t),
        Err(AdmissionError::Exhausted {
            requested,
            remaining,
        }) => {
            let _ = write!(
                out,
                "{{\"error\":\"budget_exhausted\",\"requested\":{},\"remaining\":{}}}",
                jf(requested),
                jf(remaining)
            );
            return RespMeta::new(429);
        }
        Err(AdmissionError::Journal(e)) => return err_meta(out, 503, "journal_unavailable", &e),
    }

    // Everything below owes the tenant a refund on failure.
    let refund = || {
        if let Err(e) = state.accountant.refund(tenant, eps) {
            eprintln!("[serve] refund journal write failed for {tenant}: {e}");
        }
    };

    state.inflight.fetch_add(1, Ordering::Relaxed);
    let _inflight = Gauge(&state.inflight);

    let (plan, cache_hit) =
        match state
            .plan_cache
            .plan_for_traced(mech.as_ref(), &state.domain, &workload)
        {
            Ok(pair) => pair,
            Err(e) => {
                refund();
                return err_meta(out, 500, "plan_failed", &e.to_string());
            }
        };

    let (dims, da, db) = match state.domain {
        Domain::D1(n) => (1, n as u64, 0),
        Domain::D2(r, c) => (2, r as u64, c as u64),
    };
    let batch_key = Fingerprint::new()
        .str(&mech_name)
        .word(mech.config_fingerprint())
        .word(dims)
        .word(da)
        .word(db)
        .word(workload.fingerprint())
        .str(dataset_name)
        .f64(eps)
        .finish();
    let executed = state.batcher.run(batch_key, || {
        let seq = state.release_seq.fetch_add(1, Ordering::Relaxed);
        let mut rng = rng_for("serve", &[state.seed, batch_key, seq]);
        execute_eps_with(plan.as_ref(), &data.x, eps, ws, &mut rng).map_err(|e| e.to_string())
    });
    let (release, batched) = match executed {
        Ok(pair) => pair,
        Err(e) => {
            refund();
            return err_meta(out, 500, "mechanism_failed", &e);
        }
    };

    // Optional SLO block (operator opt-in): scaled per-query L1/L2 error
    // of this very release against the true workload answers.
    let slo = state.slo.then(|| {
        let y_true = y_true_for(state, dataset_name, &workload, &data.x);
        let y_hat = workload.evaluate_cells(&release.estimate);
        let scale = state.scale as f64;
        (
            scaled_per_query_error(&y_true, &y_hat, scale, Loss::L1),
            scaled_per_query_error(&y_true, &y_hat, scale, Loss::L2),
        )
    });

    let remaining = state
        .accountant
        .snapshot(tenant)
        .map(|s| s.remaining)
        .unwrap_or(0.0);
    let elapsed = t0.elapsed();
    state.observe_service_us(elapsed.as_micros() as u64);
    let latency_ms = elapsed.as_secs_f64() * 1e3;
    out.reserve(256 + 16 * release.estimate.len());
    let _ = write!(
        out,
        "{{\"tenant\":\"{tenant}\",\"dataset\":\"{dataset_name}\",\"mechanism\":\"{mech_name}\",\"requested_mechanism\":\"{requested_mech}\",\"eps\":{},\"remaining\":{},\"plan_cache_hit\":{cache_hit},\"batched\":{batched},\"latency_ms\":{}",
        jf(eps),
        jf(remaining),
        jf(latency_ms)
    );
    if let Some(sel) = &selection {
        let _ = write!(out, ",\"selection\":{sel}");
    }
    if let Some((l1, l2)) = slo {
        let _ = write!(
            out,
            ",\"slo\":{{\"scaled_l1\":{},\"scaled_l2\":{}}}",
            jf(l1),
            jf(l2)
        );
    }
    out.push_str(",\"release\":");
    release.to_json_into(out);
    out.push('}');
    RespMeta::new(200)
}

/// Decrement-on-drop guard for the inflight gauge (covers every early
/// return between reserve and response).
struct Gauge<'a>(&'a AtomicUsize);

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Resolve (and memoize) the workload for a request's `workload` field.
fn workload_for(state: &ServerState, spec: Option<&str>) -> Result<Arc<Workload>, String> {
    let spec = match spec {
        None => {
            if state.domain.dims() == 1 {
                WorkloadSpec::Prefix
            } else {
                WorkloadSpec::RandomRanges(2000)
            }
        }
        Some("prefix") => {
            if state.domain.dims() != 1 {
                return Err("prefix workload is 1-D only".into());
            }
            WorkloadSpec::Prefix
        }
        Some("identity") => WorkloadSpec::Identity,
        Some(s) if s.starts_with("random:") => WorkloadSpec::RandomRanges(
            s["random:".len()..]
                .parse()
                .map_err(|_| format!("bad workload {s:?}"))?,
        ),
        Some(s) => return Err(format!("unknown workload {s:?} (prefix|identity|random:N)")),
    };
    let key = match spec {
        WorkloadSpec::Prefix => (1_u8, 0_usize),
        WorkloadSpec::Identity => (2, 0),
        WorkloadSpec::RandomRanges(n) => (3, n),
    };
    let mut memo = state.workload_memo.lock().expect("workload memo poisoned");
    if let Some(w) = memo.get(&key) {
        return Ok(Arc::clone(w));
    }
    let w = Arc::new(spec.build(state.domain));
    memo.insert(key, Arc::clone(&w));
    Ok(w)
}

/// True workload answers for the SLO block, memoized per (dataset,
/// workload) — evaluating `W x` once per pair, not per request.
fn y_true_for(
    state: &ServerState,
    dataset: &str,
    workload: &Workload,
    x: &DataVector,
) -> Arc<Vec<f64>> {
    let key = (dataset.to_string(), workload.fingerprint());
    let mut memo = state.y_true_memo.lock().expect("y_true memo poisoned");
    if let Some(y) = memo.get(&key) {
        return Arc::clone(y);
    }
    let y = Arc::new(workload.evaluate(x));
    memo.insert(key, Arc::clone(&y));
    y
}

/// `GET /v1/status`.
fn status_json(state: &ServerState) -> String {
    let plan = state.plan_cache.stats();
    let batches = state.batcher.stats();
    let poll = state.poller.stats();
    let mut mechs: Vec<(String, u64)> = {
        let counts = state.mech_counts.lock().expect("counts poisoned");
        counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
    };
    mechs.sort();
    let mech_json = mechs
        .iter()
        .map(|(name, count)| format!("\"{name}\":{count}"))
        .collect::<Vec<_>>()
        .join(",");
    let r = &state.robust;
    let sel = &state.selector_stats;
    let (profile_loaded, profile_cells) = match state.current_profile() {
        Some(p) => (true, p.cells.len()),
        None => (false, 0),
    };
    format!(
        "{{\"uptime_s\":{},\"requests\":{},\"queue_depth\":{},\"tenants\":{},\"mechanisms\":{{{mech_json}}},\"plan_cache\":{{\"hits\":{},\"misses\":{},\"built\":{}}},\"batches\":{{\"led\":{},\"followed\":{}}},\"conns\":{},\"poller\":{{\"backend\":\"{}\",\"wakeups\":{},\"events\":{},\"spurious\":{},\"timer_fires\":{},\"registered\":{}}},\"robustness\":{{\"shed_conns\":{},\"shed_queue\":{},\"shed_wait\":{},\"timeouts\":{},\"rate_limited\":{},\"reaped_idle\":{},\"rejects\":{}}},\"selector\":{{\"profile_loaded\":{profile_loaded},\"cells\":{profile_cells},\"auto_requests\":{},\"exact\":{},\"near\":{},\"default\":{},\"reloads\":{}}}}}",
        jf(state.started.elapsed().as_secs_f64()),
        state.requests.load(Ordering::Relaxed),
        state.parked_len(),
        state.accountant.len(),
        plan.hits,
        plan.misses,
        state.plan_cache.len(),
        batches.led,
        batches.followed,
        state.conn_count.load(Ordering::Relaxed),
        state.poller.backend_name(),
        poll.wakeups,
        poll.events,
        poll.spurious,
        poll.timer_fires,
        poll.registered,
        r.shed_conns.load(Ordering::Relaxed),
        r.shed_queue.load(Ordering::Relaxed),
        r.shed_wait.load(Ordering::Relaxed),
        r.timeouts.load(Ordering::Relaxed),
        r.rate_limited.load(Ordering::Relaxed),
        r.reaped_idle.load(Ordering::Relaxed),
        r.rejects.load(Ordering::Relaxed),
        sel.auto_requests.load(Ordering::Relaxed),
        sel.exact.load(Ordering::Relaxed),
        sel.near.load(Ordering::Relaxed),
        sel.fallback_default.load(Ordering::Relaxed),
        sel.reloads.load(Ordering::Relaxed),
    )
}

/// `{"error": code, "detail": detail}` with minimal escaping (details are
/// our own messages; quotes/backslashes are escaped defensively).
fn error_json(code: &str, detail: &str) -> String {
    let mut out = String::with_capacity(32 + detail.len());
    error_json_into(code, detail, &mut out);
    out
}

/// Append the [`error_json`] body to `out` (the pooled-buffer path).
fn error_json_into(code: &str, detail: &str, out: &mut String) {
    let _ = write!(out, "{{\"error\":\"{code}\",\"detail\":\"");
    for c in detail.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push_str("\"}");
}

/// JSON float: shortest round-trip for finite values, `null` otherwise.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
