//! The release server: datasets loaded at startup, a rotation-scheduled
//! worker pool over the hand-rolled HTTP layer, and six endpoints.
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `POST /v1/release` | shed check → rate limit → reserve ε → (batched) `Plan::execute` → JSON release |
//! | `GET /v1/tenants/:id/budget` | the tenant's live balance |
//! | `GET /v1/status` | uptime, per-mechanism counts, plan-cache/batcher/robustness counters |
//! | `GET /v1/healthz` | liveness: 200 whenever the process can answer |
//! | `GET /v1/readyz` | readiness: 503 while draining, at the connection cap, or overloaded |
//! | `POST /v1/admin/reload` | re-read `--tenant-config` and apply grants without restart |
//!
//! ## Scheduling
//!
//! Workers do not own connections; connections **rotate**. Every accepted
//! socket is nonblocking and lives in a shared queue; a worker pops one,
//! drains whatever bytes have arrived, serves any complete requests, and
//! either requeues it or closes it. A slowloris client dribbling one byte
//! a second therefore costs one queue slot and a few syscalls per
//! rotation — never a pinned worker — and its 408 fires from whichever
//! worker touches it after the deadline. Deadlines and caps live in
//! [`Limits`]; violations answer with clean 408/413/429/431/503 per the
//! error contract in the README.
//!
//! Release flow: load shedding and rate limiting run **before**
//! admission ([`TenantAccountant::reserve`] — atomic check-and-reserve,
//! journaled), so a shed request costs zero ε. A mechanism failure
//! refunds, and the response's remaining balance is read back after
//! settlement. Plans come from one [`PlanCache`] shared by all workers;
//! executions of the same (mechanism, domain, workload, dataset, ε)
//! arriving within the batch window share one noise draw through the
//! [`Batcher`].

use super::accountant::{parse_tenant_grants, AdmissionError, ReloadOutcome, TenantAccountant};
use super::batcher::Batcher;
use super::http::{self, JsonValue, Request};
use super::limits::{Limits, RateLimiter};
use super::shutdown;
use crate::config::WorkloadSpec;
use crate::runner::PlanCache;
use dpbench_algorithms::registry::mechanism_by_name;
use dpbench_core::mechanism::execute_eps_with;
use dpbench_core::rng::{hash_str, rng_for};
use dpbench_core::{
    scaled_per_query_error, DataVector, Domain, Fingerprint, Loss, Release, Workload, Workspace,
};
use dpbench_datasets::{catalog, DataGenerator};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration (the CLI builds this from `dpbench serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Catalog names of the datasets to load at startup.
    pub datasets: Vec<String>,
    /// Scale every dataset is generated at.
    pub scale: u64,
    /// Domain every dataset is generated over (and every plan runs on).
    pub domain: Domain,
    /// `(tenant, lifetime ε)` grants.
    pub tenants: Vec<(String, f64)>,
    /// Tenant-config file the grants came from; kept so SIGHUP or
    /// `POST /v1/admin/reload` can re-read it without restart.
    pub tenant_config: Option<PathBuf>,
    /// Spend journal path; `None` serves from memory only.
    pub journal: Option<PathBuf>,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Same-strategy request batching window (zero disables).
    pub batch_window: Duration,
    /// Connection caps, deadlines, and rate limits.
    pub limits: Limits,
    /// Seed stirred into data generation and release noise.
    pub seed: u64,
    /// Operator opt-in: include the SLO error block (scaled L1/L2 vs the
    /// true workload answers) in release responses.
    pub slo: bool,
    /// Log one line per request to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".into(),
            datasets: vec!["MEDCOST".into()],
            scale: 100_000,
            domain: Domain::D1(1024),
            tenants: Vec::new(),
            tenant_config: None,
            journal: None,
            threads: 4,
            batch_window: Duration::ZERO,
            limits: Limits::default(),
            seed: 0,
            slo: false,
            verbose: false,
        }
    }
}

/// One dataset materialized at startup.
struct LoadedDataset {
    x: DataVector,
}

/// Memo of true workload answers, keyed by (dataset, workload
/// fingerprint) — the SLO block evaluates `W x` once per pair.
type YTrueMemo = Mutex<HashMap<(String, u64), Arc<Vec<f64>>>>;

/// Robustness counters — every shed, timeout, and reject is counted so
/// the chaos tests (and operators) can see exactly where hostile traffic
/// went. All monotonic; exposed in `/v1/status` under `"robustness"`.
#[derive(Default)]
pub struct Robustness {
    /// Connects refused at the concurrent-connection cap.
    pub shed_conns: AtomicU64,
    /// Connects refused because the rotation queue was full.
    pub shed_queue: AtomicU64,
    /// Releases shed because the estimated queue wait was too long.
    pub shed_wait: AtomicU64,
    /// 408s: connections that dribbled a partial request past the
    /// header deadline (slowloris).
    pub timeouts: AtomicU64,
    /// 429s from the token bucket (NOT budget exhaustion).
    pub rate_limited: AtomicU64,
    /// Idle keep-alive connections reaped silently.
    pub reaped_idle: AtomicU64,
    /// Parser rejects (4xx from hostile bytes).
    pub rejects: AtomicU64,
}

/// One live connection parked in (or rotating through) the queue.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Last time bytes arrived or a request was served (idle reaping).
    last_activity: Instant,
    /// Set while an incomplete request sits in `buf` (408 deadline).
    partial_since: Option<Instant>,
}

/// The connection rotation queue: a condvar-signalled deque shared by
/// the accept loop (pushes fresh sockets) and every worker (pops, serves
/// a slice, requeues).
struct ConnQueue {
    q: Mutex<VecDeque<Conn>>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, conn: Conn) {
        self.q.lock().expect("conn queue poisoned").push_back(conn);
        self.ready.notify_one();
    }

    fn pop(&self, timeout: Duration) -> Option<Conn> {
        let mut q = self.q.lock().expect("conn queue poisoned");
        if let Some(c) = q.pop_front() {
            return Some(c);
        }
        let (mut q, _) = self
            .ready
            .wait_timeout(q, timeout)
            .expect("conn queue poisoned");
        q.pop_front()
    }

    fn len(&self) -> usize {
        self.q.lock().expect("conn queue poisoned").len()
    }
}

/// Shared state of a running server — exposed through
/// [`ServerHandle::state`] so tests can assert on counters directly.
pub struct ServerState {
    /// Per-tenant budgets (public: the CLI prints balances at shutdown).
    pub accountant: TenantAccountant,
    /// The shared cross-request plan cache.
    pub plan_cache: PlanCache,
    /// Robustness counters (sheds, timeouts, rejects).
    pub robust: Robustness,
    /// The caps and deadlines this server enforces.
    pub limits: Limits,
    datasets: HashMap<String, LoadedDataset>,
    batcher: Batcher<Release>,
    rate_limiter: Option<RateLimiter>,
    tenant_config: Option<PathBuf>,
    queue: Arc<ConnQueue>,
    domain: Domain,
    scale: u64,
    threads: usize,
    seed: u64,
    slo: bool,
    verbose: bool,
    started: Instant,
    requests: AtomicU64,
    release_seq: AtomicU64,
    /// Live connections (accepted, not yet closed).
    conn_count: AtomicUsize,
    /// Releases currently executing (the shed estimator's input).
    inflight: AtomicUsize,
    /// EWMA of successful release service time, microseconds.
    ewma_us: AtomicU64,
    /// Bumped whenever any connection makes progress — the workers'
    /// anti-spin damper watches it.
    progress_epoch: AtomicU64,
    stopping: AtomicBool,
    mech_counts: Mutex<HashMap<String, u64>>,
    workload_memo: Mutex<HashMap<(u8, usize), Arc<Workload>>>,
    y_true_memo: YTrueMemo,
}

impl ServerState {
    /// Estimated queue wait for a newly-arriving release, in ms: releases
    /// beyond the worker count, times the smoothed service time.
    fn est_wait_ms(&self) -> f64 {
        let inflight = self.inflight.load(Ordering::Relaxed);
        let waiting = (inflight + 1).saturating_sub(self.threads.max(1));
        waiting as f64 * self.ewma_us.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Fold one successful release's service time into the EWMA.
    fn observe_service_us(&self, us: u64) {
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - old / 8 + us / 8 };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    /// Re-read the tenant-config file and apply the grants (see
    /// [`TenantAccountant::reload`]).
    pub fn reload_tenants(&self) -> io::Result<ReloadOutcome> {
        let Some(path) = &self.tenant_config else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no --tenant-config file to reload from",
            ));
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let grants = parse_tenant_grants(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.accountant.reload(&grants)
    }
}

/// Handle to a started server: address, state, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live server state (counters, accountant, plan cache).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// True once shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Hot-reload tenant grants from the configured tenant-config file
    /// (the SIGHUP handler path).
    pub fn reload(&self) -> io::Result<ReloadOutcome> {
        self.state.reload_tenants()
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, join
    /// every thread, then flush + fsync the spend journal.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        self.state.stopping.store(true, Ordering::SeqCst);
        for join in self.joins {
            let _ = join.join();
        }
        self.state.accountant.sync()
    }
}

/// Start the server; returns once the listener is bound and the worker
/// pool is running. Shut down via [`ServerHandle::shutdown`] (or a
/// process signal — workers also poll [`shutdown::requested`]).
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    if config.tenants.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs at least one tenant (--tenants name=eps,... or --tenant-config)",
        ));
    }
    if config.datasets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs at least one dataset",
        ));
    }
    let mut datasets = HashMap::new();
    for name in &config.datasets {
        let ds = catalog::by_name(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown dataset {name} (see `dpbench list-datasets`)"),
            )
        })?;
        let mut rng = rng_for(
            "serve-data",
            &[
                hash_str(name),
                config.scale,
                config.domain.n_cells() as u64,
                config.seed,
            ],
        );
        let x = DataGenerator::new().generate(&ds, config.domain, config.scale, &mut rng);
        datasets.insert(name.clone(), LoadedDataset { x });
    }
    let accountant = TenantAccountant::new(&config.tenants, config.journal.as_deref())?;
    let queue = Arc::new(ConnQueue::new());
    let state = Arc::new(ServerState {
        accountant,
        plan_cache: PlanCache::new(),
        robust: Robustness::default(),
        rate_limiter: config.limits.rate_limit.map(RateLimiter::new),
        limits: config.limits.clone(),
        tenant_config: config.tenant_config.clone(),
        queue: Arc::clone(&queue),
        datasets,
        batcher: Batcher::new(config.batch_window),
        domain: config.domain,
        scale: config.scale,
        threads: config.threads.max(1),
        seed: config.seed,
        slo: config.slo,
        verbose: config.verbose,
        started: Instant::now(),
        requests: AtomicU64::new(0),
        release_seq: AtomicU64::new(0),
        conn_count: AtomicUsize::new(0),
        inflight: AtomicUsize::new(0),
        ewma_us: AtomicU64::new(0),
        progress_epoch: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
        mech_counts: Mutex::new(HashMap::new()),
        workload_memo: Mutex::new(HashMap::new()),
        y_true_memo: Mutex::new(HashMap::new()),
    });

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut joins = Vec::with_capacity(config.threads + 1);

    // Accept loop: non-blocking accept with exponential idle backoff
    // (1 → 16 ms) — an idle server sleeps instead of burning a core,
    // while a busy one accepts with ~1 ms latency. Caps are enforced
    // here: a connect beyond --max-conns / --max-queue gets a one-shot
    // 503 with Retry-After and is never queued.
    {
        let stop = Arc::clone(&stop);
        let state = Arc::clone(&state);
        let queue = Arc::clone(&queue);
        joins.push(std::thread::spawn(move || {
            let mut idle_backoff = Duration::from_millis(1);
            loop {
                if stop.load(Ordering::SeqCst) || shutdown::requested() {
                    break; // workers drain the queue, then exit
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        idle_backoff = Duration::from_millis(1);
                        admit_conn(stream, &state, &queue);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(idle_backoff);
                        idle_backoff = (idle_backoff * 2).min(Duration::from_millis(16));
                    }
                    Err(_) => std::thread::sleep(idle_backoff),
                }
            }
        }));
    }

    for _ in 0..config.threads.max(1) {
        let stop = Arc::clone(&stop);
        let state = Arc::clone(&state);
        let queue = Arc::clone(&queue);
        joins.push(std::thread::spawn(move || {
            // Per-worker scratch, reused across every request this worker
            // serves (same discipline as the grid runner's workers).
            let mut ws = Workspace::new();
            // Anti-spin damper: when a full rotation over the parked
            // connections makes no progress anywhere, sleep briefly
            // instead of re-polling the same idle sockets in a hot loop.
            let mut fruitless = 0_usize;
            let mut seen_epoch = state.progress_epoch.load(Ordering::Relaxed);
            loop {
                let stopping = stop.load(Ordering::SeqCst) || shutdown::requested();
                if stopping {
                    state.stopping.store(true, Ordering::SeqCst);
                }
                match queue.pop(Duration::from_millis(50)) {
                    Some(mut conn) => match service_conn(&mut conn, &state, stopping, &mut ws) {
                        Fate::Keep { progressed } => {
                            if progressed {
                                state.progress_epoch.fetch_add(1, Ordering::Relaxed);
                                fruitless = 0;
                            } else {
                                fruitless += 1;
                                if fruitless >= queue.len().max(4) {
                                    let epoch = state.progress_epoch.load(Ordering::Relaxed);
                                    if epoch == seen_epoch {
                                        std::thread::sleep(Duration::from_millis(2));
                                    }
                                    seen_epoch = epoch;
                                    fruitless = 0;
                                }
                            }
                            queue.push(conn);
                        }
                        Fate::Close => {
                            state.conn_count.fetch_sub(1, Ordering::Relaxed);
                        }
                    },
                    None => {
                        if stopping {
                            break;
                        }
                    }
                }
            }
        }));
    }

    Ok(ServerHandle {
        addr,
        stop,
        joins,
        state,
    })
}

/// Admit (or shed) one freshly-accepted connection.
fn admit_conn(stream: TcpStream, state: &ServerState, queue: &ConnQueue) {
    let limits = &state.limits;
    let over_conns = state.conn_count.load(Ordering::Relaxed) >= limits.max_conns;
    let over_queue = queue.len() >= limits.max_queue;
    if over_conns || over_queue {
        if over_conns {
            state.robust.shed_conns.fetch_add(1, Ordering::Relaxed);
        } else {
            state.robust.shed_queue.fetch_add(1, Ordering::Relaxed);
        }
        // Best-effort one-shot 503: a short write deadline so a client
        // that refuses to read can't stall the accept loop.
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let mut s = &stream;
        let _ = http::write_response_ex(
            &mut s,
            503,
            &error_json(
                "overloaded",
                if over_conns {
                    "connection cap reached"
                } else {
                    "admission queue full"
                },
            ),
            true,
            Some(1),
        );
        return; // dropped, never queued
    }
    state.conn_count.fetch_add(1, Ordering::Relaxed);
    state.progress_epoch.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(true);
    queue.push(Conn {
        stream,
        buf: Vec::new(),
        last_activity: Instant::now(),
        partial_since: None,
    });
}

/// What a worker should do with a connection after one service slice.
enum Fate {
    /// Requeue for the next rotation.
    Keep {
        /// Whether this slice read bytes or served a request (the
        /// anti-spin damper input).
        progressed: bool,
    },
    /// Drop the connection (count is decremented by the caller).
    Close,
}

/// One service slice: drain arrived bytes, serve every complete request,
/// enforce deadlines. Never blocks on reads — writes use a bounded
/// deadline — so a slow peer can only waste its own slice.
fn service_conn(conn: &mut Conn, state: &ServerState, stopping: bool, ws: &mut Workspace) -> Fate {
    let limits = &state.limits;
    // 1. Drain whatever bytes have arrived (nonblocking).
    let mut eof = false;
    let mut progressed = false;
    let mut chunk = [0_u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Fate::Close,
        }
    }
    if progressed {
        conn.last_activity = Instant::now();
    }

    // 2. Serve every complete request already buffered (including, on a
    // half-closed connection, requests that arrived before the FIN).
    loop {
        match http::try_parse(&mut conn.buf) {
            Ok(Some(req)) => {
                progressed = true;
                conn.partial_since = None;
                conn.last_activity = Instant::now();
                let resp = route(state, &req, ws, stopping);
                let close = req.wants_close() || stopping;
                if state.verbose {
                    eprintln!("[serve] {} {} -> {}", req.method, req.path, resp.status);
                }
                if send_response(
                    conn,
                    state,
                    resp.status,
                    &resp.body,
                    close,
                    resp.retry_after,
                )
                .is_err()
                    || close
                {
                    return Fate::Close;
                }
            }
            Ok(None) => break,
            Err(rej) => {
                state.robust.rejects.fetch_add(1, Ordering::Relaxed);
                let body = error_json(rej.code, &rej.detail);
                let _ = send_response(conn, state, rej.status, &body, true, None);
                return Fate::Close;
            }
        }
    }

    // 3. Deadlines. A partial request is on the 408 clock (slow headers
    // and slow bodies alike); an empty buffer is on the idle clock.
    if eof || stopping {
        return Fate::Close;
    }
    if conn.buf.is_empty() {
        conn.partial_since = None;
        if conn.last_activity.elapsed() > limits.idle_timeout {
            state.robust.reaped_idle.fetch_add(1, Ordering::Relaxed);
            return Fate::Close;
        }
    } else {
        let since = *conn.partial_since.get_or_insert_with(Instant::now);
        if since.elapsed() > limits.header_timeout {
            state.robust.timeouts.fetch_add(1, Ordering::Relaxed);
            let body = error_json("request_timeout", "request not completed in time");
            let _ = send_response(conn, state, 408, &body, true, None);
            return Fate::Close;
        }
    }
    Fate::Keep { progressed }
}

/// Write one response under the write deadline: the socket flips to
/// blocking-with-timeout for the write, then back to nonblocking for the
/// next rotation. A peer that stops reading turns into a clean write
/// error (and a closed connection), not a pinned worker.
fn send_response(
    conn: &mut Conn,
    state: &ServerState,
    status: u16,
    body: &str,
    close: bool,
    retry_after: Option<u64>,
) -> io::Result<()> {
    conn.stream.set_nonblocking(false)?;
    conn.stream
        .set_write_timeout(Some(state.limits.write_timeout))?;
    let result = {
        let mut s = &conn.stream;
        http::write_response_ex(&mut s, status, body, close, retry_after)
    };
    if !close {
        conn.stream.set_nonblocking(true)?;
    }
    result
}

/// One routed response.
struct Resp {
    status: u16,
    body: String,
    retry_after: Option<u64>,
}

impl Resp {
    fn new(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            retry_after: None,
        }
    }

    fn retry(status: u16, body: String, after_s: u64) -> Self {
        Self {
            status,
            body,
            retry_after: Some(after_s),
        }
    }
}

/// Dispatch one request to its endpoint.
fn route(state: &ServerState, req: &Request, ws: &mut Workspace, stopping: bool) -> Resp {
    state.requests.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/release") => handle_release(state, &req.body, ws),
        ("POST", "/v1/admin/reload") => handle_reload(state),
        ("GET", "/v1/status") => Resp::new(200, status_json(state)),
        ("GET", "/v1/healthz") => Resp::new(200, "{\"ok\":true}".to_string()),
        ("GET", "/v1/readyz") => handle_readyz(state, stopping),
        ("GET", path) => {
            if let Some(tenant) = path
                .strip_prefix("/v1/tenants/")
                .and_then(|rest| rest.strip_suffix("/budget"))
            {
                match state.accountant.snapshot(tenant) {
                    Some(snap) => Resp::new(
                        200,
                        format!(
                            "{{\"tenant\":\"{tenant}\",\"total\":{},\"spent\":{},\"remaining\":{},\"releases\":{}}}",
                            jf(snap.total),
                            jf(snap.spent),
                            jf(snap.remaining),
                            snap.releases
                        ),
                    ),
                    None => Resp::new(404, error_json("unknown_tenant", tenant)),
                }
            } else {
                Resp::new(404, error_json("not_found", path))
            }
        }
        ("POST", path) => Resp::new(404, error_json("not_found", path)),
        (method, _) => Resp::new(405, error_json("method_not_allowed", method)),
    }
}

/// `GET /v1/readyz`: degrade *before* collapse — a load balancer pulls
/// this node while it still answers health checks.
fn handle_readyz(state: &ServerState, stopping: bool) -> Resp {
    if stopping || state.stopping.load(Ordering::SeqCst) {
        return Resp::new(503, error_json("draining", "shutting down"));
    }
    let conns = state.conn_count.load(Ordering::Relaxed);
    if conns >= state.limits.max_conns {
        return Resp::retry(
            503,
            error_json("at_connection_cap", "connection cap reached"),
            1,
        );
    }
    let est_wait_ms = state.est_wait_ms();
    if est_wait_ms > state.limits.max_wait.as_secs_f64() * 1e3 {
        return Resp::retry(
            503,
            error_json("overloaded", "estimated wait exceeds --max-wait-ms"),
            retry_after_s(est_wait_ms),
        );
    }
    Resp::new(
        200,
        format!(
            "{{\"ready\":true,\"conns\":{conns},\"est_wait_ms\":{}}}",
            jf(est_wait_ms)
        ),
    )
}

/// `POST /v1/admin/reload`: re-read the tenant-config file and apply it.
fn handle_reload(state: &ServerState) -> Resp {
    if state.tenant_config.is_none() {
        return Resp::new(
            409,
            error_json(
                "no_tenant_config",
                "server was started without --tenant-config; nothing to reload",
            ),
        );
    }
    match state.reload_tenants() {
        Ok(outcome) => Resp::new(
            200,
            format!(
                "{{\"reloaded\":true,\"added\":{},\"extended\":{},\"shrunk\":{},\"unchanged\":{},\"tenants\":{}}}",
                outcome.added,
                outcome.extended,
                outcome.shrunk,
                outcome.unchanged,
                state.accountant.len()
            ),
        ),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            Resp::new(400, error_json("bad_tenant_config", &e.to_string()))
        }
        Err(e) => Resp::new(500, error_json("reload_failed", &e.to_string())),
    }
}

/// Ceiling of `ms` in whole seconds, floored at 1 — `Retry-After` is an
/// integer header and "retry immediately" defeats the point of shedding.
fn retry_after_s(ms: f64) -> u64 {
    (ms / 1e3).ceil().max(1.0) as u64
}

/// `POST /v1/release`.
fn handle_release(state: &ServerState, body: &[u8], ws: &mut Workspace) -> Resp {
    let t0 = Instant::now();
    let parsed = std::str::from_utf8(body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(http::parse_object);
    let fields = match parsed {
        Ok(f) => f,
        Err(e) => return Resp::new(400, error_json("bad_request", &e)),
    };
    let str_field = |key: &str| fields.get(key).and_then(JsonValue::as_str);

    let Some(tenant) = str_field("tenant") else {
        return Resp::new(400, error_json("bad_request", "missing \"tenant\""));
    };
    let Some(dataset_name) = str_field("dataset") else {
        return Resp::new(400, error_json("bad_request", "missing \"dataset\""));
    };
    let Some(eps) = fields.get("eps").and_then(JsonValue::as_f64) else {
        return Resp::new(400, error_json("bad_request", "missing numeric \"eps\""));
    };
    if !(eps.is_finite() && eps > 0.0) {
        return Resp::new(
            400,
            error_json("bad_request", "eps must be positive and finite"),
        );
    }
    if let Some(domain) = str_field("domain") {
        match crate::results::parse_domain(domain) {
            Some(d) if d == state.domain => {}
            _ => {
                return Resp::new(
                    400,
                    error_json(
                        "bad_request",
                        &format!(
                            "domain {domain} does not match the served domain {}",
                            state.domain
                        ),
                    ),
                )
            }
        }
    }
    let Some(data) = state.datasets.get(dataset_name) else {
        return Resp::new(404, error_json("unknown_dataset", dataset_name));
    };

    // Overload control — runs BEFORE any ε is charged, so a shed or
    // rate-limited request costs the tenant nothing.
    let est_wait_ms = state.est_wait_ms();
    if est_wait_ms > state.limits.max_wait.as_secs_f64() * 1e3 {
        state.robust.shed_wait.fetch_add(1, Ordering::Relaxed);
        return Resp::retry(
            503,
            format!(
                "{{\"error\":\"overloaded\",\"detail\":\"estimated wait {}ms exceeds limit\",\"est_wait_ms\":{}}}",
                est_wait_ms.round(),
                jf(est_wait_ms)
            ),
            retry_after_s(est_wait_ms),
        );
    }
    if let Some(rl) = &state.rate_limiter {
        if let Err(wait_s) = rl.admit(tenant, Instant::now()) {
            state.robust.rate_limited.fetch_add(1, Ordering::Relaxed);
            return Resp::retry(
                429,
                error_json("rate_limited", "per-tenant request rate exceeded"),
                retry_after_s(wait_s * 1e3),
            );
        }
    }

    // Mechanism: explicit name, or `auto` → DAWA where supported (the
    // paper's overall winner), IDENTITY otherwise.
    let requested_mech = str_field("mechanism").unwrap_or("auto");
    let mech_name = if requested_mech == "auto" {
        let dawa = mechanism_by_name("DAWA").expect("registry always has DAWA");
        if dawa.supports(&state.domain) {
            "DAWA".to_string()
        } else {
            "IDENTITY".to_string()
        }
    } else {
        requested_mech.to_string()
    };
    let Some(mech) = mechanism_by_name(&mech_name) else {
        return Resp::new(400, error_json("unknown_mechanism", &mech_name));
    };
    if !mech.supports(&state.domain) {
        return Resp::new(
            400,
            error_json(
                "bad_request",
                &format!("{mech_name} does not support domain {}", state.domain),
            ),
        );
    }
    {
        let mut counts = state.mech_counts.lock().expect("counts poisoned");
        *counts.entry(mech_name.clone()).or_insert(0) += 1;
    }

    let workload = match workload_for(state, str_field("workload")) {
        Ok(w) => w,
        Err(e) => return Resp::new(400, error_json("bad_request", &e)),
    };

    // Admission control: atomic check-and-reserve, durable before any
    // noise is drawn.
    match state.accountant.reserve(tenant, eps) {
        Ok(()) => {}
        Err(AdmissionError::UnknownTenant(t)) => {
            return Resp::new(404, error_json("unknown_tenant", &t))
        }
        Err(AdmissionError::Exhausted {
            requested,
            remaining,
        }) => {
            return Resp::new(
                429,
                format!(
                    "{{\"error\":\"budget_exhausted\",\"requested\":{},\"remaining\":{}}}",
                    jf(requested),
                    jf(remaining)
                ),
            )
        }
        Err(AdmissionError::Journal(e)) => {
            return Resp::new(503, error_json("journal_unavailable", &e))
        }
    }

    // Everything below owes the tenant a refund on failure.
    let refund_and = |status: u16, body: String| -> Resp {
        if let Err(e) = state.accountant.refund(tenant, eps) {
            eprintln!("[serve] refund journal write failed for {tenant}: {e}");
        }
        Resp::new(status, body)
    };

    state.inflight.fetch_add(1, Ordering::Relaxed);
    let _inflight = Gauge(&state.inflight);

    let (plan, cache_hit) =
        match state
            .plan_cache
            .plan_for_traced(mech.as_ref(), &state.domain, &workload)
        {
            Ok(pair) => pair,
            Err(e) => return refund_and(500, error_json("plan_failed", &e.to_string())),
        };

    let (dims, da, db) = match state.domain {
        Domain::D1(n) => (1, n as u64, 0),
        Domain::D2(r, c) => (2, r as u64, c as u64),
    };
    let batch_key = Fingerprint::new()
        .str(&mech_name)
        .word(mech.config_fingerprint())
        .word(dims)
        .word(da)
        .word(db)
        .word(workload.fingerprint())
        .str(dataset_name)
        .f64(eps)
        .finish();
    let executed = state.batcher.run(batch_key, || {
        let seq = state.release_seq.fetch_add(1, Ordering::Relaxed);
        let mut rng = rng_for("serve", &[state.seed, batch_key, seq]);
        execute_eps_with(plan.as_ref(), &data.x, eps, ws, &mut rng).map_err(|e| e.to_string())
    });
    let (release, batched) = match executed {
        Ok(pair) => pair,
        Err(e) => return refund_and(500, error_json("mechanism_failed", &e)),
    };

    // Optional SLO block (operator opt-in): scaled per-query L1/L2 error
    // of this very release against the true workload answers.
    let slo = state.slo.then(|| {
        let y_true = y_true_for(state, dataset_name, &workload, &data.x);
        let y_hat = workload.evaluate_cells(&release.estimate);
        let scale = state.scale as f64;
        (
            scaled_per_query_error(&y_true, &y_hat, scale, Loss::L1),
            scaled_per_query_error(&y_true, &y_hat, scale, Loss::L2),
        )
    });

    let remaining = state
        .accountant
        .snapshot(tenant)
        .map(|s| s.remaining)
        .unwrap_or(0.0);
    let elapsed = t0.elapsed();
    state.observe_service_us(elapsed.as_micros() as u64);
    let latency_ms = elapsed.as_secs_f64() * 1e3;
    let mut out = String::with_capacity(256 + 16 * release.estimate.len());
    out.push_str(&format!(
        "{{\"tenant\":\"{tenant}\",\"dataset\":\"{dataset_name}\",\"mechanism\":\"{mech_name}\",\"eps\":{},\"remaining\":{},\"plan_cache_hit\":{cache_hit},\"batched\":{batched},\"latency_ms\":{}",
        jf(eps),
        jf(remaining),
        jf(latency_ms)
    ));
    if let Some((l1, l2)) = slo {
        out.push_str(&format!(
            ",\"slo\":{{\"scaled_l1\":{},\"scaled_l2\":{}}}",
            jf(l1),
            jf(l2)
        ));
    }
    out.push_str(",\"release\":");
    out.push_str(&release.to_json());
    out.push('}');
    Resp::new(200, out)
}

/// Decrement-on-drop guard for the inflight gauge (covers every early
/// return between reserve and response).
struct Gauge<'a>(&'a AtomicUsize);

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Resolve (and memoize) the workload for a request's `workload` field.
fn workload_for(state: &ServerState, spec: Option<&str>) -> Result<Arc<Workload>, String> {
    let spec = match spec {
        None => {
            if state.domain.dims() == 1 {
                WorkloadSpec::Prefix
            } else {
                WorkloadSpec::RandomRanges(2000)
            }
        }
        Some("prefix") => {
            if state.domain.dims() != 1 {
                return Err("prefix workload is 1-D only".into());
            }
            WorkloadSpec::Prefix
        }
        Some("identity") => WorkloadSpec::Identity,
        Some(s) if s.starts_with("random:") => WorkloadSpec::RandomRanges(
            s["random:".len()..]
                .parse()
                .map_err(|_| format!("bad workload {s:?}"))?,
        ),
        Some(s) => return Err(format!("unknown workload {s:?} (prefix|identity|random:N)")),
    };
    let key = match spec {
        WorkloadSpec::Prefix => (1_u8, 0_usize),
        WorkloadSpec::Identity => (2, 0),
        WorkloadSpec::RandomRanges(n) => (3, n),
    };
    let mut memo = state.workload_memo.lock().expect("workload memo poisoned");
    if let Some(w) = memo.get(&key) {
        return Ok(Arc::clone(w));
    }
    let w = Arc::new(spec.build(state.domain));
    memo.insert(key, Arc::clone(&w));
    Ok(w)
}

/// True workload answers for the SLO block, memoized per (dataset,
/// workload) — evaluating `W x` once per pair, not per request.
fn y_true_for(
    state: &ServerState,
    dataset: &str,
    workload: &Workload,
    x: &DataVector,
) -> Arc<Vec<f64>> {
    let key = (dataset.to_string(), workload.fingerprint());
    let mut memo = state.y_true_memo.lock().expect("y_true memo poisoned");
    if let Some(y) = memo.get(&key) {
        return Arc::clone(y);
    }
    let y = Arc::new(workload.evaluate(x));
    memo.insert(key, Arc::clone(&y));
    y
}

/// `GET /v1/status`.
fn status_json(state: &ServerState) -> String {
    let plan = state.plan_cache.stats();
    let batches = state.batcher.stats();
    let mut mechs: Vec<(String, u64)> = {
        let counts = state.mech_counts.lock().expect("counts poisoned");
        counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
    };
    mechs.sort();
    let mech_json = mechs
        .iter()
        .map(|(name, count)| format!("\"{name}\":{count}"))
        .collect::<Vec<_>>()
        .join(",");
    let r = &state.robust;
    format!(
        "{{\"uptime_s\":{},\"requests\":{},\"queue_depth\":{},\"tenants\":{},\"mechanisms\":{{{mech_json}}},\"plan_cache\":{{\"hits\":{},\"misses\":{},\"built\":{}}},\"batches\":{{\"led\":{},\"followed\":{}}},\"conns\":{},\"robustness\":{{\"shed_conns\":{},\"shed_queue\":{},\"shed_wait\":{},\"timeouts\":{},\"rate_limited\":{},\"reaped_idle\":{},\"rejects\":{}}}}}",
        jf(state.started.elapsed().as_secs_f64()),
        state.requests.load(Ordering::Relaxed),
        state.queue.len(),
        state.accountant.len(),
        plan.hits,
        plan.misses,
        state.plan_cache.len(),
        batches.led,
        batches.followed,
        state.conn_count.load(Ordering::Relaxed),
        r.shed_conns.load(Ordering::Relaxed),
        r.shed_queue.load(Ordering::Relaxed),
        r.shed_wait.load(Ordering::Relaxed),
        r.timeouts.load(Ordering::Relaxed),
        r.rate_limited.load(Ordering::Relaxed),
        r.reaped_idle.load(Ordering::Relaxed),
        r.rejects.load(Ordering::Relaxed),
    )
}

/// `{"error": code, "detail": detail}` with minimal escaping (details are
/// our own messages; quotes/backslashes are escaped defensively).
fn error_json(code: &str, detail: &str) -> String {
    let mut escaped = String::with_capacity(detail.len());
    for c in detail.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    format!("{{\"error\":\"{code}\",\"detail\":\"{escaped}\"}}")
}

/// JSON float: shortest round-trip for finite values, `null` otherwise.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
