//! The fleet driver: launch, watch, copy back, retry, merge.
//!
//! [`run_fleet_with`] conducts `k` shards over any [`ShardTransport`]:
//!
//! 1. expand the manifest **once** and deal it into `k` round-robin
//!    shards ([`RunManifest::shard`]);
//! 2. each round, **fetch** every unfinished shard's ledger back from
//!    the transport (a no-op for local transports) and validate it with
//!    the strict readers — the copy-back protocol: a torn, empty, or
//!    missing artifact just means the shard is re-dispatched (or, when
//!    the remote ledger was already complete, relaunched into a cheap
//!    resume no-op and re-fetched), while a ledger from a *different
//!    run* is a hard error;
//! 3. launch every shard that is not yet complete and **poll** the
//!    handles: exit status is advisory (the ledger is the truth), a
//!    shard that stops making ledger progress for longer than
//!    [`FleetOptions::stall_timeout`] is killed and retried, and
//!    [`FleetOptions::progress`] tails the (fetched) ledgers into live
//!    per-shard `done/total` lines;
//! 4. once every shard ledger is complete, k-way stream-merge them into
//!    the canonical output ([`merge_jsonl`]), verify the merged ledger
//!    covers the manifest exactly, then let the transport clean up its
//!    remote scratch space.
//!
//! Because per-trial RNG streams derive from unit coordinates, the merged
//! fleet output is **byte-identical** to an uninterrupted single-process
//! run — even when shards crashed, hung, or had their copy-backs torn
//! along the way. `diff` against a one-shot file is a complete
//! correctness check; CI's `fleet-smoke` and `fleet-remote-smoke` jobs
//! and the fault matrix in `tests/fleet_faults.rs` run exactly that.
//!
//! Local shard ledgers are left in place after a successful merge: they
//! are the fleet's crash record, and re-running the fleet over them is a
//! cheap no-op (every shard reports complete, only the merge re-runs).

use super::progress::ProgressTailer;
use super::transport::{
    Artifact, LaunchSpec, LocalTransport, ShardHandle, ShardLauncher, ShardStatus, ShardTransport,
};
use crate::manifest::RunManifest;
use crate::sink::{merge_jsonl, read_ledger};
use std::collections::HashSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How a fleet run is conducted.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of shard processes (`k` in `--shard i/k`).
    pub procs: usize,
    /// Total launch rounds allowed per shard (first attempt + retries).
    pub max_attempts: usize,
    /// Print per-shard lifecycle lines to stderr.
    pub verbose: bool,
    /// Print live per-shard `done/total` progress lines to stderr,
    /// tailing local ledgers (or periodically fetched copies for remote
    /// transports).
    pub progress: bool,
    /// How often running handles are polled.
    pub poll_interval: Duration,
    /// How often ledgers are probed (and, for remote transports,
    /// re-fetched) for progress and stall detection.
    pub progress_interval: Duration,
    /// Kill and retry a shard whose ledger shows no new completed unit
    /// for this long. `None` (the default) never kills: a shard with
    /// genuinely slow units must not be mistaken for a hang.
    ///
    /// The kill terminates the transport's **local handle** (the child
    /// process, or the wrapper — `sh`, `ssh`, `docker` — for command
    /// transports). A wrapper that does not propagate termination to
    /// the remote worker (plain `ssh` without a tty) can leave the
    /// remote shard running; if its writes interleave with the
    /// relaunched attempt's, the strict ledger readers surface that as
    /// a hard error rather than merging corrupt data. For such
    /// transports, prefer a remote-side bound (e.g.
    /// `ssh worker{index} 'timeout 3600 {cmd}'`) over — or alongside —
    /// this driver-side timeout.
    ///
    /// A shard the driver *cannot observe* (failing progress fetches)
    /// keeps accruing stall time — otherwise a hang behind a dead
    /// network could evade the timeout forever — so set the timeout
    /// above the worst transient unreachability window as well as above
    /// the slowest unit.
    pub stall_timeout: Option<Duration>,
    /// After completion, copy each shard's `--agg` summary back next to
    /// its ledger (remote transports; local summaries are written in
    /// place).
    pub fetch_summaries: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            procs: 2,
            max_attempts: 3,
            verbose: false,
            progress: false,
            poll_interval: Duration::from_millis(25),
            progress_interval: Duration::from_millis(500),
            stall_timeout: None,
            fetch_summaries: false,
        }
    }
}

/// What happened to one shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index in `0..procs`.
    pub index: usize,
    /// The shard's (driver-side) ledger file.
    pub ledger: PathBuf,
    /// Launch rounds used (0 when a pre-existing ledger was already
    /// complete).
    pub attempts: usize,
    /// True when any attempt resumed from a partial ledger.
    pub resumed: bool,
    /// Units this shard was responsible for.
    pub units: usize,
    /// Attempts killed by the stall timeout.
    pub stall_kills: usize,
}

/// What the whole fleet did.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard outcomes, by shard index.
    pub shards: Vec<ShardOutcome>,
    /// Units in the merged output (= the full manifest).
    pub merged_units: usize,
    /// Total shard launches across all rounds.
    pub launches: usize,
}

/// Canonical shard-ledger path for a merged output path: `out.jsonl` →
/// `out.shard3.jsonl` (the `.jsonl` suffix stays last so every ledger
/// tool recognizes the file).
pub fn shard_ledger_path(out: &Path, index: usize) -> PathBuf {
    let name = out
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    out.with_file_name(format!("{base}.shard{index}.jsonl"))
}

/// Canonical shard *summary* (mergeable sketch) path: `out.jsonl` →
/// `out.shard3.agg.jsonl`.
pub fn shard_summary_path(out: &Path, index: usize) -> PathBuf {
    let ledger = shard_ledger_path(out, index);
    let name = ledger
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    ledger.with_file_name(format!("{base}.agg.jsonl"))
}

/// Where one shard stands before (re)launching.
enum ShardState {
    /// No usable ledger — launch fresh.
    Fresh,
    /// A matching partial ledger exists — launch with resume.
    Partial,
    /// Every unit of the shard is already in the ledger.
    Complete,
}

/// Inspect a shard ledger. Corruption and foreign-run ledgers are hard
/// errors (the fleet never silently discards or overwrites data that
/// does not belong to this run); an empty/absent file means fresh.
fn shard_state(path: &Path, shard: &RunManifest) -> io::Result<ShardState> {
    match std::fs::metadata(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ShardState::Fresh),
        Err(e) => return Err(e),
        Ok(m) if m.len() == 0 => return Ok(ShardState::Fresh),
        Ok(_) => {}
    }
    let ledger = match read_ledger(path) {
        Ok(l) => l,
        // A child killed while its very first write was in flight leaves
        // a non-empty file holding only a torn fragment (no well-formed
        // record). That is a fresh shard — relaunch and let the child's
        // `JsonlSink::create` truncate it — not corruption to abort on.
        Err(_) if crate::sink::ledger_is_effectively_empty(path)? => return Ok(ShardState::Fresh),
        Err(e) => {
            return Err(io::Error::new(
                e.kind(),
                format!("shard ledger {} is unreadable: {e}", path.display()),
            ))
        }
    };
    if ledger.fingerprint != shard.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard ledger {} belongs to a different run (fingerprint mismatch); \
                 move it aside before launching this fleet",
                path.display()
            ),
        ));
    }
    let complete = shard.units.iter().all(|u| ledger.done.contains(&u.id));
    Ok(if complete {
        ShardState::Complete
    } else {
        ShardState::Partial
    })
}

/// One launched shard attempt being watched by the poll loop.
struct RunningShard {
    index: usize,
    handle: Box<dyn ShardHandle>,
    exited: bool,
    /// When the shard's units-done count last moved (or the attempt
    /// started) — the stall clock.
    last_change: Instant,
    /// Whether this attempt was already stall-killed (kill once).
    killed: bool,
}

/// Run a fleet of local child processes — the PR 4 entry point, now a
/// thin wrapper that adapts `launcher` into a [`LocalTransport`].
pub fn run_fleet(
    manifest: &RunManifest,
    launcher: &dyn ShardLauncher,
    out: &Path,
    opts: &FleetOptions,
) -> io::Result<FleetReport> {
    run_fleet_with(manifest, &LocalTransport { launcher }, out, opts)
}

/// Run the whole fleet over an arbitrary transport: launch `k` shards,
/// poll them, fetch their ledgers back, retry/resume failures, then
/// stream-merge the shard ledgers into `out` and verify the merged
/// ledger covers the manifest. See the module docs for the exact
/// protocol.
pub fn run_fleet_with(
    manifest: &RunManifest,
    transport: &dyn ShardTransport,
    out: &Path,
    opts: &FleetOptions,
) -> io::Result<FleetReport> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    if opts.procs == 0 {
        return Err(invalid("fleet needs at least one process".into()));
    }
    if opts.max_attempts == 0 {
        return Err(invalid("fleet needs at least one launch attempt".into()));
    }
    let procs = opts.procs;
    let shards: Vec<RunManifest> = (0..procs).map(|i| manifest.shard(i, procs)).collect();
    let paths: Vec<PathBuf> = (0..procs).map(|i| shard_ledger_path(out, i)).collect();
    let mut outcomes: Vec<ShardOutcome> = (0..procs)
        .map(|i| ShardOutcome {
            index: i,
            ledger: paths[i].clone(),
            attempts: 0,
            resumed: false,
            units: shards[i].len(),
            stall_kills: 0,
        })
        .collect();
    let mut tailers: Vec<ProgressTailer> = shards
        .iter()
        .map(|s| ProgressTailer::new(s.len()))
        .collect();
    let mut complete = vec![false; procs];
    let mut launches = 0;

    // The merged output (and the shard ledgers beside it) may live in a
    // directory that does not exist yet.
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }

    // What the round loop should do with one shard after a copy-back.
    enum Refresh {
        /// Ledger verified complete — nothing to launch.
        Complete,
        /// Launch (fresh or resuming).
        Launch { resume: bool },
        /// The fetch *failed* (as opposed to confirming absence): the
        /// remote is unobservable right now. Neither resuming (maybe
        /// nothing to resume from) nor restarting fresh (maybe
        /// discarding finished remote work) is safe — wait a round and
        /// re-fetch.
        Defer(io::Error),
    }

    // Copy shard `i`'s ledger back (no-op for local transports) and
    // re-validate it with the strict readers. Outcome semantics: a
    // *confirmed-missing* remote artifact (wiped scratch space, changed
    // workdir) downgrades a leftover Partial local copy to a fresh
    // relaunch — resuming would be doomed, and deterministic units make
    // the rerun identical — while a *failed* fetch defers the shard.
    let refresh = |i: usize| -> io::Result<Refresh> {
        let fetched = match transport.fetch(i, Artifact::Ledger, &paths[i]) {
            Ok(f) => f,
            Err(e) => {
                return Ok(match shard_state(&paths[i], &shards[i])? {
                    // A validated local copy needs no fetch to merge.
                    ShardState::Complete => Refresh::Complete,
                    // Nothing anywhere we can see: nothing to lose by
                    // launching (this is also round 0 of a fetch
                    // template that errors on a not-yet-created file).
                    ShardState::Fresh => Refresh::Launch { resume: false },
                    ShardState::Partial => Refresh::Defer(e),
                });
            }
        };
        Ok(match shard_state(&paths[i], &shards[i])? {
            ShardState::Complete => Refresh::Complete,
            ShardState::Fresh => Refresh::Launch { resume: false },
            ShardState::Partial if matches!(fetched, super::transport::FetchOutcome::Missing) => {
                Refresh::Launch { resume: false }
            }
            ShardState::Partial => Refresh::Launch { resume: true },
        })
    };

    for round in 0..opts.max_attempts {
        // Which shards still need work? (Re-fetched and re-checked every
        // round: a child that died *after* finishing its ledger counts
        // as complete, and a torn copy-back just means fetch again.)
        let mut pending: Vec<(usize, bool)> = Vec::new(); // (shard, resume)
        let mut deferred = 0usize;
        for (i, done) in complete.iter_mut().enumerate() {
            if *done {
                continue;
            }
            match refresh(i)? {
                Refresh::Complete => *done = true,
                Refresh::Launch { resume } => pending.push((i, resume)),
                Refresh::Defer(e) => {
                    deferred += 1;
                    if opts.verbose {
                        eprintln!("[fleet] shard {i}: copy-back failed ({e}); will retry");
                    }
                }
            }
        }
        if pending.is_empty() && deferred == 0 {
            break;
        }
        if pending.is_empty() {
            // Every remaining shard is waiting on fetch recovery; give
            // the transport a beat before burning the next round.
            std::thread::sleep(opts.progress_interval);
            continue;
        }
        let mut running: Vec<RunningShard> = Vec::with_capacity(pending.len());
        for &(i, resume) in &pending {
            if opts.verbose {
                eprintln!(
                    "[fleet] round {round}: launching shard {i}/{} ({} units{})",
                    procs,
                    shards[i].len(),
                    if resume { ", resuming" } else { "" }
                );
            }
            outcomes[i].attempts += 1;
            outcomes[i].resumed |= resume;
            launches += 1;
            let spec = LaunchSpec {
                index: i,
                procs,
                ledger: paths[i].clone(),
                resume,
                attempt: round,
            };
            running.push(RunningShard {
                index: i,
                handle: transport.launch(&spec)?,
                exited: false,
                last_change: Instant::now(),
                killed: false,
            });
        }
        // Poll every attempt to completion. Exit status is advisory (the
        // next round's fetch + strict read decides); stalls are killed
        // and land in the retry path like any other failure.
        let mut last_probe: Option<Instant> = None;
        loop {
            let mut all_exited = true;
            for shard in &mut running {
                if shard.exited {
                    continue;
                }
                match shard.handle.poll()? {
                    ShardStatus::Exited { success } => {
                        shard.exited = true;
                        if opts.verbose && !success {
                            eprintln!(
                                "[fleet] shard {} exited abnormally; will verify its ledger",
                                shard.index
                            );
                        }
                    }
                    ShardStatus::Running => all_exited = false,
                }
            }
            if all_exited {
                break;
            }
            let watch = opts.progress || opts.stall_timeout.is_some();
            if watch && last_probe.is_none_or(|t| t.elapsed() >= opts.progress_interval) {
                last_probe = Some(Instant::now());
                for shard in &mut running {
                    if shard.exited {
                        continue;
                    }
                    let i = shard.index;
                    // Progress is advisory: a failed mid-run fetch or
                    // probe must not abort the fleet. An errored probe
                    // leaves the stall clock exactly as it was — it
                    // neither counts as progress (resetting it would let
                    // a hung shard behind a dead network evade the
                    // timeout forever) nor accelerates the kill. The
                    // consequence, documented on `stall_timeout`: an
                    // unreachability window longer than the timeout can
                    // kill a healthy shard, so size the timeout above
                    // both.
                    let before = tailers[i].count();
                    match transport
                        .fetch(i, Artifact::Ledger, &paths[i])
                        .and_then(|_| tailers[i].observe(&paths[i]))
                    {
                        Ok(now_done) if now_done > before => {
                            shard.last_change = Instant::now();
                            if opts.progress {
                                eprintln!(
                                    "[fleet] shard {i}: {now_done}/{} units",
                                    tailers[i].total()
                                );
                            }
                        }
                        Ok(_) | Err(_) => {}
                    }
                    if let Some(limit) = opts.stall_timeout {
                        if !shard.killed && shard.last_change.elapsed() >= limit {
                            eprintln!(
                                "[fleet] shard {i}: no ledger progress for {:.1}s; \
                                 killing for retry",
                                limit.as_secs_f64()
                            );
                            shard.handle.kill()?;
                            shard.killed = true;
                            outcomes[i].stall_kills += 1;
                        }
                    }
                }
            }
            std::thread::sleep(opts.poll_interval);
        }
        // Round epilogue: one last probe per launched shard, so even a
        // run faster than the probe interval reports a final count.
        if opts.progress {
            for shard in &running {
                let i = shard.index;
                let _ = transport.fetch(i, Artifact::Ledger, &paths[i]);
                if let Ok(n) = tailers[i].observe(&paths[i]) {
                    eprintln!("[fleet] shard {i}: {n}/{} units", tailers[i].total());
                }
            }
        }
    }

    // Every shard must be complete now. Shards launched in the final
    // round exited after that round's refresh, so fetch them once more.
    for (i, done) in complete.iter_mut().enumerate() {
        if !*done && matches!(refresh(i)?, Refresh::Complete) {
            *done = true;
        }
    }
    for i in 0..procs {
        if !complete[i] {
            return Err(io::Error::other(format!(
                "shard {i} did not complete after {} attempt(s); its partial \
                 ledger is at {} (re-run the fleet to continue from it)",
                outcomes[i].attempts,
                paths[i].display()
            )));
        }
    }

    // Copy back the mergeable `--agg` summaries. Best-effort: a shard
    // whose ledger predates this fleet may have none, and the CLI
    // rebuilds stale/missing summaries from the (fetched) ledger.
    if opts.fetch_summaries {
        for i in 0..procs {
            match transport.fetch(i, Artifact::Summary, &shard_summary_path(out, i)) {
                Ok(_) => {}
                Err(e) if opts.verbose => {
                    eprintln!("[fleet] shard {i}: summary copy-back failed ({e}); will rebuild")
                }
                Err(_) => {}
            }
        }
    }

    // K-way stream-merge into the canonical output, then prove coverage.
    let mut writer = std::io::BufWriter::new(std::fs::File::create(out)?);
    merge_jsonl(&paths, &mut writer)?;
    writer.flush()?;
    let merged = read_ledger(out)?;
    if merged.fingerprint != manifest.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "merged fleet output carries the wrong fingerprint",
        ));
    }
    let missing: Vec<String> = manifest
        .units
        .iter()
        .filter(|u| !merged.done.contains(&u.id))
        .map(|u| u.id.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "merged fleet output is missing {} unit(s): {}",
                missing.len(),
                missing.join(", ")
            ),
        ));
    }
    // Paranoia: the merge must not have invented units either.
    let known: HashSet<_> = manifest.units.iter().map(|u| u.id).collect();
    if merged.done.iter().any(|id| !known.contains(id)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "merged fleet output contains units outside the manifest",
        ));
    }
    // Only now, with the merged output verified on disk, may the
    // transport drop its remote scratch space. Failure to clean up is a
    // warning, not a failed fleet.
    for i in 0..procs {
        if let Err(e) = transport.cleanup(i) {
            eprintln!("[fleet] warning: cleanup of shard {i} failed: {e}");
        }
    }
    Ok(FleetReport {
        shards: outcomes,
        merged_units: manifest.len(),
        launches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, WorkloadSpec};
    use dpbench_core::{Domain, Loss};
    use dpbench_datasets::catalog;
    use std::process::Child;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            datasets: vec![catalog::by_name("MEDCOST").unwrap()],
            scales: vec![10_000],
            domains: vec![Domain::D1(128)],
            epsilons: vec![0.5],
            algorithms: vec!["IDENTITY".into(), "UNIFORM".into()],
            n_samples: 1,
            n_trials: 2,
            workload: WorkloadSpec::Prefix,
            loss: Loss::L2,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpbench-fleet-mod-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn shard_ledger_paths_keep_the_jsonl_suffix() {
        let out = PathBuf::from("/tmp/results/fleet.jsonl");
        assert_eq!(
            shard_ledger_path(&out, 0),
            PathBuf::from("/tmp/results/fleet.shard0.jsonl")
        );
        assert_eq!(
            shard_ledger_path(Path::new("run"), 3),
            PathBuf::from("run.shard3.jsonl")
        );
    }

    /// A launcher that never spawns anything — exercises the driver's
    /// completeness handling around pre-built ledgers.
    struct NoopLauncher;

    impl ShardLauncher for NoopLauncher {
        fn launch(
            &self,
            _index: usize,
            _procs: usize,
            _ledger: &Path,
            _resume: bool,
            _attempt: usize,
        ) -> io::Result<Child> {
            // A no-op child: `true` exits 0 immediately without touching
            // the ledger, modeling a worker that dies before any unit.
            std::process::Command::new("true").spawn()
        }
    }

    #[test]
    fn fleet_over_prebuilt_ledgers_merges_without_launching() {
        use crate::runner::Runner;
        use crate::sink::JsonlSink;
        let out = tmp("prebuilt.jsonl");
        let manifest = Runner::new(tiny_config()).manifest();
        for i in 0..2 {
            let path = shard_ledger_path(&out, i);
            let _ = std::fs::remove_file(&path);
            let runner = Runner::new(tiny_config());
            let mut sink = JsonlSink::create(&path).unwrap();
            runner
                .run_with_sink(&manifest.shard(i, 2), &mut sink)
                .unwrap();
        }
        let opts = FleetOptions {
            procs: 2,
            max_attempts: 1,
            ..FleetOptions::default()
        };
        let report = run_fleet(&manifest, &NoopLauncher, &out, &opts).unwrap();
        assert_eq!(report.launches, 0, "complete shards must not relaunch");
        assert_eq!(report.merged_units, manifest.len());
        assert!(report.shards.iter().all(|s| s.attempts == 0));
        // Merged output equals a one-shot run byte for byte.
        let ref_path = tmp("prebuilt-ref.jsonl");
        let _ = std::fs::remove_file(&ref_path);
        let runner = Runner::new(tiny_config());
        let mut reference = JsonlSink::create(&ref_path).unwrap();
        runner.run_with_sink(&manifest, &mut reference).unwrap();
        drop(reference);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&ref_path).unwrap()
        );
        for p in [&out, &ref_path] {
            let _ = std::fs::remove_file(p);
        }
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_ledger_path(&out, i));
        }
    }

    #[test]
    fn fleet_reports_a_shard_that_never_completes() {
        let out = tmp("stuck.jsonl");
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_ledger_path(&out, i));
        }
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let opts = FleetOptions {
            procs: 2,
            max_attempts: 2,
            ..FleetOptions::default()
        };
        let err = run_fleet(&manifest, &NoopLauncher, &out, &opts).unwrap_err();
        assert!(
            err.to_string().contains("did not complete"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn torn_header_only_ledger_counts_as_fresh_not_corrupt() {
        use std::io::Write;
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let shard = manifest.shard(0, 2);
        // A child killed during its very first write: the file holds
        // only a torn header fragment. The fleet must relaunch fresh.
        let path = tmp("torn-header.jsonl");
        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "{{\"t\":\"run\",\"fp\":\"5b51").unwrap();
        drop(f);
        assert!(matches!(
            shard_state(&path, &shard).unwrap(),
            ShardState::Fresh
        ));
        // But a ledger with real content and a damaged header stays a
        // hard error — that is corruption, not a clean first-write kill.
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "NOT A HEADER").unwrap();
        writeln!(
            f,
            "{{\"t\":\"u\",\"unit\":\"{}\",\"pos\":{}}}",
            shard.units[0].id, shard.units[0].pos
        )
        .unwrap();
        drop(f);
        assert!(shard_state(&path, &shard).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fleet_refuses_a_foreign_shard_ledger() {
        use crate::runner::Runner;
        use crate::sink::JsonlSink;
        let out = tmp("foreign.jsonl");
        let shard0 = shard_ledger_path(&out, 0);
        let _ = std::fs::remove_file(&shard0);
        // Shard 0's path holds a ledger from a *different* grid.
        let mut other = tiny_config();
        other.epsilons = vec![0.9];
        let other_runner = Runner::new(other);
        let mut sink = JsonlSink::create(&shard0).unwrap();
        other_runner
            .run_with_sink(&other_runner.manifest(), &mut sink)
            .unwrap();
        drop(sink);
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let err = run_fleet(&manifest, &NoopLauncher, &out, &FleetOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("different run"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_file(&shard0);
    }
}
