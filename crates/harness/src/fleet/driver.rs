//! The fleet driver: launch, watch, copy back, steal, retry, merge.
//!
//! [`run_fleet_with`] conducts `k` shards over any [`ShardTransport`]:
//!
//! 1. expand the manifest **once** and deal it into `k` round-robin
//!    shards ([`RunManifest::shard`]);
//! 2. each round, **fetch** every unfinished shard's ledger back from
//!    the transport (a no-op for local transports, an offset-based
//!    incremental fetch where the transport supports ranging) and
//!    validate it with the strict readers — the copy-back protocol: a
//!    torn, empty, or missing artifact just means the shard is
//!    re-dispatched (or, when the remote ledger was already complete,
//!    relaunched into a cheap resume no-op and re-fetched), while a
//!    ledger from a *different run* is a hard error. A fetch that merely
//!    *failed* defers the shard without burning one of its launch
//!    attempts;
//! 3. launch every shard that is not yet complete and **poll** the
//!    handles: exit status is advisory (the ledger is the truth), a
//!    shard that stops making ledger progress for longer than
//!    [`FleetOptions::stall_timeout`] is killed and retried, and
//!    [`FleetOptions::progress`] tails the (fetched) ledgers into live
//!    per-shard `done/total` lines. When some shards finish while a
//!    straggler is still grinding, the driver **steals** the
//!    straggler's unfinished tail — re-dealing it to the idle slots as
//!    fresh sub-shard launches (`shard(victim, k).span(from, until)`) —
//!    and releases the victim once its units are covered;
//! 4. once every shard's units are covered (by its own ledger and/or
//!    steal ledgers), stream-merge the ledgers into the canonical
//!    output ([`merge_jsonl`]), verify the merged ledger covers the
//!    manifest exactly, then let the transport clean up its remote
//!    scratch space.
//!
//! Because per-trial RNG streams derive from unit coordinates, the merged
//! fleet output is **byte-identical** to an uninterrupted single-process
//! run — even when shards crashed, hung, had their copy-backs torn, or
//! had their tails re-dealt along the way (duplicated units are verified
//! bit-exact and emitted once by the merge). `diff` against a one-shot
//! file is a complete correctness check; CI's fleet smoke jobs and the
//! fault matrix in `tests/fleet_faults.rs` run exactly that.
//!
//! Local shard ledgers are left in place after a successful merge: they
//! are the fleet's crash record. Re-running a fleet over them is a cheap
//! no-op for shards that completed on their own; a shard whose tail was
//! stolen holds only its own units, so a re-run recomputes the stolen
//! tail (the merged output of the first run is still the canonical
//! artifact).

use super::progress::ProgressTailer;
use super::transport::{
    Artifact, FetchOutcome, LaunchSpec, LocalTransport, RangedFetch, ShardHandle, ShardLauncher,
    ShardStatus, ShardTransport, StealSpec,
};
use crate::manifest::{RunManifest, UnitId};
use crate::sink::{atomic_write, merge_jsonl, read_ledger};
use std::collections::HashSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// How a fleet run is conducted.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of shard processes (`k` in `--shard i/k`).
    pub procs: usize,
    /// Launch attempts allowed **per shard** (first attempt + retries).
    /// Rounds in which a shard is merely deferred (its copy-back failed)
    /// do not count against this budget.
    pub max_attempts: usize,
    /// Print per-shard lifecycle lines to stderr.
    pub verbose: bool,
    /// Print live per-shard `done/total` progress lines to stderr,
    /// tailing local ledgers (or periodically fetched copies for remote
    /// transports).
    pub progress: bool,
    /// How often running handles are polled.
    pub poll_interval: Duration,
    /// How often ledgers are probed (and, for remote transports,
    /// re-fetched) for progress, stall detection, and steal decisions.
    pub progress_interval: Duration,
    /// Kill and retry a shard whose ledger shows no new completed unit
    /// for this long. `None` (the default) never kills: a shard with
    /// genuinely slow units must not be mistaken for a hang.
    ///
    /// The kill terminates the transport's **local handle** (the child
    /// process, or the wrapper — `sh`, `ssh`, `docker` — for command
    /// transports). A wrapper that does not propagate termination to
    /// the remote worker (plain `ssh` without a tty) can leave the
    /// remote shard running; if its writes interleave with the
    /// relaunched attempt's, the strict ledger readers surface that as
    /// a hard error rather than merging corrupt data. For such
    /// transports, prefer a remote-side bound (e.g.
    /// `ssh worker{index} 'timeout 3600 {cmd}'`) over — or alongside —
    /// this driver-side timeout.
    ///
    /// A shard the driver *cannot observe* (failing progress fetches)
    /// keeps accruing stall time — otherwise a hang behind a dead
    /// network could evade the timeout forever — so set the timeout
    /// above the worst transient unreachability window as well as above
    /// the slowest unit.
    pub stall_timeout: Option<Duration>,
    /// After completion, copy each shard's `--agg` summary back next to
    /// its ledger (remote transports; local summaries are written in
    /// place).
    pub fetch_summaries: bool,
    /// Re-deal a straggler's unfinished tail to idle slots (work
    /// stealing). On by default: any deal merges byte-identically, so
    /// stealing only changes wall clock, never output.
    pub steal: bool,
    /// Minimum uncovered units a straggler must hold before its tail is
    /// worth re-dealing (stealing a single in-flight unit only
    /// duplicates work).
    pub steal_min_units: usize,
    /// Consecutive rounds one shard may defer (failed copy-back) before
    /// the fleet gives up on it. Distinct from `max_attempts`: deferral
    /// means the remote may be fine and we simply cannot look.
    pub max_defer_rounds: usize,
    /// Write an atomically-updated (temp + rename, never torn) fleet
    /// status JSON here on every probe tick — the pollable dashboard
    /// feed behind `fleet --status-file`.
    pub status_file: Option<PathBuf>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            procs: 2,
            max_attempts: 3,
            verbose: false,
            progress: false,
            poll_interval: Duration::from_millis(25),
            progress_interval: Duration::from_millis(500),
            stall_timeout: None,
            fetch_summaries: false,
            steal: true,
            steal_min_units: 2,
            max_defer_rounds: 20,
            status_file: None,
        }
    }
}

/// What happened to one shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index in `0..procs`.
    pub index: usize,
    /// The shard's (driver-side) ledger file.
    pub ledger: PathBuf,
    /// Launch attempts used (0 when a pre-existing ledger was already
    /// complete). Steal launches are counted separately, in
    /// [`FleetReport::steal_launches`].
    pub attempts: usize,
    /// True when any attempt resumed from a partial ledger.
    pub resumed: bool,
    /// Units this shard was responsible for.
    pub units: usize,
    /// Attempts killed by the stall timeout.
    pub stall_kills: usize,
    /// Steal launches that re-dealt part of this shard's tail.
    pub tails_stolen: usize,
}

/// One tail re-deal, as reported by [`FleetReport::steals`].
#[derive(Debug, Clone)]
pub struct StealEvent {
    /// Fleet-wide steal sequence number.
    pub seq: usize,
    /// The straggler shard the units were taken from.
    pub victim: usize,
    /// The idle slot that ran the stolen tail.
    pub slot: usize,
    /// First full-run position of the stolen range (inclusive).
    pub from_pos: usize,
    /// End of the stolen range (exclusive).
    pub until_pos: usize,
    /// Victim units inside the range.
    pub units: usize,
}

/// What the whole fleet did.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard outcomes, by shard index.
    pub shards: Vec<ShardOutcome>,
    /// Units in the merged output (= the full manifest).
    pub merged_units: usize,
    /// Total primary shard launches across all rounds.
    pub launches: usize,
    /// Total steal (tail re-deal) launches.
    pub steal_launches: usize,
    /// Every tail re-deal, in launch order.
    pub steals: Vec<StealEvent>,
    /// Bytes moved by whole-artifact copy-backs.
    pub fetch_full_bytes: u64,
    /// Bytes moved by offset-based incremental copy-backs.
    pub fetch_ranged_bytes: u64,
    /// Bytes moved per probe tick, in order — the steady-state traffic
    /// trajectory (O(new bytes) when the transport ranges, O(ledger)
    /// otherwise).
    pub probe_fetch_bytes: Vec<u64>,
}

/// Canonical shard-ledger path for a merged output path: `out.jsonl` →
/// `out.shard3.jsonl` (the `.jsonl` suffix stays last so every ledger
/// tool recognizes the file).
pub fn shard_ledger_path(out: &Path, index: usize) -> PathBuf {
    let name = out
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    out.with_file_name(format!("{base}.shard{index}.jsonl"))
}

/// Canonical shard *summary* (mergeable sketch) path: `out.jsonl` →
/// `out.shard3.agg.jsonl`.
pub fn shard_summary_path(out: &Path, index: usize) -> PathBuf {
    let ledger = shard_ledger_path(out, index);
    let name = ledger
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    ledger.with_file_name(format!("{base}.agg.jsonl"))
}

/// Canonical steal-ledger path: `out.jsonl` → `out.steal4.jsonl`.
pub fn steal_ledger_path(out: &Path, seq: usize) -> PathBuf {
    let name = out
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    out.with_file_name(format!("{base}.steal{seq}.jsonl"))
}

/// Fingerprint of a ledger's header line, if the file starts with a
/// complete well-formed one. A one-line read — the probe-path guard
/// that keeps a foreign ledger delivered into our shard path from being
/// silently observed (and later healed over by a clean re-fetch)
/// instead of erroring like every other validation site.
fn header_fingerprint(path: &Path) -> Option<u64> {
    use std::io::BufRead;
    let f = std::fs::File::open(path).ok()?;
    let mut line = String::new();
    std::io::BufReader::new(f).read_line(&mut line).ok()?;
    if !line.ends_with('\n') {
        return None;
    }
    let rest = &line[line.find("\"fp\":\"")? + 6..];
    u64::from_str_radix(rest.get(..16)?, 16).ok()
}

/// Where one shard stands before (re)launching.
enum ShardState {
    /// No usable ledger — launch fresh.
    Fresh,
    /// A matching partial ledger exists — launch with resume.
    Partial,
    /// Every unit of the shard is already in the ledger.
    Complete,
}

/// Inspect a shard ledger. Corruption and foreign-run ledgers are hard
/// errors (the fleet never silently discards or overwrites data that
/// does not belong to this run); an empty/absent file means fresh.
fn shard_state(path: &Path, shard: &RunManifest) -> io::Result<ShardState> {
    match std::fs::metadata(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ShardState::Fresh),
        Err(e) => return Err(e),
        Ok(m) if m.len() == 0 => return Ok(ShardState::Fresh),
        Ok(_) => {}
    }
    let ledger = match read_ledger(path) {
        Ok(l) => l,
        // A child killed while its very first write was in flight leaves
        // a non-empty file holding only a torn fragment (no well-formed
        // record). That is a fresh shard — relaunch and let the child's
        // `JsonlSink::create` truncate it — not corruption to abort on.
        Err(_) if crate::sink::ledger_is_effectively_empty(path)? => return Ok(ShardState::Fresh),
        Err(e) => {
            return Err(io::Error::new(
                e.kind(),
                format!("shard ledger {} is unreadable: {e}", path.display()),
            ))
        }
    };
    if ledger.fingerprint != shard.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard ledger {} belongs to a different run (fingerprint mismatch); \
                 move it aside before launching this fleet",
                path.display()
            ),
        ));
    }
    let complete = shard.units.iter().all(|u| ledger.done.contains(&u.id));
    Ok(if complete {
        ShardState::Complete
    } else {
        ShardState::Partial
    })
}

/// One copy-back, ranged when the transport supports it.
enum Synced {
    /// The artifact was delivered (possibly zero new bytes).
    Delivered {
        /// Bytes actually transferred.
        bytes: u64,
        /// True when the ranged path delivered it.
        ranged: bool,
    },
    /// Confirmed absence of the remote artifact.
    Missing,
}

/// Fetch one artifact, preferring the transport's ranged path (from the
/// caller's validated complete-line offset) and falling back to a full
/// copy when the transport cannot range.
fn sync_artifact(
    transport: &dyn ShardTransport,
    slot: usize,
    artifact: Artifact,
    dest: &Path,
    from: u64,
) -> io::Result<Synced> {
    match transport.fetch_ranged(slot, artifact, dest, from)? {
        RangedFetch::Unsupported => match transport.fetch(slot, artifact, dest)? {
            FetchOutcome::Missing => Ok(Synced::Missing),
            FetchOutcome::InPlace => Ok(Synced::Delivered {
                bytes: 0,
                ranged: false,
            }),
            FetchOutcome::Copied => Ok(Synced::Delivered {
                bytes: std::fs::metadata(dest).map(|m| m.len()).unwrap_or(0),
                ranged: false,
            }),
        },
        RangedFetch::Missing => Ok(Synced::Missing),
        RangedFetch::Unchanged => Ok(Synced::Delivered {
            bytes: 0,
            ranged: true,
        }),
        RangedFetch::Appended { bytes } | RangedFetch::Rewound { bytes } => Ok(Synced::Delivered {
            bytes,
            ranged: true,
        }),
    }
}

/// What the round loop should do with one shard after a copy-back.
enum Refresh {
    /// The shard's units are covered (own ledger and/or steal ledgers)
    /// — nothing to launch.
    Complete,
    /// Launch (fresh or resuming).
    Launch {
        /// Resume from the partial local ledger.
        resume: bool,
    },
    /// The fetch *failed* (as opposed to confirming absence): the
    /// remote is unobservable right now. Neither resuming (maybe
    /// nothing to resume from) nor restarting fresh (maybe discarding
    /// finished remote work) is safe — wait a round and re-fetch,
    /// **without** burning a launch attempt.
    Defer(io::Error),
}

/// One launched attempt (primary shard or stolen tail) being watched by
/// the poll loop.
struct Running {
    /// `None` — primary shard `slot`; `Some(i)` — index into the steal
    /// records.
    steal: Option<usize>,
    slot: usize,
    handle: Box<dyn ShardHandle>,
    exited: bool,
    /// Finalized after exit: last fetch + observe done.
    reaped: bool,
    /// When the attempt's units-done count last moved (or the attempt
    /// started) — the stall clock.
    last_change: Instant,
    /// Whether this attempt was killed (stall or release) — kill once.
    killed: bool,
}

/// Bookkeeping for one steal launch.
struct StealRec {
    spec: StealSpec,
    slot: usize,
    ledger: PathBuf,
    tailer: ProgressTailer,
    /// The victim units inside the stolen range.
    unit_ids: Vec<UnitId>,
    /// Exited and finally fetched.
    finalized: bool,
    /// Exited without covering its range — the range is eligible again.
    dead: bool,
}

/// Everything the status-file serializer needs for one snapshot.
struct StatusInput<'a> {
    fingerprint: u64,
    elapsed_ms: u128,
    units_total: usize,
    units_done: usize,
    launches: usize,
    steal_launches: usize,
    deferred: usize,
    complete: bool,
    shards: &'a [ShardOutcome],
    shard_done: &'a [usize],
    steals: &'a [StealRec],
}

/// Render the single-line fleet-status JSON (hand-built like every other
/// writer in this codebase — no serde dependency).
fn render_status(s: &StatusInput) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"t\":\"fleet-status\",\"fp\":\"{:016x}\",\"elapsed_ms\":{},\
         \"units_total\":{},\"units_done\":{},\"launches\":{},\
         \"steal_launches\":{},\"stall_kills\":{},\"deferred\":{},\
         \"complete\":{},\"shards\":[",
        s.fingerprint,
        s.elapsed_ms,
        s.units_total,
        s.units_done,
        s.launches,
        s.steal_launches,
        s.shards.iter().map(|o| o.stall_kills).sum::<usize>(),
        s.deferred,
        s.complete,
    ));
    for (i, o) in s.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"index\":{},\"units\":{},\"done\":{},\"attempts\":{},\"stall_kills\":{}}}",
            o.index, o.units, s.shard_done[i], o.attempts, o.stall_kills
        ));
    }
    out.push_str("],\"steals\":[");
    for (i, r) in s.steals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"victim\":{},\"slot\":{},\"from_pos\":{},\"until_pos\":{},\
             \"units\":{},\"done\":{},\"active\":{}}}",
            r.spec.seq,
            r.spec.victim,
            r.slot,
            r.spec.from_pos,
            r.spec.until_pos,
            r.unit_ids.len(),
            r.tailer.count(),
            !r.finalized,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Run a fleet of local child processes — the PR 4 entry point, now a
/// thin wrapper that adapts `launcher` into a [`LocalTransport`].
pub fn run_fleet(
    manifest: &RunManifest,
    launcher: &dyn ShardLauncher,
    out: &Path,
    opts: &FleetOptions,
) -> io::Result<FleetReport> {
    run_fleet_with(manifest, &LocalTransport { launcher }, out, opts)
}

/// Run the whole fleet over an arbitrary transport: launch `k` shards,
/// poll them, fetch their ledgers back (incrementally when the transport
/// ranges), steal straggler tails onto idle slots, retry/resume
/// failures, then stream-merge the shard and steal ledgers into `out`
/// and verify the merged ledger covers the manifest. See the module docs
/// for the exact protocol.
pub fn run_fleet_with(
    manifest: &RunManifest,
    transport: &dyn ShardTransport,
    out: &Path,
    opts: &FleetOptions,
) -> io::Result<FleetReport> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    if opts.procs == 0 {
        return Err(invalid("fleet needs at least one process".into()));
    }
    if opts.max_attempts == 0 {
        return Err(invalid("fleet needs at least one launch attempt".into()));
    }
    let procs = opts.procs;
    let shards: Vec<RunManifest> = (0..procs).map(|i| manifest.shard(i, procs)).collect();
    let paths: Vec<PathBuf> = (0..procs).map(|i| shard_ledger_path(out, i)).collect();
    let ids: Vec<HashSet<UnitId>> = shards
        .iter()
        .map(|s| s.units.iter().map(|u| u.id).collect())
        .collect();
    let mut outcomes: Vec<ShardOutcome> = (0..procs)
        .map(|i| ShardOutcome {
            index: i,
            ledger: paths[i].clone(),
            attempts: 0,
            resumed: false,
            units: shards[i].len(),
            stall_kills: 0,
            tails_stolen: 0,
        })
        .collect();
    let mut tailers: Vec<ProgressTailer> = shards
        .iter()
        .map(|s| ProgressTailer::new(s.len()))
        .collect();
    // Unioned coverage per shard: own ledger observations plus every
    // steal ledger targeting it. Sets only grow, which is what keeps the
    // fleet-level progress count (and the status file's `units_done`)
    // monotone across steals and relaunches.
    let mut covered: Vec<HashSet<UnitId>> = vec![HashSet::new(); procs];
    let mut complete = vec![false; procs];
    let mut defers = vec![0usize; procs];
    let mut launches = 0usize;
    let mut steals: Vec<StealRec> = Vec::new();
    let mut fetch_full_bytes = 0u64;
    let mut fetch_ranged_bytes = 0u64;
    let mut probe_fetch_bytes: Vec<u64> = Vec::new();
    let mut fleet_done_floor = 0usize;
    let started = Instant::now();

    // The merged output (and the shard ledgers beside it) may live in a
    // directory that does not exist yet.
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }

    // Union of every *valid* steal ledger targeting shard `i` — the
    // strict-read inclusion rule shared by the completeness check and
    // the final merge, so they can never disagree.
    let steal_done_for = |i: usize, steals: &[StealRec]| -> HashSet<UnitId> {
        let mut done = HashSet::new();
        for r in steals.iter().filter(|r| r.spec.victim == i) {
            if let Ok(l) = read_ledger(&r.ledger) {
                if l.fingerprint == manifest.fingerprint {
                    done.extend(l.done);
                }
            }
        }
        done
    };

    let count_covered = |ids: &HashSet<UnitId>, covered: &HashSet<UnitId>| -> usize {
        ids.iter().filter(|id| covered.contains(*id)).count()
    };

    // The probe-path twin of `shard_state`'s fingerprint check: a fetch
    // that delivers a *foreign* ledger mid-poll is the same stale-scratch
    // hard error, not something to observe and quietly heal over.
    let foreign = |dest: &Path| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard ledger {} belongs to a different run (fingerprint mismatch); \
                 move it aside before launching this fleet",
                dest.display()
            ),
        )
    };

    let mut round = 0usize;
    loop {
        round += 1;
        // Which shards still need work? (Re-fetched and re-checked every
        // round: a child that died *after* finishing its ledger counts
        // as complete, and a torn copy-back just means fetch again.)
        let mut pending: Vec<(usize, bool)> = Vec::new(); // (shard, resume)
        let mut any_defer = false;
        for i in 0..procs {
            if complete[i] {
                continue;
            }
            let steal_done = steal_done_for(i, &steals);
            let all_covered = |own: &HashSet<UnitId>| {
                ids[i]
                    .iter()
                    .all(|id| own.contains(id) || steal_done.contains(id))
            };
            let refresh = match sync_artifact(
                transport,
                i,
                Artifact::Ledger,
                &paths[i],
                tailers[i].offset(),
            ) {
                Err(e) => match shard_state(&paths[i], &shards[i])? {
                    // A validated local copy needs no fetch to merge.
                    ShardState::Complete => Refresh::Complete,
                    // Nothing anywhere we can see: nothing to lose by
                    // launching (this is also round 0 of a fetch
                    // template that errors on a not-yet-created file).
                    ShardState::Fresh => Refresh::Launch { resume: false },
                    ShardState::Partial => {
                        let own = read_ledger(&paths[i]).map(|l| l.done).unwrap_or_default();
                        if all_covered(&own) {
                            // Steals finished the tail; the unreachable
                            // victim no longer blocks the fleet.
                            Refresh::Complete
                        } else {
                            Refresh::Defer(e)
                        }
                    }
                },
                Ok(synced) => {
                    let (missing, was_ranged) = match synced {
                        Synced::Delivered { bytes, ranged } => {
                            if ranged {
                                fetch_ranged_bytes += bytes;
                            } else {
                                fetch_full_bytes += bytes;
                            }
                            (false, ranged)
                        }
                        Synced::Missing => (true, false),
                    };
                    let state = match shard_state(&paths[i], &shards[i]) {
                        // Defensive: if a ranged splice diverged (a
                        // relaunch raced the offset), one full re-fetch
                        // repairs it before we give up.
                        Err(_) if was_ranged => {
                            if let Ok(FetchOutcome::Copied) =
                                transport.fetch(i, Artifact::Ledger, &paths[i])
                            {
                                fetch_full_bytes +=
                                    std::fs::metadata(&paths[i]).map(|m| m.len()).unwrap_or(0);
                            }
                            shard_state(&paths[i], &shards[i])?
                        }
                        other => other?,
                    };
                    match state {
                        ShardState::Complete => Refresh::Complete,
                        ShardState::Fresh if all_covered(&HashSet::new()) => Refresh::Complete,
                        ShardState::Fresh => Refresh::Launch { resume: false },
                        ShardState::Partial => {
                            let own = read_ledger(&paths[i]).map(|l| l.done).unwrap_or_default();
                            if all_covered(&own) {
                                Refresh::Complete
                            } else if missing {
                                // Confirmed-absent remote downgrades a
                                // leftover Partial local copy to fresh:
                                // resuming would be doomed, and
                                // deterministic units make the rerun
                                // identical.
                                Refresh::Launch { resume: false }
                            } else {
                                Refresh::Launch { resume: true }
                            }
                        }
                    }
                }
            };
            match refresh {
                Refresh::Complete => {
                    complete[i] = true;
                    covered[i].extend(ids[i].iter().copied());
                    defers[i] = 0;
                }
                Refresh::Launch { resume } => {
                    defers[i] = 0;
                    if outcomes[i].attempts >= opts.max_attempts {
                        return Err(io::Error::other(format!(
                            "shard {i} did not complete after {} attempt(s); its partial \
                             ledger is at {} (re-run the fleet to continue from it)",
                            outcomes[i].attempts,
                            paths[i].display()
                        )));
                    }
                    pending.push((i, resume));
                }
                Refresh::Defer(e) => {
                    defers[i] += 1;
                    any_defer = true;
                    if defers[i] > opts.max_defer_rounds {
                        return Err(io::Error::other(format!(
                            "shard {i}: copy-back failed {} consecutive round(s) \
                             (last error: {e}); its remote ledger is unreachable",
                            defers[i]
                        )));
                    }
                    if opts.verbose {
                        eprintln!("[fleet] shard {i}: copy-back failed ({e}); will retry");
                    }
                }
            }
        }
        if pending.is_empty() && !any_defer {
            break; // every shard covered
        }
        if pending.is_empty() {
            // Every remaining shard is waiting on fetch recovery; give
            // the transport a beat (a deferral burns time, never a
            // launch attempt).
            if let Some(sf) = &opts.status_file {
                let shard_done: Vec<usize> = (0..procs)
                    .map(|i| count_covered(&ids[i], &covered[i]))
                    .collect();
                let done_now: usize = shard_done.iter().sum();
                fleet_done_floor = fleet_done_floor.max(done_now);
                let _ = atomic_write(
                    sf,
                    render_status(&StatusInput {
                        fingerprint: manifest.fingerprint,
                        elapsed_ms: started.elapsed().as_millis(),
                        units_total: manifest.len(),
                        units_done: fleet_done_floor,
                        launches,
                        steal_launches: steals.len(),
                        deferred: defers.iter().filter(|d| **d > 0).count(),
                        complete: false,
                        shards: &outcomes,
                        shard_done: &shard_done,
                        steals: &steals,
                    })
                    .as_bytes(),
                );
            }
            std::thread::sleep(opts.progress_interval);
            continue;
        }

        let mut running: Vec<Running> = Vec::with_capacity(pending.len());
        for &(i, resume) in &pending {
            if opts.verbose {
                eprintln!(
                    "[fleet] round {round}: launching shard {i}/{} ({} units{})",
                    procs,
                    shards[i].len(),
                    if resume { ", resuming" } else { "" }
                );
            }
            let spec = LaunchSpec {
                index: i,
                procs,
                ledger: paths[i].clone(),
                resume,
                attempt: outcomes[i].attempts,
                steal: None,
            };
            outcomes[i].attempts += 1;
            outcomes[i].resumed |= resume;
            launches += 1;
            running.push(Running {
                steal: None,
                slot: i,
                handle: transport.launch(&spec)?,
                exited: false,
                reaped: false,
                last_change: Instant::now(),
                killed: false,
            });
        }

        // Poll every attempt to completion. Exit status is advisory (the
        // next round's fetch + strict read decides); stalls are killed
        // and land in the retry path like any other failure. Probe ticks
        // also drive steal decisions and the status feed, so the loop
        // watches whenever any of those features is on.
        let watch = opts.progress
            || opts.stall_timeout.is_some()
            || opts.status_file.is_some()
            || opts.steal;
        let mut last_probe: Option<Instant> = None;
        loop {
            let mut all_exited = true;
            for r in &mut running {
                if !r.exited {
                    match r.handle.poll()? {
                        ShardStatus::Exited { success } => {
                            r.exited = true;
                            if opts.verbose && !success {
                                match r.steal {
                                    None => eprintln!(
                                        "[fleet] shard {} exited abnormally; will verify its ledger",
                                        r.slot
                                    ),
                                    Some(si) => eprintln!(
                                        "[fleet] steal {} exited abnormally; will verify its ledger",
                                        steals[si].spec.seq
                                    ),
                                }
                            }
                        }
                        ShardStatus::Running => all_exited = false,
                    }
                }
                if r.exited && !r.reaped {
                    // Finalize on exit: one last fetch + observe, so the
                    // coverage sets (which gate idleness, release kills,
                    // and steal deadness) see the attempt's full ledger
                    // even when it outran the probe interval.
                    r.reaped = true;
                    match r.steal {
                        None => {
                            let i = r.slot;
                            if let Ok(Synced::Delivered { bytes, ranged }) = sync_artifact(
                                transport,
                                i,
                                Artifact::Ledger,
                                &paths[i],
                                tailers[i].offset(),
                            ) {
                                if ranged {
                                    fetch_ranged_bytes += bytes;
                                } else {
                                    fetch_full_bytes += bytes;
                                }
                            }
                            if header_fingerprint(&paths[i])
                                .is_some_and(|fp| fp != manifest.fingerprint)
                            {
                                return Err(foreign(&paths[i]));
                            }
                            let _ = tailers[i].observe(&paths[i]);
                            covered[i].extend(tailers[i].done().iter().copied());
                        }
                        Some(si) => {
                            let rec = &mut steals[si];
                            if let Ok(Synced::Delivered { bytes, ranged }) = sync_artifact(
                                transport,
                                r.slot,
                                Artifact::Steal { seq: rec.spec.seq },
                                &rec.ledger,
                                rec.tailer.offset(),
                            ) {
                                if ranged {
                                    fetch_ranged_bytes += bytes;
                                } else {
                                    fetch_full_bytes += bytes;
                                }
                            }
                            if header_fingerprint(&rec.ledger)
                                .is_some_and(|fp| fp != manifest.fingerprint)
                            {
                                return Err(foreign(&rec.ledger));
                            }
                            let _ = rec.tailer.observe(&rec.ledger);
                            covered[rec.spec.victim].extend(rec.tailer.done().iter().copied());
                            rec.finalized = true;
                            rec.dead =
                                !rec.unit_ids.iter().all(|id| rec.tailer.done().contains(id));
                            if rec.dead && opts.verbose {
                                eprintln!(
                                    "[fleet] steal {} died before covering its range; \
                                     the range is eligible again",
                                    rec.spec.seq
                                );
                            }
                        }
                    }
                }
            }
            if all_exited {
                break;
            }
            if watch && last_probe.is_none_or(|t| t.elapsed() >= opts.progress_interval) {
                last_probe = Some(Instant::now());
                let mut tick_bytes = 0u64;
                // Probe every running attempt: fetch (ranged when the
                // transport supports it), observe, update coverage,
                // stall-kill. Progress is advisory: a failed mid-run
                // fetch or probe must not abort the fleet. An errored
                // probe leaves the stall clock exactly as it was — it
                // neither counts as progress (resetting it would let a
                // hung shard behind a dead network evade the timeout
                // forever) nor accelerates the kill.
                for r in &mut running {
                    if r.exited {
                        continue;
                    }
                    let (artifact, before) = match r.steal {
                        None => (Artifact::Ledger, tailers[r.slot].count()),
                        Some(si) => (
                            Artifact::Steal {
                                seq: steals[si].spec.seq,
                            },
                            steals[si].tailer.count(),
                        ),
                    };
                    let (dest, from) = match r.steal {
                        None => (paths[r.slot].clone(), tailers[r.slot].offset()),
                        Some(si) => (steals[si].ledger.clone(), steals[si].tailer.offset()),
                    };
                    match sync_artifact(transport, r.slot, artifact, &dest, from) {
                        Ok(Synced::Delivered { bytes, ranged }) => {
                            if ranged {
                                fetch_ranged_bytes += bytes;
                            } else {
                                fetch_full_bytes += bytes;
                            }
                            tick_bytes += bytes;
                            if header_fingerprint(&dest)
                                .is_some_and(|fp| fp != manifest.fingerprint)
                            {
                                return Err(foreign(&dest));
                            }
                            let observed = match r.steal {
                                None => tailers[r.slot].observe(&dest).map(|n| {
                                    covered[r.slot].extend(tailers[r.slot].done().iter().copied());
                                    (n, tailers[r.slot].total())
                                }),
                                Some(si) => {
                                    let rec = &mut steals[si];
                                    rec.tailer.observe(&dest).map(|n| {
                                        covered[rec.spec.victim]
                                            .extend(rec.tailer.done().iter().copied());
                                        (n, rec.tailer.total())
                                    })
                                }
                            };
                            if let Ok((now_done, total)) = observed {
                                if now_done > before {
                                    r.last_change = Instant::now();
                                    if opts.progress {
                                        match r.steal {
                                            None => eprintln!(
                                                "[fleet] shard {}: {now_done}/{total} units",
                                                r.slot
                                            ),
                                            Some(si) => eprintln!(
                                                "[fleet] steal {}: {now_done}/{total} units \
                                                 (shard {} tail on slot {})",
                                                steals[si].spec.seq, steals[si].spec.victim, r.slot
                                            ),
                                        }
                                    }
                                }
                            }
                        }
                        Ok(Synced::Missing) | Err(_) => {}
                    }
                    if let Some(limit) = opts.stall_timeout {
                        if !r.killed && r.last_change.elapsed() >= limit {
                            match r.steal {
                                None => {
                                    eprintln!(
                                        "[fleet] shard {}: no ledger progress for {:.1}s; \
                                         killing for retry",
                                        r.slot,
                                        limit.as_secs_f64()
                                    );
                                    outcomes[r.slot].stall_kills += 1;
                                }
                                Some(si) => eprintln!(
                                    "[fleet] steal {}: no ledger progress for {:.1}s; killing",
                                    steals[si].spec.seq,
                                    limit.as_secs_f64()
                                ),
                            }
                            r.handle.kill()?;
                            r.killed = true;
                        }
                    }
                }
                // Release victims whose remaining tail is fully covered
                // by steals: their in-flight unit would only duplicate
                // work the merge already has. Not a stall kill.
                for r in &mut running {
                    if r.exited || r.killed || r.steal.is_some() {
                        continue;
                    }
                    let v = r.slot;
                    if !ids[v].is_empty() && count_covered(&ids[v], &covered[v]) == ids[v].len() {
                        eprintln!("[fleet] shard {v}: released — remaining tail covered by steals");
                        r.handle.kill()?;
                        r.killed = true;
                    }
                }
                // Steal decision: re-deal the biggest uncovered tail of
                // a still-running shard across every idle slot.
                if opts.steal && steals.len() < procs * opts.max_attempts {
                    let busy: HashSet<usize> = running
                        .iter()
                        .filter(|r| !r.exited)
                        .map(|r| r.slot)
                        .collect();
                    let idle: Vec<usize> = (0..procs)
                        .filter(|j| {
                            !busy.contains(j)
                                && (complete[*j]
                                    || count_covered(&ids[*j], &covered[*j]) == ids[*j].len())
                        })
                        .collect();
                    let mut victim: Option<(usize, Vec<usize>)> = None;
                    for r in &running {
                        if r.exited || r.steal.is_some() || complete[r.slot] {
                            continue;
                        }
                        let v = r.slot;
                        let active: Vec<(usize, usize)> = steals
                            .iter()
                            .filter(|s| s.spec.victim == v && !s.dead)
                            .map(|s| (s.spec.from_pos, s.spec.until_pos))
                            .collect();
                        let eligible: Vec<usize> = shards[v]
                            .units
                            .iter()
                            .filter(|u| !covered[v].contains(&u.id))
                            .filter(|u| !active.iter().any(|(f, ul)| u.pos >= *f && u.pos < *ul))
                            .map(|u| u.pos)
                            .collect();
                        if eligible.len() >= opts.steal_min_units.max(1)
                            && victim
                                .as_ref()
                                .is_none_or(|(_, b)| eligible.len() > b.len())
                        {
                            victim = Some((v, eligible));
                        }
                    }
                    if let (Some((v, eligible)), false) = (victim, idle.is_empty()) {
                        // Split the whole eligible tail into contiguous
                        // position ranges, one per idle slot.
                        let n = idle.len().min(eligible.len());
                        let per = eligible.len() / n;
                        let extra = eligible.len() % n;
                        let mut start = 0usize;
                        for (k, &slot) in idle.iter().take(n).enumerate() {
                            let take = per + usize::from(k < extra);
                            let chunk = &eligible[start..start + take];
                            start += take;
                            let seq = steals.len();
                            let spec = StealSpec {
                                victim: v,
                                from_pos: chunk[0],
                                until_pos: chunk[chunk.len() - 1] + 1,
                                seq,
                            };
                            let ledger = steal_ledger_path(out, seq);
                            let _ = std::fs::remove_file(&ledger);
                            let unit_ids: Vec<UnitId> = shards[v]
                                .units
                                .iter()
                                .filter(|u| u.pos >= spec.from_pos && u.pos < spec.until_pos)
                                .map(|u| u.id)
                                .collect();
                            eprintln!(
                                "[fleet] steal {seq}: re-dealing {} unit(s) of shard {v} \
                                 (pos {}..{}) to slot {slot}",
                                unit_ids.len(),
                                spec.from_pos,
                                spec.until_pos
                            );
                            let lspec = LaunchSpec {
                                index: slot,
                                procs,
                                ledger: ledger.clone(),
                                resume: false,
                                attempt: 0,
                                steal: Some(spec),
                            };
                            // Steals are opportunistic: a failed steal
                            // launch is a warning, never a failed fleet.
                            match transport.launch(&lspec) {
                                Ok(handle) => {
                                    let units = unit_ids.len();
                                    steals.push(StealRec {
                                        spec,
                                        slot,
                                        ledger,
                                        tailer: ProgressTailer::new(units),
                                        unit_ids,
                                        finalized: false,
                                        dead: false,
                                    });
                                    outcomes[v].tails_stolen += 1;
                                    running.push(Running {
                                        steal: Some(seq),
                                        slot,
                                        handle,
                                        exited: false,
                                        reaped: false,
                                        last_change: Instant::now(),
                                        killed: false,
                                    });
                                }
                                Err(e) => {
                                    eprintln!("[fleet] warning: steal {seq} failed to launch: {e}");
                                }
                            }
                        }
                    }
                }
                // Fleet-level progress: the floor only rises (sets only
                // grow, and the max-clamp absorbs any tailer rewind).
                let shard_done: Vec<usize> = (0..procs)
                    .map(|i| count_covered(&ids[i], &covered[i]))
                    .collect();
                let done_now: usize = shard_done.iter().sum();
                if done_now > fleet_done_floor {
                    fleet_done_floor = done_now;
                    if opts.progress {
                        eprintln!(
                            "[fleet] progress: {fleet_done_floor}/{} units",
                            manifest.len()
                        );
                    }
                }
                if let Some(sf) = &opts.status_file {
                    let _ = atomic_write(
                        sf,
                        render_status(&StatusInput {
                            fingerprint: manifest.fingerprint,
                            elapsed_ms: started.elapsed().as_millis(),
                            units_total: manifest.len(),
                            units_done: fleet_done_floor,
                            launches,
                            steal_launches: steals.len(),
                            deferred: defers.iter().filter(|d| **d > 0).count(),
                            complete: false,
                            shards: &outcomes,
                            shard_done: &shard_done,
                            steals: &steals,
                        })
                        .as_bytes(),
                    );
                }
                probe_fetch_bytes.push(tick_bytes);
            }
            std::thread::sleep(opts.poll_interval);
        }
        // Round epilogue: report final per-shard counts, so even a run
        // faster than the probe interval prints a final line.
        if opts.progress {
            for r in &running {
                match r.steal {
                    None => eprintln!(
                        "[fleet] shard {}: {}/{} units",
                        r.slot,
                        tailers[r.slot].count(),
                        tailers[r.slot].total()
                    ),
                    Some(si) => eprintln!(
                        "[fleet] steal {}: {}/{} units (shard {} tail on slot {})",
                        steals[si].spec.seq,
                        steals[si].tailer.count(),
                        steals[si].tailer.total(),
                        steals[si].spec.victim,
                        r.slot
                    ),
                }
            }
        }
    }

    // Copy back the mergeable `--agg` summaries. Best-effort: a shard
    // whose ledger predates this fleet may have none, and the CLI
    // rebuilds stale/missing summaries from the (fetched) ledger.
    if opts.fetch_summaries {
        for i in 0..procs {
            match transport.fetch(i, Artifact::Summary, &shard_summary_path(out, i)) {
                Ok(_) => {}
                Err(e) if opts.verbose => {
                    eprintln!("[fleet] shard {i}: summary copy-back failed ({e}); will rebuild")
                }
                Err(_) => {}
            }
        }
    }

    // Stream-merge the shard ledgers and every valid steal ledger into
    // the canonical output, then prove coverage. Inclusion rule matches
    // the completeness check exactly: a ledger merges iff it strict-reads
    // with this run's fingerprint (a dead steal's partial ledger still
    // contributes the units it did finish).
    let mut inputs: Vec<PathBuf> = paths
        .iter()
        .filter(|p| match read_ledger(p) {
            Ok(l) => l.fingerprint == manifest.fingerprint && !l.done.is_empty(),
            Err(_) => false,
        })
        .cloned()
        .collect();
    inputs.extend(
        steals
            .iter()
            .filter(|r| match read_ledger(&r.ledger) {
                Ok(l) => l.fingerprint == manifest.fingerprint && !l.done.is_empty(),
                Err(_) => false,
            })
            .map(|r| r.ledger.clone()),
    );
    let mut writer = std::io::BufWriter::new(std::fs::File::create(out)?);
    merge_jsonl(&inputs, &mut writer)?;
    writer.flush()?;
    let merged = read_ledger(out)?;
    if merged.fingerprint != manifest.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "merged fleet output carries the wrong fingerprint",
        ));
    }
    let missing: Vec<String> = manifest
        .units
        .iter()
        .filter(|u| !merged.done.contains(&u.id))
        .map(|u| u.id.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "merged fleet output is missing {} unit(s): {}",
                missing.len(),
                missing.join(", ")
            ),
        ));
    }
    // Paranoia: the merge must not have invented units either.
    let known: HashSet<_> = manifest.units.iter().map(|u| u.id).collect();
    if merged.done.iter().any(|id| !known.contains(id)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "merged fleet output contains units outside the manifest",
        ));
    }
    // Only now, with the merged output verified on disk, may the
    // transport drop its remote scratch space. Failure to clean up is a
    // warning, not a failed fleet.
    for i in 0..procs {
        if let Err(e) = transport.cleanup(i) {
            eprintln!("[fleet] warning: cleanup of shard {i} failed: {e}");
        }
    }
    for r in &steals {
        if let Err(e) = transport.cleanup_steal(r.spec.seq, r.slot) {
            eprintln!(
                "[fleet] warning: cleanup of steal {} failed: {e}",
                r.spec.seq
            );
        }
    }
    // Final status snapshot: complete, with the full unit count.
    if let Some(sf) = &opts.status_file {
        let shard_done: Vec<usize> = outcomes.iter().map(|o| o.units).collect();
        let _ = atomic_write(
            sf,
            render_status(&StatusInput {
                fingerprint: manifest.fingerprint,
                elapsed_ms: started.elapsed().as_millis(),
                units_total: manifest.len(),
                units_done: manifest.len(),
                launches,
                steal_launches: steals.len(),
                deferred: 0,
                complete: true,
                shards: &outcomes,
                shard_done: &shard_done,
                steals: &steals,
            })
            .as_bytes(),
        );
    }
    Ok(FleetReport {
        shards: outcomes,
        merged_units: manifest.len(),
        launches,
        steal_launches: steals.len(),
        steals: steals
            .iter()
            .map(|r| StealEvent {
                seq: r.spec.seq,
                victim: r.spec.victim,
                slot: r.slot,
                from_pos: r.spec.from_pos,
                until_pos: r.spec.until_pos,
                units: r.unit_ids.len(),
            })
            .collect(),
        fetch_full_bytes,
        fetch_ranged_bytes,
        probe_fetch_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, WorkloadSpec};
    use dpbench_core::{Domain, Loss};
    use dpbench_datasets::catalog;
    use std::process::Child;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            datasets: vec![catalog::by_name("MEDCOST").unwrap()],
            scales: vec![10_000],
            domains: vec![Domain::D1(128)],
            epsilons: vec![0.5],
            algorithms: vec!["IDENTITY".into(), "UNIFORM".into()],
            n_samples: 1,
            n_trials: 2,
            workload: WorkloadSpec::Prefix,
            loss: Loss::L2,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpbench-fleet-mod-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn shard_ledger_paths_keep_the_jsonl_suffix() {
        let out = PathBuf::from("/tmp/results/fleet.jsonl");
        assert_eq!(
            shard_ledger_path(&out, 0),
            PathBuf::from("/tmp/results/fleet.shard0.jsonl")
        );
        assert_eq!(
            shard_ledger_path(Path::new("run"), 3),
            PathBuf::from("run.shard3.jsonl")
        );
        assert_eq!(
            steal_ledger_path(&out, 4),
            PathBuf::from("/tmp/results/fleet.steal4.jsonl")
        );
    }

    #[test]
    fn status_json_is_one_line_and_parses_structurally() {
        let outcomes = vec![ShardOutcome {
            index: 0,
            ledger: PathBuf::from("x.shard0.jsonl"),
            attempts: 1,
            resumed: false,
            units: 4,
            stall_kills: 0,
            tails_stolen: 0,
        }];
        let s = render_status(&StatusInput {
            fingerprint: 0xabcd,
            elapsed_ms: 12,
            units_total: 4,
            units_done: 2,
            launches: 1,
            steal_launches: 0,
            deferred: 0,
            complete: false,
            shards: &outcomes,
            shard_done: &[2],
            steals: &[],
        });
        assert!(s.ends_with('\n'));
        assert_eq!(s.trim_end().lines().count(), 1);
        assert!(s.contains("\"t\":\"fleet-status\""));
        assert!(s.contains("\"fp\":\"000000000000abcd\""));
        assert!(s.contains("\"units_done\":2"));
        assert!(s.contains("\"shards\":[{\"index\":0,\"units\":4,\"done\":2"));
        assert!(s.contains("\"steals\":[]"));
    }

    /// A launcher that never spawns anything — exercises the driver's
    /// completeness handling around pre-built ledgers.
    struct NoopLauncher;

    impl ShardLauncher for NoopLauncher {
        fn launch(&self, _spec: &LaunchSpec) -> io::Result<Child> {
            // A no-op child: `true` exits 0 immediately without touching
            // the ledger, modeling a worker that dies before any unit.
            std::process::Command::new("true").spawn()
        }
    }

    #[test]
    fn fleet_over_prebuilt_ledgers_merges_without_launching() {
        use crate::runner::Runner;
        use crate::sink::JsonlSink;
        let out = tmp("prebuilt.jsonl");
        let manifest = Runner::new(tiny_config()).manifest();
        for i in 0..2 {
            let path = shard_ledger_path(&out, i);
            let _ = std::fs::remove_file(&path);
            let runner = Runner::new(tiny_config());
            let mut sink = JsonlSink::create(&path).unwrap();
            runner
                .run_with_sink(&manifest.shard(i, 2), &mut sink)
                .unwrap();
        }
        let opts = FleetOptions {
            procs: 2,
            max_attempts: 1,
            ..FleetOptions::default()
        };
        let report = run_fleet(&manifest, &NoopLauncher, &out, &opts).unwrap();
        assert_eq!(report.launches, 0, "complete shards must not relaunch");
        assert_eq!(report.merged_units, manifest.len());
        assert_eq!(report.steal_launches, 0);
        assert!(report.shards.iter().all(|s| s.attempts == 0));
        // Merged output equals a one-shot run byte for byte.
        let ref_path = tmp("prebuilt-ref.jsonl");
        let _ = std::fs::remove_file(&ref_path);
        let runner = Runner::new(tiny_config());
        let mut reference = JsonlSink::create(&ref_path).unwrap();
        runner.run_with_sink(&manifest, &mut reference).unwrap();
        drop(reference);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&ref_path).unwrap()
        );
        for p in [&out, &ref_path] {
            let _ = std::fs::remove_file(p);
        }
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_ledger_path(&out, i));
        }
    }

    #[test]
    fn fleet_reports_a_shard_that_never_completes() {
        let out = tmp("stuck.jsonl");
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_ledger_path(&out, i));
        }
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let opts = FleetOptions {
            procs: 2,
            max_attempts: 2,
            ..FleetOptions::default()
        };
        let err = run_fleet(&manifest, &NoopLauncher, &out, &opts).unwrap_err();
        assert!(
            err.to_string()
                .contains("did not complete after 2 attempt(s)"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn torn_header_only_ledger_counts_as_fresh_not_corrupt() {
        use std::io::Write;
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let shard = manifest.shard(0, 2);
        // A child killed during its very first write: the file holds
        // only a torn header fragment. The fleet must relaunch fresh.
        let path = tmp("torn-header.jsonl");
        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "{{\"t\":\"run\",\"fp\":\"5b51").unwrap();
        drop(f);
        assert!(matches!(
            shard_state(&path, &shard).unwrap(),
            ShardState::Fresh
        ));
        // But a ledger with real content and a damaged header stays a
        // hard error — that is corruption, not a clean first-write kill.
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "NOT A HEADER").unwrap();
        writeln!(
            f,
            "{{\"t\":\"u\",\"unit\":\"{}\",\"pos\":{}}}",
            shard.units[0].id, shard.units[0].pos
        )
        .unwrap();
        drop(f);
        assert!(shard_state(&path, &shard).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fleet_refuses_a_foreign_shard_ledger() {
        use crate::runner::Runner;
        use crate::sink::JsonlSink;
        let out = tmp("foreign.jsonl");
        let shard0 = shard_ledger_path(&out, 0);
        let _ = std::fs::remove_file(&shard0);
        // Shard 0's path holds a ledger from a *different* grid.
        let mut other = tiny_config();
        other.epsilons = vec![0.9];
        let other_runner = Runner::new(other);
        let mut sink = JsonlSink::create(&shard0).unwrap();
        other_runner
            .run_with_sink(&other_runner.manifest(), &mut sink)
            .unwrap();
        drop(sink);
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let err = run_fleet(&manifest, &NoopLauncher, &out, &FleetOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("different run"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_file(&shard0);
    }
}
