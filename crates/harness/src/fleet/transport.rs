//! Pluggable shard transports: how the fleet driver starts shard
//! workers, watches them, and gets their artifacts back.
//!
//! PR 4's fleet hard-coded "k local child processes writing directly to
//! the merged output's directory". The [`ShardTransport`] trait factors
//! that into the four operations the driver actually needs —
//!
//! 1. **launch** one shard attempt ([`ShardTransport::launch`]), getting
//!    back a pollable [`ShardHandle`];
//! 2. **poll** the attempt ([`ShardHandle::poll`]) and **kill** it when
//!    the driver decides it has stalled;
//! 3. **fetch** the shard's artifacts — ledger and optional `--agg`
//!    summary — back to the driver's filesystem
//!    ([`ShardTransport::fetch`], the *copy-back* step);
//! 4. **cleanup** the shard's remote scratch space once the merged
//!    output has been verified ([`ShardTransport::cleanup`]).
//!
//! Three implementations:
//!
//! * [`LocalTransport`] — the PR 4 behavior: adapt any [`ShardLauncher`]
//!   (which spawns a local child writing the ledger in place), so fetch
//!   is a no-op ([`FetchOutcome::InPlace`]).
//! * [`CommandTransport`] — template an arbitrary wrapper command line
//!   around the shard command (`{cmd}`), so `ssh host {cmd}`,
//!   `docker run -v … img {cmd}`, and `sh -c "{cmd}"` all work without
//!   the driver knowing any of them. Shards write into a per-shard
//!   workdir; copy-back is a plain file copy by default or a `--fetch-cmd`
//!   template (`scp host:{src} {dest}`) for genuinely remote workdirs.
//! * [`FaultyTransport`] — **test-only**: runs shards in-process and
//!   injects crashes, hangs, torn copy-backs, empty artifacts, and stale
//!   ledgers deterministically, so `tests/fleet_faults.rs` can prove the
//!   driver survives every remote failure mode without real machines.
//!
//! The driver treats exit status as advisory and the (fetched) ledger as
//! truth, so a transport does not need reliable status reporting — a
//! `ssh` that dies after the remote shard finished is indistinguishable
//! from a clean run once the ledger is fetched.

use crate::config::ExperimentConfig;
use crate::runner::Runner;
use crate::sink::{read_ledger, JsonlSink, Throttle};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A stolen tail: re-deal `victim`'s units with full-run positions in
/// `from_pos..until_pos` to another (idle) slot as a fresh sub-shard
/// launch. The sub-shard manifest is
/// `manifest.shard(victim, procs).span(from_pos, until_pos)`, so the
/// re-dealt units keep their ids, positions, and per-trial RNG streams —
/// the steal ledger merges back bit-identically, and overlap with the
/// victim's own in-flight unit is harmless (the merge verifies duplicate
/// units agree bit-exactly and emits them once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealSpec {
    /// The straggler shard whose units are being re-dealt.
    pub victim: usize,
    /// First full-run position in the stolen range (inclusive).
    pub from_pos: usize,
    /// End of the stolen range (exclusive).
    pub until_pos: usize,
    /// Fleet-wide steal sequence number — names the steal's own ledger
    /// ([`Artifact::Steal`]), distinct from every shard ledger.
    pub seq: usize,
}

/// Everything a transport needs to start one shard attempt.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// The slot (machine / worker) this attempt runs on, in `0..procs`.
    /// For a primary attempt this is also the shard being run; for a
    /// steal it is the idle slot doing the stealing, and the work is
    /// described by `steal`.
    pub index: usize,
    /// Total shard count (`k` in `--shard i/k`).
    pub procs: usize,
    /// The driver-side ledger path for this attempt. Local transports
    /// write it directly; remote transports write into their own workdir
    /// and copy back to this path on [`ShardTransport::fetch`].
    pub ledger: PathBuf,
    /// True when a prior ledger holds completed units to skip. Always
    /// false for steals (each steal gets a fresh ledger).
    pub resume: bool,
    /// Per-shard launch attempt, counted from 0 (0 for steals).
    pub attempt: usize,
    /// `Some` when this launch is a stolen tail rather than a primary
    /// shard attempt.
    pub steal: Option<StealSpec>,
}

/// What a polled shard attempt is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Still running (or unreachable — the driver keeps polling until
    /// the stall timeout expires).
    Running,
    /// Exited. `success` mirrors the exit status but is advisory only:
    /// the fetched ledger decides whether the shard's work is complete.
    Exited {
        /// Exit-status success, advisory.
        success: bool,
    },
}

/// A launched shard attempt the driver can poll and kill.
pub trait ShardHandle {
    /// Non-blocking status check.
    fn poll(&mut self) -> io::Result<ShardStatus>;
    /// Terminate the attempt (used when the driver declares a stall).
    /// After a kill, `poll` must eventually report `Exited`.
    fn kill(&mut self) -> io::Result<()>;
}

/// Which shard artifact to copy back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// The JSONL result/resume ledger.
    Ledger,
    /// The mergeable `--agg` t-digest summary.
    Summary,
    /// The ledger of steal `seq` (a stolen tail's own fresh ledger,
    /// written by whichever slot ran the steal — the `index` argument of
    /// [`ShardTransport::fetch`] names that slot).
    Steal {
        /// Fleet-wide steal sequence number (see [`StealSpec::seq`]).
        seq: usize,
    },
}

/// Result of a copy-back attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// The artifact is produced at the destination path directly (local
    /// transports); nothing was copied.
    InPlace,
    /// The artifact was copied to the destination.
    Copied,
    /// The shard has not produced this artifact (yet) — the destination
    /// was left untouched.
    Missing,
}

/// Result of an incremental (offset-based) copy-back attempt — the
/// O(new-bytes) alternative to re-copying a whole ledger every probe.
///
/// The caller passes `from`, the byte offset of its validated
/// complete-line prefix (see [`crate::fleet::ProgressTailer::offset`]);
/// a supporting transport delivers only the remote bytes past that
/// offset. Correctness rests on the append-only ledger discipline plus
/// fresh-relaunch byte determinism: a shard either appends to the exact
/// byte stream it was writing, or restarts it from byte 0 — in which
/// case the remote file is *shorter* than (or diverges only beyond) any
/// previously validated prefix, and the transport reports
/// [`RangedFetch::Rewound`] after falling back to a full copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangedFetch {
    /// This transport (or this template) cannot range; the caller must
    /// use [`ShardTransport::fetch`] instead. The destination was left
    /// untouched.
    Unsupported,
    /// `bytes` new bytes were appended to the destination after
    /// truncating it to `from` (discarding any torn tail past the
    /// validated prefix).
    Appended {
        /// Bytes transferred (the new tail only).
        bytes: u64,
    },
    /// The remote artifact was shorter than `from` (fresh relaunch) or
    /// the local copy was behind it; the destination was replaced by a
    /// full copy of `bytes` bytes.
    Rewound {
        /// Bytes transferred (the whole artifact).
        bytes: u64,
    },
    /// The remote artifact has exactly `from` bytes — nothing new. The
    /// destination was truncated to `from` (dropping any torn tail).
    Unchanged,
    /// Confirmed absence of the remote artifact (same contract as
    /// [`FetchOutcome::Missing`]); the destination was left untouched.
    Missing,
}

/// How the fleet driver reaches its shards. Implementations decide the
/// machinery (child process, ssh, container, in-process test double);
/// the driver decides *when* to launch, resume, kill, fetch, and merge.
pub trait ShardTransport {
    /// Start one shard attempt.
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>>;

    /// Copy one artifact of shard `index` back to `dest` (the copy-back
    /// step). Called repeatedly — between rounds, after exits, and
    /// periodically for progress tailing — so implementations must
    /// tolerate a still-running shard (a torn or partial copy is fine:
    /// the driver validates with the strict ledger readers and
    /// re-fetches or re-dispatches).
    ///
    /// Outcome contract: [`FetchOutcome::Missing`] asserts **confirmed
    /// absence** of the remote artifact (and leaves `dest` alone) — the
    /// driver takes it as license to restart a partially-fetched shard
    /// fresh. A fetch that merely *failed* (unreachable host, transport
    /// error) must be an `Err` instead: the driver defers the shard and
    /// retries the fetch next round rather than discarding remote work.
    fn fetch(&self, index: usize, artifact: Artifact, dest: &Path) -> io::Result<FetchOutcome>;

    /// Incremental copy-back: deliver only the remote bytes past `from`
    /// (the caller's validated complete-line prefix). The default —
    /// correct for every transport — reports
    /// [`RangedFetch::Unsupported`], making the caller fall back to a
    /// full [`ShardTransport::fetch`]. Error semantics match `fetch`:
    /// `Missing` is confirmed absence, an `Err` is "try again".
    fn fetch_ranged(
        &self,
        index: usize,
        artifact: Artifact,
        dest: &Path,
        from: u64,
    ) -> io::Result<RangedFetch> {
        let _ = (index, artifact, dest, from);
        Ok(RangedFetch::Unsupported)
    }

    /// Remove shard `index`'s remote scratch space. Called only after
    /// the merged output has been verified; local transports no-op.
    fn cleanup(&self, index: usize) -> io::Result<()> {
        let _ = index;
        Ok(())
    }

    /// Remove steal `seq`'s remote scratch space (it ran on slot
    /// `slot`). Called only after the merged output has been verified;
    /// local transports no-op.
    fn cleanup_steal(&self, seq: usize, slot: usize) -> io::Result<()> {
        let _ = (seq, slot);
        Ok(())
    }
}

/// Shared native (filesystem-reachable) implementation of the ranged
/// fetch contract: used by [`CommandTransport`] when no fetch template
/// is configured, and by [`FaultyTransport`] when ranging is enabled.
fn ranged_copy(src: &Path, dest: &Path, from: u64) -> io::Result<RangedFetch> {
    use std::io::{Read, Seek, SeekFrom};
    let src_len = match std::fs::metadata(src) {
        Ok(m) => m.len(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(RangedFetch::Missing),
        Err(e) => return Err(e),
    };
    let dest_len = std::fs::metadata(dest).map(|m| m.len()).unwrap_or(0);
    if dest_len < from || src_len < from {
        // Local copy is behind the claimed prefix, or the remote shard
        // restarted its stream: splicing would corrupt — full copy.
        let bytes = std::fs::copy(src, dest)?;
        return Ok(RangedFetch::Rewound { bytes });
    }
    // Drop any torn tail past the validated prefix, then splice the new
    // remote bytes after it. The remote file may keep growing while we
    // read — reading to EOF just delivers a longer (possibly torn) tail,
    // which the caller's line-oriented probes already tolerate.
    let trunc = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false) // set_len(from) below keeps the validated prefix
        .open(dest)?;
    trunc.set_len(from)?;
    drop(trunc);
    if src_len == from {
        return Ok(RangedFetch::Unchanged);
    }
    let mut input = std::fs::File::open(src)?;
    input.seek(SeekFrom::Start(from))?;
    let mut output = std::fs::OpenOptions::new().append(true).open(dest)?;
    let mut buf = [0u8; 64 * 1024];
    let mut bytes = 0u64;
    loop {
        let n = input.read(&mut buf)?;
        if n == 0 {
            break;
        }
        output.write_all(&buf[..n])?;
        bytes += n as u64;
    }
    output.flush()?;
    Ok(RangedFetch::Appended { bytes })
}

// ---------------------------------------------------------------------------
// Local processes (the PR 4 path)
// ---------------------------------------------------------------------------

/// Spawns one shard process. Implementations decide the command line;
/// the driver decides *when* to launch, whether to pass resume, and what
/// to do with the exit status. This is the PR 4 trait, kept as the
/// simplest way to plug a local child process into [`LocalTransport`].
pub trait ShardLauncher {
    /// Launch one attempt described by `spec` — a primary shard when
    /// `spec.steal` is `None`, a stolen tail otherwise — writing its
    /// ledger to `spec.ledger`.
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Child>;
}

/// A [`Child`] process as a pollable shard handle.
pub struct ProcessHandle {
    child: Child,
    /// Cached terminal status once observed (a `Child` can only be
    /// waited once).
    exited: Option<bool>,
}

impl ProcessHandle {
    /// Wrap a spawned child.
    pub fn new(child: Child) -> Self {
        Self {
            child,
            exited: None,
        }
    }
}

impl ShardHandle for ProcessHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        if let Some(success) = self.exited {
            return Ok(ShardStatus::Exited { success });
        }
        match self.child.try_wait()? {
            Some(status) => {
                self.exited = Some(status.success());
                Ok(ShardStatus::Exited {
                    success: status.success(),
                })
            }
            None => Ok(ShardStatus::Running),
        }
    }

    fn kill(&mut self) -> io::Result<()> {
        if self.exited.is_some() {
            return Ok(());
        }
        // An already-dead child returns InvalidInput from kill; that is
        // a race we want, not an error.
        match self.child.kill() {
            Ok(()) | Err(_) => {}
        }
        let status = self.child.wait()?;
        self.exited = Some(status.success());
        Ok(())
    }
}

/// Adapt a [`ShardLauncher`] (local child processes writing ledgers in
/// place) to the transport interface: fetch is a no-op, cleanup is a
/// no-op, and the shard ledgers double as the fleet's crash record.
pub struct LocalTransport<'a> {
    /// The command constructor.
    pub launcher: &'a dyn ShardLauncher,
}

impl ShardTransport for LocalTransport<'_> {
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>> {
        let child = self.launcher.launch(spec)?;
        Ok(Box::new(ProcessHandle::new(child)))
    }

    fn fetch(&self, _index: usize, _artifact: Artifact, _dest: &Path) -> io::Result<FetchOutcome> {
        Ok(FetchOutcome::InPlace)
    }
}

// ---------------------------------------------------------------------------
// Command-template transport (ssh / docker / sh -c without knowing any)
// ---------------------------------------------------------------------------

/// The per-shard remote paths a [`CommandTransport`] shard writes to.
#[derive(Debug, Clone)]
pub struct RemotePaths {
    /// The shard's scratch directory (`<workdir>/shard<i>`).
    pub dir: PathBuf,
    /// Remote ledger path (`<dir>/ledger.jsonl`).
    pub ledger: PathBuf,
    /// Remote `--agg` summary path (`<dir>/ledger.agg.jsonl`).
    pub summary: PathBuf,
}

/// Builds the shard command argv (program first) for one attempt, given
/// the remote paths the shard must write to. The CLI supplies this so
/// the transport stays ignorant of `dpbench run`'s flag set.
pub type ShardCommandBuilder = Box<dyn Fn(&LaunchSpec, &RemotePaths) -> Vec<String>>;

/// Launch shards through an arbitrary wrapper command line. The launch
/// template must contain `{cmd}`, which is replaced by the shell-quoted
/// shard command; `{index}`, `{procs}`, and `{workdir}` are also
/// substituted. The whole substituted line runs under `sh -c`, so
///
/// * `{cmd}` — plain local execution through a shell,
/// * `sh -c "{cmd}"` — an explicit wrapper (what CI's remote-smoke uses),
/// * `ssh worker{index} {cmd}` — one machine per shard,
/// * `docker run --rm -v /scratch:/scratch dpbench {cmd}` — containers,
///
/// all work without the driver knowing which. Path substitutions
/// (`{workdir}`, and `{src}`/`{dest}` in the fetch template) are
/// shell-quoted when they need it, so templates behave with paths
/// containing spaces or metacharacters. Each shard writes into its
/// own workdir (`<workdir>/shard<i>/`); copy-back is a plain file copy
/// by default (correct whenever the workdir is reachable locally — same
/// machine, shared filesystem, or a mounted volume) or a `fetch`
/// template like `scp worker{index}:{src} {dest}` for genuinely remote
/// filesystems.
pub struct CommandTransport {
    launch_template: String,
    fetch_template: Option<String>,
    cleanup_template: Option<String>,
    workdir: PathBuf,
    build_command: ShardCommandBuilder,
}

impl CommandTransport {
    /// New transport. Errors unless `launch_template` contains `{cmd}`.
    pub fn new(
        launch_template: impl Into<String>,
        workdir: impl Into<PathBuf>,
        build_command: ShardCommandBuilder,
    ) -> io::Result<Self> {
        let launch_template = launch_template.into();
        if !launch_template.contains("{cmd}") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("launch template {launch_template:?} does not contain {{cmd}}"),
            ));
        }
        Ok(Self {
            launch_template,
            fetch_template: None,
            cleanup_template: None,
            workdir: workdir.into(),
            build_command,
        })
    }

    /// Use a command template (`{src}`, `{dest}`, `{index}`, `{workdir}`)
    /// for copy-back instead of a plain file copy.
    pub fn with_fetch_template(mut self, template: impl Into<String>) -> Self {
        self.fetch_template = Some(template.into());
        self
    }

    /// Use a command template (`{index}`, `{workdir}`) for cleanup
    /// instead of removing the shard workdir locally.
    pub fn with_cleanup_template(mut self, template: impl Into<String>) -> Self {
        self.cleanup_template = Some(template.into());
        self
    }

    /// The remote paths shard `index` writes to.
    pub fn remote_paths(&self, index: usize) -> RemotePaths {
        let dir = self.workdir.join(format!("shard{index}"));
        RemotePaths {
            ledger: dir.join("ledger.jsonl"),
            summary: dir.join("ledger.agg.jsonl"),
            dir,
        }
    }

    /// The remote paths steal `seq` writes to. Steals get their own
    /// scratch directory (not the victim's, not the stealing slot's):
    /// the slot's primary shard may still be fetched from its own dir,
    /// and two steals must never collide.
    pub fn remote_steal_paths(&self, seq: usize) -> RemotePaths {
        let dir = self.workdir.join(format!("steal{seq}"));
        RemotePaths {
            ledger: dir.join("ledger.jsonl"),
            summary: dir.join("ledger.agg.jsonl"),
            dir,
        }
    }

    fn remote_paths_for(&self, spec: &LaunchSpec) -> RemotePaths {
        match &spec.steal {
            Some(st) => self.remote_steal_paths(st.seq),
            None => self.remote_paths(spec.index),
        }
    }

    fn substitute(&self, template: &str, spec: &[(&str, String)]) -> String {
        let mut out = template.to_string();
        for (key, value) in spec {
            out = out.replace(&format!("{{{key}}}"), value);
        }
        out
    }

    fn run_shell(&self, line: &str, stderr: Stdio) -> io::Result<Child> {
        Command::new("sh")
            .arg("-c")
            .arg(line)
            .stdout(Stdio::null())
            .stderr(stderr)
            .spawn()
    }
}

/// Quote one argument for POSIX `sh`. Plain words pass through; anything
/// else — including `*`, which is a legal dpbench identifier character
/// (`MWEM*`) but a glob the shell would expand against the remote cwd —
/// is single-quoted with embedded quotes escaped.
pub fn sh_quote(arg: &str) -> String {
    let plain = !arg.is_empty()
        && arg
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"_-./:=,@%+".contains(&b));
    if plain {
        arg.to_string()
    } else {
        format!("'{}'", arg.replace('\'', "'\\''"))
    }
}

impl ShardTransport for CommandTransport {
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>> {
        let paths = self.remote_paths_for(spec);
        // Harmless when the workdir is genuinely remote (the path simply
        // also exists locally); required for the local-wrapper cases.
        std::fs::create_dir_all(&paths.dir)?;
        let argv = (self.build_command)(spec, &paths);
        let cmd = argv
            .iter()
            .map(|a| sh_quote(a))
            .collect::<Vec<_>>()
            .join(" ");
        // Path substitutions are shell-quoted (plain paths pass through
        // unchanged): an unquoted path with a space or metacharacter
        // would word-split inside the sh -c line. {cmd} is already
        // quoted per-argument; {index}/{procs} are numeric.
        let line = self.substitute(
            &self.launch_template,
            &[
                ("cmd", cmd),
                ("index", spec.index.to_string()),
                ("procs", spec.procs.to_string()),
                ("workdir", sh_quote(&paths.dir.display().to_string())),
            ],
        );
        // Tee the wrapper's stderr next to the local ledger, like the
        // local launcher does, so k shards don't interleave on the
        // driver's terminal and the attempt history is preserved.
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(spec.ledger.with_extension("log"))?;
        let child = self.run_shell(&line, Stdio::from(log))?;
        Ok(Box::new(ProcessHandle::new(child)))
    }

    fn fetch(&self, index: usize, artifact: Artifact, dest: &Path) -> io::Result<FetchOutcome> {
        let paths = match artifact {
            Artifact::Steal { seq } => self.remote_steal_paths(seq),
            _ => self.remote_paths(index),
        };
        let src = match artifact {
            Artifact::Ledger | Artifact::Steal { .. } => paths.ledger,
            Artifact::Summary => paths.summary,
        };
        match &self.fetch_template {
            Some(template) => {
                // The command writes to a scratch path, not to `dest`
                // directly: whether a file materialized *this time* is
                // what distinguishes Copied from Missing. Deciding via
                // `dest.exists()` would report stale bytes from an
                // earlier fetch as Copied, and a failed command must
                // leave the previous good copy untouched.
                let scratch = dest.with_file_name(format!(
                    "{}.fetch.tmp",
                    dest.file_name()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default()
                ));
                let _ = std::fs::remove_file(&scratch);
                // A ranged-capable template ({offset}) doubles as the
                // full-fetch command with offset 0.
                let line = self.substitute(
                    template,
                    &[
                        ("src", sh_quote(&src.display().to_string())),
                        ("dest", sh_quote(&scratch.display().to_string())),
                        ("index", index.to_string()),
                        ("offset", "0".to_string()),
                        ("workdir", sh_quote(&paths.dir.display().to_string())),
                    ],
                );
                // Outcome semantics matter here: `Missing` is a claim of
                // *confirmed absence* (the driver restarts a Partial
                // shard fresh on it), while a failed fetch command could
                // just as well be transient unreachability — reporting
                // that as Missing would discard a remote shard's
                // completed work over a network blip. So: command ran
                // and produced nothing → Missing; command failed → an
                // error the driver treats as "try again next round".
                let status = self.run_shell(&line, Stdio::null())?.wait()?;
                if !status.success() {
                    let _ = std::fs::remove_file(&scratch);
                    return Err(io::Error::other(format!(
                        "fetch command for shard {index} exited with {status}: {line}"
                    )));
                }
                if scratch.exists() {
                    std::fs::rename(&scratch, dest)?;
                    Ok(FetchOutcome::Copied)
                } else {
                    Ok(FetchOutcome::Missing)
                }
            }
            None => match std::fs::copy(&src, dest) {
                Ok(_) => Ok(FetchOutcome::Copied),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(FetchOutcome::Missing),
                Err(e) => Err(e),
            },
        }
    }

    fn fetch_ranged(
        &self,
        index: usize,
        artifact: Artifact,
        dest: &Path,
        from: u64,
    ) -> io::Result<RangedFetch> {
        let paths = match artifact {
            Artifact::Steal { seq } => self.remote_steal_paths(seq),
            _ => self.remote_paths(index),
        };
        let src = match artifact {
            Artifact::Ledger | Artifact::Steal { .. } => paths.ledger,
            Artifact::Summary => paths.summary,
        };
        match &self.fetch_template {
            // No template: the workdir is filesystem-reachable, so range
            // natively with seek + append.
            None => ranged_copy(&src, dest, from),
            // A template can range only if it takes the offset; plain
            // `scp {src} {dest}` templates fall back to full fetches.
            Some(template) if !template.contains("{offset}") => Ok(RangedFetch::Unsupported),
            Some(template) => {
                if std::fs::metadata(dest).map(|m| m.len()).unwrap_or(0) < from {
                    // The local copy does not hold the claimed prefix;
                    // splicing a remote tail after it would corrupt.
                    return Ok(RangedFetch::Unsupported);
                }
                let scratch = dest.with_file_name(format!(
                    "{}.fetch.tmp",
                    dest.file_name()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default()
                ));
                let _ = std::fs::remove_file(&scratch);
                let line = self.substitute(
                    template,
                    &[
                        ("src", sh_quote(&src.display().to_string())),
                        ("dest", sh_quote(&scratch.display().to_string())),
                        ("index", index.to_string()),
                        ("offset", from.to_string()),
                        ("workdir", sh_quote(&paths.dir.display().to_string())),
                    ],
                );
                // Same Missing-vs-Err split as the full fetch: command
                // ran and produced nothing → confirmed absence; command
                // failed → "try again next round".
                let status = self.run_shell(&line, Stdio::null())?.wait()?;
                if !status.success() {
                    let _ = std::fs::remove_file(&scratch);
                    return Err(io::Error::other(format!(
                        "ranged fetch command for shard {index} exited with {status}: {line}"
                    )));
                }
                if !scratch.exists() {
                    return Ok(RangedFetch::Missing);
                }
                let bytes = std::fs::metadata(&scratch)?.len();
                // Splice: drop any torn tail past the validated prefix,
                // then append the delivered range.
                let trunc = std::fs::OpenOptions::new()
                    .write(true)
                    .create(true)
                    .truncate(false) // set_len(from) keeps the validated prefix
                    .open(dest)?;
                trunc.set_len(from)?;
                drop(trunc);
                let mut input = std::fs::File::open(&scratch)?;
                let mut output = std::fs::OpenOptions::new().append(true).open(dest)?;
                io::copy(&mut input, &mut output)?;
                output.flush()?;
                let _ = std::fs::remove_file(&scratch);
                if bytes == 0 {
                    Ok(RangedFetch::Unchanged)
                } else {
                    Ok(RangedFetch::Appended { bytes })
                }
            }
        }
    }

    fn cleanup_steal(&self, seq: usize, slot: usize) -> io::Result<()> {
        let paths = self.remote_steal_paths(seq);
        match &self.cleanup_template {
            Some(template) => {
                // {index} names the slot the steal ran on, so templates
                // like `ssh worker{index} rm -rf {workdir}` reach the
                // right machine.
                let line = self.substitute(
                    template,
                    &[
                        ("index", slot.to_string()),
                        ("workdir", sh_quote(&paths.dir.display().to_string())),
                    ],
                );
                let status = self.run_shell(&line, Stdio::null())?.wait()?;
                if status.success() {
                    Ok(())
                } else {
                    Err(io::Error::other(format!(
                        "cleanup command for steal {seq} exited with {status}"
                    )))
                }
            }
            None => match std::fs::remove_dir_all(&paths.dir) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    fn cleanup(&self, index: usize) -> io::Result<()> {
        let paths = self.remote_paths(index);
        match &self.cleanup_template {
            Some(template) => {
                let line = self.substitute(
                    template,
                    &[
                        ("index", index.to_string()),
                        ("workdir", sh_quote(&paths.dir.display().to_string())),
                    ],
                );
                let status = self.run_shell(&line, Stdio::null())?.wait()?;
                if status.success() {
                    Ok(())
                } else {
                    Err(io::Error::other(format!(
                        "cleanup command for shard {index} exited with {status}"
                    )))
                }
            }
            None => match std::fs::remove_dir_all(&paths.dir) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection transport (test harness)
// ---------------------------------------------------------------------------

/// A launch-time fault, keyed by `(shard, attempt)`.
#[derive(Debug, Clone, Copy)]
pub enum LaunchFault {
    /// Complete `after_units` units, then die with a failing exit; with
    /// `torn_tail`, the crash additionally tears the remote ledger's
    /// final line mid-write.
    Crash {
        /// Units completed before the simulated crash.
        after_units: usize,
        /// Leave a torn (unparseable) trailing fragment in the ledger.
        torn_tail: bool,
    },
    /// Never make progress: the handle reports `Running` until the
    /// driver's stall timeout kills it.
    Hang,
    /// Do all the work, then report a failing exit status anyway — the
    /// "exit status is advisory, the ledger is truth" drill.
    LieAboutExit,
}

/// A copy-back fault, keyed by `(shard, nth ledger fetch that found a
/// remote artifact)`.
#[derive(Debug, Clone, Copy)]
pub enum FetchFault {
    /// Deliver only a prefix, dropping the last `drop_bytes` bytes (a
    /// torn copy).
    TornCopy {
        /// Bytes missing from the end of the delivered file.
        drop_bytes: u64,
    },
    /// Deliver a zero-byte artifact.
    EmptyArtifact,
    /// Deliver a ledger belonging to a different run (stale scratch
    /// space from an earlier fleet) — the driver must hard-error, never
    /// merge it.
    StaleLedger,
    /// The fetch fails outright (unreachable host / transport error):
    /// an `Err`, not a `Missing` claim. The driver must *defer* the
    /// shard — retry the fetch next round without burning one of its
    /// launch attempts, since the remote work may be fine.
    Unreachable,
}

/// **Test-only** transport that executes shards in-process (no child
/// processes, no machines) and injects failures deterministically: the
/// fault matrix in `tests/fleet_faults.rs` drives the driver through
/// every remote failure mode and asserts the merged output stays
/// byte-identical to a one-shot run in every survivable case.
///
/// The "remote" side is a local workdir: shard `i` writes
/// `<workdir>/shard<i>.jsonl`, and `fetch` copies it back — faithfully,
/// torn, empty, or stale, per the configured fault script.
pub struct FaultyTransport {
    config: ExperimentConfig,
    workdir: PathBuf,
    launch_faults: Mutex<HashMap<(usize, usize), LaunchFault>>,
    fetch_faults: Mutex<HashMap<(usize, usize), FetchFault>>,
    /// Ledger-fetch occurrence counter per shard (only fetches that
    /// found a remote artifact count, so fault scripts stay independent
    /// of how many early-round fetches saw nothing).
    fetch_seen: Mutex<HashMap<usize, usize>>,
    /// Shard indexes whose scratch space was cleaned up, in call order.
    cleanups: Mutex<Vec<usize>>,
    /// Per-unit delay by *slot* — a property of the (simulated) machine,
    /// so it applies to every launch on that slot: primary attempts and
    /// steals alike. Delayed launches run on a background thread (a
    /// synchronous slow launch would serialize the whole fleet), which
    /// is exactly what lets the driver observe them mid-flight and
    /// steal their tails.
    slow_slots: Mutex<HashMap<usize, Duration>>,
    /// When true, [`ShardTransport::fetch_ranged`] ranges natively
    /// (seek + append) instead of reporting `Unsupported`. The ranged
    /// path bypasses the fetch-fault script and its occurrence counters.
    ranged: bool,
}

impl FaultyTransport {
    /// New fault-free transport over `config`, with remote scratch space
    /// under `workdir` (created on demand).
    pub fn new(config: ExperimentConfig, workdir: impl Into<PathBuf>) -> Self {
        Self {
            config,
            workdir: workdir.into(),
            launch_faults: Mutex::new(HashMap::new()),
            fetch_faults: Mutex::new(HashMap::new()),
            fetch_seen: Mutex::new(HashMap::new()),
            cleanups: Mutex::new(Vec::new()),
            slow_slots: Mutex::new(HashMap::new()),
            ranged: false,
        }
    }

    /// Make every launch on `slot` (primary or steal) take `per_unit`
    /// per completed unit — the straggler simulator.
    pub fn slow_slot(self, slot: usize, per_unit: Duration) -> Self {
        self.slow_slots.lock().unwrap().insert(slot, per_unit);
        self
    }

    /// Enable native offset-based [`ShardTransport::fetch_ranged`].
    pub fn with_ranged(mut self) -> Self {
        self.ranged = true;
        self
    }

    /// Script a launch fault for `(shard, attempt)`.
    pub fn fail_launch(self, shard: usize, attempt: usize, fault: LaunchFault) -> Self {
        self.launch_faults
            .lock()
            .unwrap()
            .insert((shard, attempt), fault);
        self
    }

    /// Script a copy-back fault for the `occurrence`-th ledger fetch of
    /// `shard` that finds a remote artifact (0-based).
    pub fn fail_fetch(self, shard: usize, occurrence: usize, fault: FetchFault) -> Self {
        self.fetch_faults
            .lock()
            .unwrap()
            .insert((shard, occurrence), fault);
        self
    }

    /// Shard indexes cleaned up so far (call order).
    pub fn cleanups(&self) -> Vec<usize> {
        self.cleanups.lock().unwrap().clone()
    }

    fn remote_ledger(&self, index: usize) -> PathBuf {
        self.workdir.join(format!("shard{index}.jsonl"))
    }

    fn remote_steal_ledger(&self, seq: usize) -> PathBuf {
        self.workdir.join(format!("steal{seq}.jsonl"))
    }

    fn remote_ledger_for(&self, spec: &LaunchSpec) -> PathBuf {
        match &spec.steal {
            Some(st) => self.remote_steal_ledger(st.seq),
            None => self.remote_ledger(spec.index),
        }
    }
}

/// Execute one attempt in-process, honoring resume and the crash fault's
/// unit budget — the same observable behavior as `dpbench run --shard
/// i/k [--resume] [--fail-after N] [--from-pos/--until-pos]
/// [--unit-delay-ms]`. A free function (not a method) so slow-slot
/// launches can run it on a background thread with owned state.
fn execute_faulty_shard(
    config: &ExperimentConfig,
    spec: &LaunchSpec,
    remote: &Path,
    fault: Option<LaunchFault>,
    delay: Option<Duration>,
    cancel: Option<Arc<AtomicBool>>,
) -> io::Result<bool> {
    let mut runner = Runner::new(config.clone());
    runner.threads = 1;
    let mut crash = false;
    let mut torn_tail = false;
    match fault {
        Some(LaunchFault::Crash {
            after_units,
            torn_tail: torn,
        }) => {
            runner.max_units = Some(after_units);
            crash = true;
            torn_tail = torn;
        }
        Some(LaunchFault::LieAboutExit) => crash = true, // work done, exit lies
        Some(LaunchFault::Hang) => unreachable!("hangs never reach run_shard"),
        None => {}
    }
    let shard = match &spec.steal {
        Some(st) => runner
            .manifest()
            .shard(st.victim, spec.procs)
            .span(st.from_pos, st.until_pos),
        None => runner.manifest().shard(spec.index, spec.procs),
    };
    if spec.resume {
        // Mirror the real child: resume over an unreadable ledger is
        // a failed attempt, not silent data loss.
        let ledger = match read_ledger(remote) {
            Ok(l) => l,
            Err(_) => return Ok(false),
        };
        let mut sink = JsonlSink::append(remote)?;
        match delay {
            Some(d) => {
                let mut slow = Throttle::new(&mut sink, d);
                if let Some(flag) = cancel {
                    slow = slow.with_cancel(flag);
                }
                runner.resume(&shard, &ledger.done, &mut slow)?;
            }
            None => {
                runner.resume(&shard, &ledger.done, &mut sink)?;
            }
        }
    } else {
        let mut sink = JsonlSink::create(remote)?;
        match delay {
            Some(d) => {
                let mut slow = Throttle::new(&mut sink, d);
                if let Some(flag) = cancel {
                    slow = slow.with_cancel(flag);
                }
                runner.run_with_sink(&shard, &mut slow)?;
            }
            None => {
                runner.run_with_sink(&shard, &mut sink)?;
            }
        }
    }
    if torn_tail {
        // A kill mid-write: a fragment with no newline and no
        // closing brace. `JsonlSink::append` heals it on resume.
        let mut f = std::fs::OpenOptions::new().append(true).open(remote)?;
        write!(f, "{{\"t\":\"s\",\"unit\":\"00")?;
    }
    Ok(!crash)
}

/// Handle of an attempt that already finished (the faulty transport runs
/// shards synchronously inside `launch`).
struct CompletedHandle {
    success: bool,
}

impl ShardHandle for CompletedHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        Ok(ShardStatus::Exited {
            success: self.success,
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Handle of a hung attempt: `Running` until killed.
struct HangHandle {
    killed: bool,
}

impl ShardHandle for HangHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        Ok(if self.killed {
            ShardStatus::Exited { success: false }
        } else {
            ShardStatus::Running
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        self.killed = true;
        Ok(())
    }
}

/// Handle of a slow-slot attempt running on a background thread.
struct ThreadHandle {
    done: Arc<AtomicBool>,
    success: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
}

impl ShardHandle for ThreadHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        Ok(if self.done.load(Ordering::SeqCst) {
            ShardStatus::Exited {
                success: self.success.load(Ordering::SeqCst),
            }
        } else {
            ShardStatus::Running
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        // The throttle's cancel check notices within one sleep slice;
        // poll reports Exited once the thread winds down (the "after a
        // kill, poll must eventually report Exited" contract).
        self.kill.store(true, Ordering::SeqCst);
        Ok(())
    }
}

impl ShardTransport for FaultyTransport {
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>> {
        std::fs::create_dir_all(&self.workdir)?;
        // Launch faults script *primary* attempts; steals inherit only
        // the slot's speed (a machine property), never the victim's
        // scripted faults.
        let fault = if spec.steal.is_none() {
            self.launch_faults
                .lock()
                .unwrap()
                .get(&(spec.index, spec.attempt))
                .copied()
        } else {
            None
        };
        if matches!(fault, Some(LaunchFault::Hang)) {
            return Ok(Box::new(HangHandle { killed: false }));
        }
        let remote = self.remote_ledger_for(spec);
        let delay = self.slow_slots.lock().unwrap().get(&spec.index).copied();
        if delay.is_none() && spec.steal.is_none() {
            // Fast primary launches run synchronously inside launch — the
            // original behavior every pre-existing fault drill relies on
            // (the driver never observes them mid-flight, so no steals).
            let success = execute_faulty_shard(&self.config, spec, &remote, fault, None, None)?;
            return Ok(Box::new(CompletedHandle { success }));
        }
        // Slow slots — and every steal, even on a fast slot — run on a
        // background thread so the driver's probe loop sees them
        // mid-flight (synchronous steals would serialize inside one
        // probe tick and block the loop).
        let done = Arc::new(AtomicBool::new(false));
        let success = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let handle = ThreadHandle {
            done: Arc::clone(&done),
            success: Arc::clone(&success),
            kill: Arc::clone(&kill),
        };
        let config = self.config.clone();
        let spec = spec.clone();
        std::thread::spawn(move || {
            let ok = execute_faulty_shard(
                &config,
                &spec,
                &remote,
                fault,
                delay,
                Some(Arc::clone(&kill)),
            )
            .unwrap_or(false);
            success.store(ok, Ordering::SeqCst);
            done.store(true, Ordering::SeqCst);
        });
        Ok(Box::new(handle))
    }

    fn fetch(&self, index: usize, artifact: Artifact, dest: &Path) -> io::Result<FetchOutcome> {
        if artifact == Artifact::Summary {
            return Ok(FetchOutcome::Missing); // fault tests never use --agg
        }
        // Steal ledgers fetch plainly — the fault script (and its
        // occurrence counters) stays keyed to primary shard ledgers.
        if let Artifact::Steal { seq } = artifact {
            let src = self.remote_steal_ledger(seq);
            if !src.exists() {
                return Ok(FetchOutcome::Missing);
            }
            std::fs::copy(&src, dest)?;
            return Ok(FetchOutcome::Copied);
        }
        let src = self.remote_ledger(index);
        if !src.exists() {
            return Ok(FetchOutcome::Missing);
        }
        let occurrence = {
            let mut seen = self.fetch_seen.lock().unwrap();
            let n = seen.entry(index).or_insert(0);
            let occ = *n;
            *n += 1;
            occ
        };
        let fault = self
            .fetch_faults
            .lock()
            .unwrap()
            .get(&(index, occurrence))
            .copied();
        match fault {
            None => {
                std::fs::copy(&src, dest)?;
            }
            Some(FetchFault::TornCopy { drop_bytes }) => {
                let bytes = std::fs::read(&src)?;
                let keep = bytes.len().saturating_sub(drop_bytes as usize);
                std::fs::write(dest, &bytes[..keep])?;
            }
            Some(FetchFault::EmptyArtifact) => {
                std::fs::write(dest, b"")?;
            }
            Some(FetchFault::StaleLedger) => {
                std::fs::write(
                    dest,
                    b"{\"t\":\"run\",\"fp\":\"00000000deadbeef\",\"n_trials\":1}\n",
                )?;
            }
            Some(FetchFault::Unreachable) => {
                // A transport failure, not an absence claim: dest is
                // untouched and the driver must defer, not relaunch.
                return Err(io::Error::other(format!(
                    "injected fault: shard {index} unreachable"
                )));
            }
        }
        Ok(FetchOutcome::Copied)
    }

    fn fetch_ranged(
        &self,
        index: usize,
        artifact: Artifact,
        dest: &Path,
        from: u64,
    ) -> io::Result<RangedFetch> {
        if !self.ranged {
            return Ok(RangedFetch::Unsupported);
        }
        let src = match artifact {
            Artifact::Summary => return Ok(RangedFetch::Missing),
            Artifact::Steal { seq } => self.remote_steal_ledger(seq),
            Artifact::Ledger => self.remote_ledger(index),
        };
        ranged_copy(&src, dest, from)
    }

    fn cleanup(&self, index: usize) -> io::Result<()> {
        self.cleanups.lock().unwrap().push(index);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sh_quote_passes_plain_words_and_quotes_the_rest() {
        assert_eq!(sh_quote("--out"), "--out");
        assert_eq!(sh_quote("run.shard0.jsonl"), "run.shard0.jsonl");
        assert_eq!(sh_quote("/tmp/a-b_c.1/x"), "/tmp/a-b_c.1/x");
        // `*` is a valid identifier character (MWEM*) but must be
        // quoted, or the remote shell globs it against its cwd.
        assert_eq!(sh_quote("MWEM*"), "'MWEM*'");
        assert_eq!(sh_quote("IDENTITY,MWEM*"), "'IDENTITY,MWEM*'");
        assert_eq!(sh_quote("a b"), "'a b'");
        assert_eq!(sh_quote("it's"), "'it'\\''s'");
        assert_eq!(sh_quote(""), "''");
        assert_eq!(sh_quote("$HOME"), "'$HOME'");
    }

    #[test]
    fn command_transport_requires_cmd_placeholder() {
        let err = CommandTransport::new("ssh host", "/tmp/w", Box::new(|_, _| vec![]))
            .err()
            .expect("template without {cmd} must be rejected");
        assert!(err.to_string().contains("{cmd}"), "{err}");
        assert!(CommandTransport::new("ssh host {cmd}", "/tmp/w", Box::new(|_, _| vec![])).is_ok());
    }

    #[test]
    fn command_transport_shard_paths_are_per_shard() {
        let t = CommandTransport::new("{cmd}", "/scratch/fleet", Box::new(|_, _| vec![])).unwrap();
        let p = t.remote_paths(3);
        assert_eq!(p.dir, PathBuf::from("/scratch/fleet/shard3"));
        assert_eq!(
            p.ledger,
            PathBuf::from("/scratch/fleet/shard3/ledger.jsonl")
        );
        assert_eq!(
            p.summary,
            PathBuf::from("/scratch/fleet/shard3/ledger.agg.jsonl")
        );
    }

    #[test]
    fn command_transport_fetch_reports_missing_without_touching_dest() {
        let dir = std::env::temp_dir().join(format!("dpbench-cmdt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![])).unwrap();
        let dest = dir.join("local.jsonl");
        std::fs::write(&dest, b"precious local bytes").unwrap();
        assert_eq!(
            t.fetch(0, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Missing
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"precious local bytes");
        // Once the remote artifact exists, fetch copies it over.
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        std::fs::write(t.remote_paths(0).ledger, b"remote bytes").unwrap();
        assert_eq!(
            t.fetch(0, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"remote bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_transport_fetch_template_substitutes_src_and_dest() {
        let dir = std::env::temp_dir().join(format!("dpbench-cmdt-tpl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("cp {src} {dest}");
        std::fs::create_dir_all(t.remote_paths(1).dir).unwrap();
        std::fs::write(t.remote_paths(1).ledger, b"via template").unwrap();
        let dest = dir.join("fetched.jsonl");
        assert_eq!(
            t.fetch(1, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"via template");
        // A failing fetch command is an error ("try again"), never a
        // Missing claim that would authorize discarding remote work.
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("false");
        let err = t.fetch(1, Artifact::Ledger, &dest).unwrap_err();
        assert!(err.to_string().contains("fetch command"), "{err}");
        // Command ran fine but produced nothing → confirmed absence —
        // even when an earlier fetch left bytes at dest (Copied must
        // mean "a file materialized *this time*", never stale bytes).
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("true");
        assert_eq!(
            t.fetch(1, Artifact::Ledger, &dir.join("nonexistent.jsonl"))
                .unwrap(),
            FetchOutcome::Missing
        );
        std::fs::write(&dest, b"stale earlier copy").unwrap();
        assert_eq!(
            t.fetch(1, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Missing
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"stale earlier copy");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fetch_template_survives_paths_with_spaces() {
        // Regression: {src}/{dest}/{workdir} substitutions are quoted
        // before hitting sh -c; an unquoted space would word-split the
        // cp and make every fetch silently Missing.
        let dir = std::env::temp_dir().join(format!("dpbench cmdt sp {}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w dir"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("cp {src} {dest}");
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        std::fs::write(t.remote_paths(0).ledger, b"spacey bytes").unwrap();
        let dest = dir.join("fetched here.jsonl");
        assert_eq!(
            t.fetch(0, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"spacey bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn native_ranged_fetch_appends_rewinds_and_confirms_absence() {
        let dir = std::env::temp_dir().join(format!("dpbench-ranged-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![])).unwrap();
        let dest = dir.join("local.jsonl");

        // Absent remote: Missing, dest untouched.
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 0).unwrap(),
            RangedFetch::Missing
        );
        assert!(!dest.exists());

        // First delivery from offset 0 appends everything.
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        let remote = t.remote_paths(0).ledger;
        std::fs::write(&remote, b"line one\nline two\n").unwrap();
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 0).unwrap(),
            RangedFetch::Appended { bytes: 18 }
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"line one\nline two\n");

        // Nothing new: Unchanged, and a torn local tail past the
        // validated prefix is dropped.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&dest)
            .unwrap();
        f.write_all(b"torn frag").unwrap();
        drop(f);
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 18).unwrap(),
            RangedFetch::Unchanged
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"line one\nline two\n");

        // Remote growth delivers only the new tail.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&remote)
            .unwrap();
        f.write_all(b"line three\n").unwrap();
        drop(f);
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 18).unwrap(),
            RangedFetch::Appended { bytes: 11 }
        );
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            b"line one\nline two\nline three\n"
        );

        // Remote shrank below the prefix (fresh relaunch): full re-copy.
        std::fs::write(&remote, b"fresh\n").unwrap();
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 18).unwrap(),
            RangedFetch::Rewound { bytes: 6 }
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"fresh\n");

        // Local copy behind the claimed prefix: full re-copy, never a
        // corrupting splice.
        std::fs::write(&remote, b"0123456789\n").unwrap();
        std::fs::write(&dest, b"012").unwrap();
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 7).unwrap(),
            RangedFetch::Rewound { bytes: 11 }
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"0123456789\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn template_ranged_fetch_requires_offset_placeholder() {
        let dir = std::env::temp_dir().join(format!("dpbench-ranged-tpl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A template without {offset} cannot range: fall back to full.
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("cp {src} {dest}");
        let dest = dir.join("local.jsonl");
        assert_eq!(
            t.fetch_ranged(0, Artifact::Ledger, &dest, 0).unwrap(),
            RangedFetch::Unsupported
        );

        // With {offset}, the delivered range is spliced after the
        // validated prefix — the shell-arithmetic form CI uses (tail -c
        // +N is 1-based).
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("tail -c +$(({offset}+1)) {src} > {dest}");
        std::fs::create_dir_all(t.remote_paths(2).dir).unwrap();
        let remote = t.remote_paths(2).ledger;
        std::fs::write(&remote, b"abcdefgh").unwrap();
        assert_eq!(
            t.fetch_ranged(2, Artifact::Ledger, &dest, 0).unwrap(),
            RangedFetch::Appended { bytes: 8 }
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"abcdefgh");
        std::fs::write(&remote, b"abcdefghij").unwrap();
        assert_eq!(
            t.fetch_ranged(2, Artifact::Ledger, &dest, 8).unwrap(),
            RangedFetch::Appended { bytes: 2 }
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"abcdefghij");
        // And the same template serves full fetches with offset 0.
        let full = dir.join("full.jsonl");
        assert_eq!(
            t.fetch(2, Artifact::Ledger, &full).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&full).unwrap(), b"abcdefghij");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn steal_artifacts_use_their_own_scratch_dirs() {
        let dir = std::env::temp_dir().join(format!("dpbench-stealdir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![])).unwrap();
        let p = t.remote_steal_paths(4);
        assert_eq!(p.dir, dir.join("w/steal4"));
        assert_eq!(p.ledger, dir.join("w/steal4/ledger.jsonl"));
        std::fs::create_dir_all(&p.dir).unwrap();
        std::fs::write(&p.ledger, b"stolen tail bytes").unwrap();
        let dest = dir.join("steal4.jsonl");
        // Fetching Artifact::Steal ignores the slot's shard dir.
        assert_eq!(
            t.fetch(1, Artifact::Steal { seq: 4 }, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"stolen tail bytes");
        t.cleanup_steal(4, 1).unwrap();
        assert!(!p.dir.exists());
        t.cleanup_steal(4, 1).unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_transport_cleanup_removes_the_shard_workdir() {
        let dir = std::env::temp_dir().join(format!("dpbench-cmdt-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![])).unwrap();
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        std::fs::write(t.remote_paths(0).ledger, b"x").unwrap();
        t.cleanup(0).unwrap();
        assert!(!t.remote_paths(0).dir.exists());
        // Cleaning an absent workdir is fine (idempotent).
        t.cleanup(0).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
