//! Pluggable shard transports: how the fleet driver starts shard
//! workers, watches them, and gets their artifacts back.
//!
//! PR 4's fleet hard-coded "k local child processes writing directly to
//! the merged output's directory". The [`ShardTransport`] trait factors
//! that into the four operations the driver actually needs —
//!
//! 1. **launch** one shard attempt ([`ShardTransport::launch`]), getting
//!    back a pollable [`ShardHandle`];
//! 2. **poll** the attempt ([`ShardHandle::poll`]) and **kill** it when
//!    the driver decides it has stalled;
//! 3. **fetch** the shard's artifacts — ledger and optional `--agg`
//!    summary — back to the driver's filesystem
//!    ([`ShardTransport::fetch`], the *copy-back* step);
//! 4. **cleanup** the shard's remote scratch space once the merged
//!    output has been verified ([`ShardTransport::cleanup`]).
//!
//! Three implementations:
//!
//! * [`LocalTransport`] — the PR 4 behavior: adapt any [`ShardLauncher`]
//!   (which spawns a local child writing the ledger in place), so fetch
//!   is a no-op ([`FetchOutcome::InPlace`]).
//! * [`CommandTransport`] — template an arbitrary wrapper command line
//!   around the shard command (`{cmd}`), so `ssh host {cmd}`,
//!   `docker run -v … img {cmd}`, and `sh -c "{cmd}"` all work without
//!   the driver knowing any of them. Shards write into a per-shard
//!   workdir; copy-back is a plain file copy by default or a `--fetch-cmd`
//!   template (`scp host:{src} {dest}`) for genuinely remote workdirs.
//! * [`FaultyTransport`] — **test-only**: runs shards in-process and
//!   injects crashes, hangs, torn copy-backs, empty artifacts, and stale
//!   ledgers deterministically, so `tests/fleet_faults.rs` can prove the
//!   driver survives every remote failure mode without real machines.
//!
//! The driver treats exit status as advisory and the (fetched) ledger as
//! truth, so a transport does not need reliable status reporting — a
//! `ssh` that dies after the remote shard finished is indistinguishable
//! from a clean run once the ledger is fetched.

use crate::config::ExperimentConfig;
use crate::runner::Runner;
use crate::sink::{read_ledger, JsonlSink};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;

/// Everything a transport needs to start one shard attempt.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Shard index in `0..procs`.
    pub index: usize,
    /// Total shard count (`k` in `--shard i/k`).
    pub procs: usize,
    /// The driver-side ledger path for this shard. Local transports
    /// write it directly; remote transports write into their own workdir
    /// and copy back to this path on [`ShardTransport::fetch`].
    pub ledger: PathBuf,
    /// True when a prior ledger holds completed units to skip.
    pub resume: bool,
    /// Launch round, counted from 0 across the whole fleet run.
    pub attempt: usize,
}

/// What a polled shard attempt is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Still running (or unreachable — the driver keeps polling until
    /// the stall timeout expires).
    Running,
    /// Exited. `success` mirrors the exit status but is advisory only:
    /// the fetched ledger decides whether the shard's work is complete.
    Exited {
        /// Exit-status success, advisory.
        success: bool,
    },
}

/// A launched shard attempt the driver can poll and kill.
pub trait ShardHandle {
    /// Non-blocking status check.
    fn poll(&mut self) -> io::Result<ShardStatus>;
    /// Terminate the attempt (used when the driver declares a stall).
    /// After a kill, `poll` must eventually report `Exited`.
    fn kill(&mut self) -> io::Result<()>;
}

/// Which shard artifact to copy back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// The JSONL result/resume ledger.
    Ledger,
    /// The mergeable `--agg` t-digest summary.
    Summary,
}

/// Result of a copy-back attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// The artifact is produced at the destination path directly (local
    /// transports); nothing was copied.
    InPlace,
    /// The artifact was copied to the destination.
    Copied,
    /// The shard has not produced this artifact (yet) — the destination
    /// was left untouched.
    Missing,
}

/// How the fleet driver reaches its shards. Implementations decide the
/// machinery (child process, ssh, container, in-process test double);
/// the driver decides *when* to launch, resume, kill, fetch, and merge.
pub trait ShardTransport {
    /// Start one shard attempt.
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>>;

    /// Copy one artifact of shard `index` back to `dest` (the copy-back
    /// step). Called repeatedly — between rounds, after exits, and
    /// periodically for progress tailing — so implementations must
    /// tolerate a still-running shard (a torn or partial copy is fine:
    /// the driver validates with the strict ledger readers and
    /// re-fetches or re-dispatches).
    ///
    /// Outcome contract: [`FetchOutcome::Missing`] asserts **confirmed
    /// absence** of the remote artifact (and leaves `dest` alone) — the
    /// driver takes it as license to restart a partially-fetched shard
    /// fresh. A fetch that merely *failed* (unreachable host, transport
    /// error) must be an `Err` instead: the driver defers the shard and
    /// retries the fetch next round rather than discarding remote work.
    fn fetch(&self, index: usize, artifact: Artifact, dest: &Path) -> io::Result<FetchOutcome>;

    /// Remove shard `index`'s remote scratch space. Called only after
    /// the merged output has been verified; local transports no-op.
    fn cleanup(&self, index: usize) -> io::Result<()> {
        let _ = index;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Local processes (the PR 4 path)
// ---------------------------------------------------------------------------

/// Spawns one shard process. Implementations decide the command line;
/// the driver decides *when* to launch, whether to pass resume, and what
/// to do with the exit status. This is the PR 4 trait, kept as the
/// simplest way to plug a local child process into [`LocalTransport`].
pub trait ShardLauncher {
    /// Launch shard `index` of `procs`, writing its ledger to `ledger`.
    /// `resume` is true when a prior ledger holds completed units to
    /// skip; `attempt` counts launch rounds from 0.
    fn launch(
        &self,
        index: usize,
        procs: usize,
        ledger: &Path,
        resume: bool,
        attempt: usize,
    ) -> io::Result<Child>;
}

/// A [`Child`] process as a pollable shard handle.
pub struct ProcessHandle {
    child: Child,
    /// Cached terminal status once observed (a `Child` can only be
    /// waited once).
    exited: Option<bool>,
}

impl ProcessHandle {
    /// Wrap a spawned child.
    pub fn new(child: Child) -> Self {
        Self {
            child,
            exited: None,
        }
    }
}

impl ShardHandle for ProcessHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        if let Some(success) = self.exited {
            return Ok(ShardStatus::Exited { success });
        }
        match self.child.try_wait()? {
            Some(status) => {
                self.exited = Some(status.success());
                Ok(ShardStatus::Exited {
                    success: status.success(),
                })
            }
            None => Ok(ShardStatus::Running),
        }
    }

    fn kill(&mut self) -> io::Result<()> {
        if self.exited.is_some() {
            return Ok(());
        }
        // An already-dead child returns InvalidInput from kill; that is
        // a race we want, not an error.
        match self.child.kill() {
            Ok(()) | Err(_) => {}
        }
        let status = self.child.wait()?;
        self.exited = Some(status.success());
        Ok(())
    }
}

/// Adapt a [`ShardLauncher`] (local child processes writing ledgers in
/// place) to the transport interface: fetch is a no-op, cleanup is a
/// no-op, and the shard ledgers double as the fleet's crash record.
pub struct LocalTransport<'a> {
    /// The command constructor.
    pub launcher: &'a dyn ShardLauncher,
}

impl ShardTransport for LocalTransport<'_> {
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>> {
        let child = self.launcher.launch(
            spec.index,
            spec.procs,
            &spec.ledger,
            spec.resume,
            spec.attempt,
        )?;
        Ok(Box::new(ProcessHandle::new(child)))
    }

    fn fetch(&self, _index: usize, _artifact: Artifact, _dest: &Path) -> io::Result<FetchOutcome> {
        Ok(FetchOutcome::InPlace)
    }
}

// ---------------------------------------------------------------------------
// Command-template transport (ssh / docker / sh -c without knowing any)
// ---------------------------------------------------------------------------

/// The per-shard remote paths a [`CommandTransport`] shard writes to.
#[derive(Debug, Clone)]
pub struct RemotePaths {
    /// The shard's scratch directory (`<workdir>/shard<i>`).
    pub dir: PathBuf,
    /// Remote ledger path (`<dir>/ledger.jsonl`).
    pub ledger: PathBuf,
    /// Remote `--agg` summary path (`<dir>/ledger.agg.jsonl`).
    pub summary: PathBuf,
}

/// Builds the shard command argv (program first) for one attempt, given
/// the remote paths the shard must write to. The CLI supplies this so
/// the transport stays ignorant of `dpbench run`'s flag set.
pub type ShardCommandBuilder = Box<dyn Fn(&LaunchSpec, &RemotePaths) -> Vec<String>>;

/// Launch shards through an arbitrary wrapper command line. The launch
/// template must contain `{cmd}`, which is replaced by the shell-quoted
/// shard command; `{index}`, `{procs}`, and `{workdir}` are also
/// substituted. The whole substituted line runs under `sh -c`, so
///
/// * `{cmd}` — plain local execution through a shell,
/// * `sh -c "{cmd}"` — an explicit wrapper (what CI's remote-smoke uses),
/// * `ssh worker{index} {cmd}` — one machine per shard,
/// * `docker run --rm -v /scratch:/scratch dpbench {cmd}` — containers,
///
/// all work without the driver knowing which. Path substitutions
/// (`{workdir}`, and `{src}`/`{dest}` in the fetch template) are
/// shell-quoted when they need it, so templates behave with paths
/// containing spaces or metacharacters. Each shard writes into its
/// own workdir (`<workdir>/shard<i>/`); copy-back is a plain file copy
/// by default (correct whenever the workdir is reachable locally — same
/// machine, shared filesystem, or a mounted volume) or a `fetch`
/// template like `scp worker{index}:{src} {dest}` for genuinely remote
/// filesystems.
pub struct CommandTransport {
    launch_template: String,
    fetch_template: Option<String>,
    cleanup_template: Option<String>,
    workdir: PathBuf,
    build_command: ShardCommandBuilder,
}

impl CommandTransport {
    /// New transport. Errors unless `launch_template` contains `{cmd}`.
    pub fn new(
        launch_template: impl Into<String>,
        workdir: impl Into<PathBuf>,
        build_command: ShardCommandBuilder,
    ) -> io::Result<Self> {
        let launch_template = launch_template.into();
        if !launch_template.contains("{cmd}") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("launch template {launch_template:?} does not contain {{cmd}}"),
            ));
        }
        Ok(Self {
            launch_template,
            fetch_template: None,
            cleanup_template: None,
            workdir: workdir.into(),
            build_command,
        })
    }

    /// Use a command template (`{src}`, `{dest}`, `{index}`, `{workdir}`)
    /// for copy-back instead of a plain file copy.
    pub fn with_fetch_template(mut self, template: impl Into<String>) -> Self {
        self.fetch_template = Some(template.into());
        self
    }

    /// Use a command template (`{index}`, `{workdir}`) for cleanup
    /// instead of removing the shard workdir locally.
    pub fn with_cleanup_template(mut self, template: impl Into<String>) -> Self {
        self.cleanup_template = Some(template.into());
        self
    }

    /// The remote paths shard `index` writes to.
    pub fn remote_paths(&self, index: usize) -> RemotePaths {
        let dir = self.workdir.join(format!("shard{index}"));
        RemotePaths {
            ledger: dir.join("ledger.jsonl"),
            summary: dir.join("ledger.agg.jsonl"),
            dir,
        }
    }

    fn substitute(&self, template: &str, spec: &[(&str, String)]) -> String {
        let mut out = template.to_string();
        for (key, value) in spec {
            out = out.replace(&format!("{{{key}}}"), value);
        }
        out
    }

    fn run_shell(&self, line: &str, stderr: Stdio) -> io::Result<Child> {
        Command::new("sh")
            .arg("-c")
            .arg(line)
            .stdout(Stdio::null())
            .stderr(stderr)
            .spawn()
    }
}

/// Quote one argument for POSIX `sh`. Plain words pass through; anything
/// else — including `*`, which is a legal dpbench identifier character
/// (`MWEM*`) but a glob the shell would expand against the remote cwd —
/// is single-quoted with embedded quotes escaped.
pub fn sh_quote(arg: &str) -> String {
    let plain = !arg.is_empty()
        && arg
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"_-./:=,@%+".contains(&b));
    if plain {
        arg.to_string()
    } else {
        format!("'{}'", arg.replace('\'', "'\\''"))
    }
}

impl ShardTransport for CommandTransport {
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>> {
        let paths = self.remote_paths(spec.index);
        // Harmless when the workdir is genuinely remote (the path simply
        // also exists locally); required for the local-wrapper cases.
        std::fs::create_dir_all(&paths.dir)?;
        let argv = (self.build_command)(spec, &paths);
        let cmd = argv
            .iter()
            .map(|a| sh_quote(a))
            .collect::<Vec<_>>()
            .join(" ");
        // Path substitutions are shell-quoted (plain paths pass through
        // unchanged): an unquoted path with a space or metacharacter
        // would word-split inside the sh -c line. {cmd} is already
        // quoted per-argument; {index}/{procs} are numeric.
        let line = self.substitute(
            &self.launch_template,
            &[
                ("cmd", cmd),
                ("index", spec.index.to_string()),
                ("procs", spec.procs.to_string()),
                ("workdir", sh_quote(&paths.dir.display().to_string())),
            ],
        );
        // Tee the wrapper's stderr next to the local ledger, like the
        // local launcher does, so k shards don't interleave on the
        // driver's terminal and the attempt history is preserved.
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(spec.ledger.with_extension("log"))?;
        let child = self.run_shell(&line, Stdio::from(log))?;
        Ok(Box::new(ProcessHandle::new(child)))
    }

    fn fetch(&self, index: usize, artifact: Artifact, dest: &Path) -> io::Result<FetchOutcome> {
        let paths = self.remote_paths(index);
        let src = match artifact {
            Artifact::Ledger => paths.ledger,
            Artifact::Summary => paths.summary,
        };
        match &self.fetch_template {
            Some(template) => {
                // The command writes to a scratch path, not to `dest`
                // directly: whether a file materialized *this time* is
                // what distinguishes Copied from Missing. Deciding via
                // `dest.exists()` would report stale bytes from an
                // earlier fetch as Copied, and a failed command must
                // leave the previous good copy untouched.
                let scratch = dest.with_file_name(format!(
                    "{}.fetch.tmp",
                    dest.file_name()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default()
                ));
                let _ = std::fs::remove_file(&scratch);
                let line = self.substitute(
                    template,
                    &[
                        ("src", sh_quote(&src.display().to_string())),
                        ("dest", sh_quote(&scratch.display().to_string())),
                        ("index", index.to_string()),
                        ("workdir", sh_quote(&paths.dir.display().to_string())),
                    ],
                );
                // Outcome semantics matter here: `Missing` is a claim of
                // *confirmed absence* (the driver restarts a Partial
                // shard fresh on it), while a failed fetch command could
                // just as well be transient unreachability — reporting
                // that as Missing would discard a remote shard's
                // completed work over a network blip. So: command ran
                // and produced nothing → Missing; command failed → an
                // error the driver treats as "try again next round".
                let status = self.run_shell(&line, Stdio::null())?.wait()?;
                if !status.success() {
                    let _ = std::fs::remove_file(&scratch);
                    return Err(io::Error::other(format!(
                        "fetch command for shard {index} exited with {status}: {line}"
                    )));
                }
                if scratch.exists() {
                    std::fs::rename(&scratch, dest)?;
                    Ok(FetchOutcome::Copied)
                } else {
                    Ok(FetchOutcome::Missing)
                }
            }
            None => match std::fs::copy(&src, dest) {
                Ok(_) => Ok(FetchOutcome::Copied),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(FetchOutcome::Missing),
                Err(e) => Err(e),
            },
        }
    }

    fn cleanup(&self, index: usize) -> io::Result<()> {
        let paths = self.remote_paths(index);
        match &self.cleanup_template {
            Some(template) => {
                let line = self.substitute(
                    template,
                    &[
                        ("index", index.to_string()),
                        ("workdir", sh_quote(&paths.dir.display().to_string())),
                    ],
                );
                let status = self.run_shell(&line, Stdio::null())?.wait()?;
                if status.success() {
                    Ok(())
                } else {
                    Err(io::Error::other(format!(
                        "cleanup command for shard {index} exited with {status}"
                    )))
                }
            }
            None => match std::fs::remove_dir_all(&paths.dir) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection transport (test harness)
// ---------------------------------------------------------------------------

/// A launch-time fault, keyed by `(shard, attempt)`.
#[derive(Debug, Clone, Copy)]
pub enum LaunchFault {
    /// Complete `after_units` units, then die with a failing exit; with
    /// `torn_tail`, the crash additionally tears the remote ledger's
    /// final line mid-write.
    Crash {
        /// Units completed before the simulated crash.
        after_units: usize,
        /// Leave a torn (unparseable) trailing fragment in the ledger.
        torn_tail: bool,
    },
    /// Never make progress: the handle reports `Running` until the
    /// driver's stall timeout kills it.
    Hang,
    /// Do all the work, then report a failing exit status anyway — the
    /// "exit status is advisory, the ledger is truth" drill.
    LieAboutExit,
}

/// A copy-back fault, keyed by `(shard, nth ledger fetch that found a
/// remote artifact)`.
#[derive(Debug, Clone, Copy)]
pub enum FetchFault {
    /// Deliver only a prefix, dropping the last `drop_bytes` bytes (a
    /// torn copy).
    TornCopy {
        /// Bytes missing from the end of the delivered file.
        drop_bytes: u64,
    },
    /// Deliver a zero-byte artifact.
    EmptyArtifact,
    /// Deliver a ledger belonging to a different run (stale scratch
    /// space from an earlier fleet) — the driver must hard-error, never
    /// merge it.
    StaleLedger,
}

/// **Test-only** transport that executes shards in-process (no child
/// processes, no machines) and injects failures deterministically: the
/// fault matrix in `tests/fleet_faults.rs` drives the driver through
/// every remote failure mode and asserts the merged output stays
/// byte-identical to a one-shot run in every survivable case.
///
/// The "remote" side is a local workdir: shard `i` writes
/// `<workdir>/shard<i>.jsonl`, and `fetch` copies it back — faithfully,
/// torn, empty, or stale, per the configured fault script.
pub struct FaultyTransport {
    config: ExperimentConfig,
    workdir: PathBuf,
    launch_faults: Mutex<HashMap<(usize, usize), LaunchFault>>,
    fetch_faults: Mutex<HashMap<(usize, usize), FetchFault>>,
    /// Ledger-fetch occurrence counter per shard (only fetches that
    /// found a remote artifact count, so fault scripts stay independent
    /// of how many early-round fetches saw nothing).
    fetch_seen: Mutex<HashMap<usize, usize>>,
    /// Shard indexes whose scratch space was cleaned up, in call order.
    cleanups: Mutex<Vec<usize>>,
}

impl FaultyTransport {
    /// New fault-free transport over `config`, with remote scratch space
    /// under `workdir` (created on demand).
    pub fn new(config: ExperimentConfig, workdir: impl Into<PathBuf>) -> Self {
        Self {
            config,
            workdir: workdir.into(),
            launch_faults: Mutex::new(HashMap::new()),
            fetch_faults: Mutex::new(HashMap::new()),
            fetch_seen: Mutex::new(HashMap::new()),
            cleanups: Mutex::new(Vec::new()),
        }
    }

    /// Script a launch fault for `(shard, attempt)`.
    pub fn fail_launch(self, shard: usize, attempt: usize, fault: LaunchFault) -> Self {
        self.launch_faults
            .lock()
            .unwrap()
            .insert((shard, attempt), fault);
        self
    }

    /// Script a copy-back fault for the `occurrence`-th ledger fetch of
    /// `shard` that finds a remote artifact (0-based).
    pub fn fail_fetch(self, shard: usize, occurrence: usize, fault: FetchFault) -> Self {
        self.fetch_faults
            .lock()
            .unwrap()
            .insert((shard, occurrence), fault);
        self
    }

    /// Shard indexes cleaned up so far (call order).
    pub fn cleanups(&self) -> Vec<usize> {
        self.cleanups.lock().unwrap().clone()
    }

    fn remote_ledger(&self, index: usize) -> PathBuf {
        self.workdir.join(format!("shard{index}.jsonl"))
    }

    /// Execute one shard attempt in-process, honoring resume and the
    /// crash fault's unit budget — the same observable behavior as
    /// `dpbench run --shard i/k [--resume] [--fail-after N]`.
    fn run_shard(&self, spec: &LaunchSpec, fault: Option<LaunchFault>) -> io::Result<bool> {
        let mut runner = Runner::new(self.config.clone());
        runner.threads = 1;
        let mut crash = false;
        let mut torn_tail = false;
        match fault {
            Some(LaunchFault::Crash {
                after_units,
                torn_tail: torn,
            }) => {
                runner.max_units = Some(after_units);
                crash = true;
                torn_tail = torn;
            }
            Some(LaunchFault::LieAboutExit) => crash = true, // work done, exit lies
            Some(LaunchFault::Hang) => unreachable!("hangs never reach run_shard"),
            None => {}
        }
        let shard = runner.manifest().shard(spec.index, spec.procs);
        let remote = self.remote_ledger(spec.index);
        if spec.resume {
            // Mirror the real child: resume over an unreadable ledger is
            // a failed attempt, not silent data loss.
            let ledger = match read_ledger(&remote) {
                Ok(l) => l,
                Err(_) => return Ok(false),
            };
            let mut sink = JsonlSink::append(&remote)?;
            runner.resume(&shard, &ledger.done, &mut sink)?;
        } else {
            let mut sink = JsonlSink::create(&remote)?;
            runner.run_with_sink(&shard, &mut sink)?;
        }
        if torn_tail {
            // A kill mid-write: a fragment with no newline and no
            // closing brace. `JsonlSink::append` heals it on resume.
            let mut f = std::fs::OpenOptions::new().append(true).open(&remote)?;
            write!(f, "{{\"t\":\"s\",\"unit\":\"00")?;
        }
        Ok(!crash)
    }
}

/// Handle of an attempt that already finished (the faulty transport runs
/// shards synchronously inside `launch`).
struct CompletedHandle {
    success: bool,
}

impl ShardHandle for CompletedHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        Ok(ShardStatus::Exited {
            success: self.success,
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Handle of a hung attempt: `Running` until killed.
struct HangHandle {
    killed: bool,
}

impl ShardHandle for HangHandle {
    fn poll(&mut self) -> io::Result<ShardStatus> {
        Ok(if self.killed {
            ShardStatus::Exited { success: false }
        } else {
            ShardStatus::Running
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        self.killed = true;
        Ok(())
    }
}

impl ShardTransport for FaultyTransport {
    fn launch(&self, spec: &LaunchSpec) -> io::Result<Box<dyn ShardHandle>> {
        std::fs::create_dir_all(&self.workdir)?;
        let fault = self
            .launch_faults
            .lock()
            .unwrap()
            .get(&(spec.index, spec.attempt))
            .copied();
        if matches!(fault, Some(LaunchFault::Hang)) {
            return Ok(Box::new(HangHandle { killed: false }));
        }
        let success = self.run_shard(spec, fault)?;
        Ok(Box::new(CompletedHandle { success }))
    }

    fn fetch(&self, index: usize, artifact: Artifact, dest: &Path) -> io::Result<FetchOutcome> {
        if artifact == Artifact::Summary {
            return Ok(FetchOutcome::Missing); // fault tests never use --agg
        }
        let src = self.remote_ledger(index);
        if !src.exists() {
            return Ok(FetchOutcome::Missing);
        }
        let occurrence = {
            let mut seen = self.fetch_seen.lock().unwrap();
            let n = seen.entry(index).or_insert(0);
            let occ = *n;
            *n += 1;
            occ
        };
        let fault = self
            .fetch_faults
            .lock()
            .unwrap()
            .get(&(index, occurrence))
            .copied();
        match fault {
            None => {
                std::fs::copy(&src, dest)?;
            }
            Some(FetchFault::TornCopy { drop_bytes }) => {
                let bytes = std::fs::read(&src)?;
                let keep = bytes.len().saturating_sub(drop_bytes as usize);
                std::fs::write(dest, &bytes[..keep])?;
            }
            Some(FetchFault::EmptyArtifact) => {
                std::fs::write(dest, b"")?;
            }
            Some(FetchFault::StaleLedger) => {
                std::fs::write(
                    dest,
                    b"{\"t\":\"run\",\"fp\":\"00000000deadbeef\",\"n_trials\":1}\n",
                )?;
            }
        }
        Ok(FetchOutcome::Copied)
    }

    fn cleanup(&self, index: usize) -> io::Result<()> {
        self.cleanups.lock().unwrap().push(index);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sh_quote_passes_plain_words_and_quotes_the_rest() {
        assert_eq!(sh_quote("--out"), "--out");
        assert_eq!(sh_quote("run.shard0.jsonl"), "run.shard0.jsonl");
        assert_eq!(sh_quote("/tmp/a-b_c.1/x"), "/tmp/a-b_c.1/x");
        // `*` is a valid identifier character (MWEM*) but must be
        // quoted, or the remote shell globs it against its cwd.
        assert_eq!(sh_quote("MWEM*"), "'MWEM*'");
        assert_eq!(sh_quote("IDENTITY,MWEM*"), "'IDENTITY,MWEM*'");
        assert_eq!(sh_quote("a b"), "'a b'");
        assert_eq!(sh_quote("it's"), "'it'\\''s'");
        assert_eq!(sh_quote(""), "''");
        assert_eq!(sh_quote("$HOME"), "'$HOME'");
    }

    #[test]
    fn command_transport_requires_cmd_placeholder() {
        let err = CommandTransport::new("ssh host", "/tmp/w", Box::new(|_, _| vec![]))
            .err()
            .expect("template without {cmd} must be rejected");
        assert!(err.to_string().contains("{cmd}"), "{err}");
        assert!(CommandTransport::new("ssh host {cmd}", "/tmp/w", Box::new(|_, _| vec![])).is_ok());
    }

    #[test]
    fn command_transport_shard_paths_are_per_shard() {
        let t = CommandTransport::new("{cmd}", "/scratch/fleet", Box::new(|_, _| vec![])).unwrap();
        let p = t.remote_paths(3);
        assert_eq!(p.dir, PathBuf::from("/scratch/fleet/shard3"));
        assert_eq!(
            p.ledger,
            PathBuf::from("/scratch/fleet/shard3/ledger.jsonl")
        );
        assert_eq!(
            p.summary,
            PathBuf::from("/scratch/fleet/shard3/ledger.agg.jsonl")
        );
    }

    #[test]
    fn command_transport_fetch_reports_missing_without_touching_dest() {
        let dir = std::env::temp_dir().join(format!("dpbench-cmdt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![])).unwrap();
        let dest = dir.join("local.jsonl");
        std::fs::write(&dest, b"precious local bytes").unwrap();
        assert_eq!(
            t.fetch(0, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Missing
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"precious local bytes");
        // Once the remote artifact exists, fetch copies it over.
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        std::fs::write(t.remote_paths(0).ledger, b"remote bytes").unwrap();
        assert_eq!(
            t.fetch(0, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"remote bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_transport_fetch_template_substitutes_src_and_dest() {
        let dir = std::env::temp_dir().join(format!("dpbench-cmdt-tpl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("cp {src} {dest}");
        std::fs::create_dir_all(t.remote_paths(1).dir).unwrap();
        std::fs::write(t.remote_paths(1).ledger, b"via template").unwrap();
        let dest = dir.join("fetched.jsonl");
        assert_eq!(
            t.fetch(1, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"via template");
        // A failing fetch command is an error ("try again"), never a
        // Missing claim that would authorize discarding remote work.
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("false");
        let err = t.fetch(1, Artifact::Ledger, &dest).unwrap_err();
        assert!(err.to_string().contains("fetch command"), "{err}");
        // Command ran fine but produced nothing → confirmed absence —
        // even when an earlier fetch left bytes at dest (Copied must
        // mean "a file materialized *this time*", never stale bytes).
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("true");
        assert_eq!(
            t.fetch(1, Artifact::Ledger, &dir.join("nonexistent.jsonl"))
                .unwrap(),
            FetchOutcome::Missing
        );
        std::fs::write(&dest, b"stale earlier copy").unwrap();
        assert_eq!(
            t.fetch(1, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Missing
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"stale earlier copy");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fetch_template_survives_paths_with_spaces() {
        // Regression: {src}/{dest}/{workdir} substitutions are quoted
        // before hitting sh -c; an unquoted space would word-split the
        // cp and make every fetch silently Missing.
        let dir = std::env::temp_dir().join(format!("dpbench cmdt sp {}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = CommandTransport::new("{cmd}", dir.join("w dir"), Box::new(|_, _| vec![]))
            .unwrap()
            .with_fetch_template("cp {src} {dest}");
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        std::fs::write(t.remote_paths(0).ledger, b"spacey bytes").unwrap();
        let dest = dir.join("fetched here.jsonl");
        assert_eq!(
            t.fetch(0, Artifact::Ledger, &dest).unwrap(),
            FetchOutcome::Copied
        );
        assert_eq!(std::fs::read(&dest).unwrap(), b"spacey bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_transport_cleanup_removes_the_shard_workdir() {
        let dir = std::env::temp_dir().join(format!("dpbench-cmdt-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = CommandTransport::new("{cmd}", dir.join("w"), Box::new(|_, _| vec![])).unwrap();
        std::fs::create_dir_all(t.remote_paths(0).dir).unwrap();
        std::fs::write(t.remote_paths(0).ledger, b"x").unwrap();
        t.cleanup(0).unwrap();
        assert!(!t.remote_paths(0).dir.exists());
        // Cleaning an absent workdir is fine (idempotent).
        t.cleanup(0).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
