//! Live fleet progress: a monotone units-done tailer over shard ledgers.
//!
//! The driver reports per-shard progress by tailing each shard's ledger
//! — directly for local transports (the file grows in place while the
//! child runs), via periodically fetched copies for remote ones. Both
//! sources are messy by construction: a live file can end mid-line
//! (flush raced the read), and a fetched copy can be torn anywhere or
//! even *shrink* between observations (a torn fetch after a clean one,
//! or a shard relaunched fresh truncating its ledger). The tailer's
//! contract absorbs all of that:
//!
//! * the reported count **never goes backwards** — completed-unit ids
//!   accumulate in a set, so re-reads, rewinds, and re-deliveries are
//!   idempotent;
//! * the reported count **never exceeds the shard's manifest size** —
//!   it is capped at `total`, so even a garbled read that conjures a
//!   bogus unit id cannot over-report;
//! * observation is **incremental** — [`probe_ledger`] consumes only
//!   complete lines past the previous offset, rewinding to 0 when the
//!   file shrank.
//!
//! A property test in this module drives random interleavings of
//! partial-line appends and truncations against those invariants.

use crate::sink::probe_ledger;
use crate::UnitId;
use std::collections::HashSet;
use std::io;
use std::path::Path;

/// Monotone units-done counter for one shard ledger.
#[derive(Debug)]
pub struct ProgressTailer {
    /// Byte offset of the first unconsumed line (complete lines only).
    offset: u64,
    /// Every completed-unit id ever observed.
    done: HashSet<UnitId>,
    /// The shard's manifest size — the count ceiling.
    total: usize,
}

impl ProgressTailer {
    /// New tailer for a shard scheduled with `total` units.
    pub fn new(total: usize) -> Self {
        Self {
            offset: 0,
            done: HashSet::new(),
            total,
        }
    }

    /// Units-done as currently known: monotone, and never above `total`.
    pub fn count(&self) -> usize {
        self.done.len().min(self.total)
    }

    /// The shard's manifest size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Byte offset of the first unconsumed line in the tailed file —
    /// complete lines only, so it is exactly the prefix a ranged
    /// (incremental) fetch may treat as already-delivered: everything
    /// before it has been validated line-by-line, and any torn fragment
    /// beyond it is disposable.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Every completed-unit id observed so far. The fleet driver unions
    /// these across a victim's own ledger and its steal ledgers to decide
    /// coverage (and to keep the fleet-level progress count monotone
    /// across re-deals: sets only grow).
    pub fn done(&self) -> &HashSet<UnitId> {
        &self.done
    }

    /// Read any new complete lines of `path` and return the updated
    /// count. A missing file (shard not started, fetch not landed yet)
    /// reports the existing count; read errors are surfaced but leave
    /// the accumulated state intact, so a later observation recovers.
    pub fn observe(&mut self, path: &Path) -> io::Result<usize> {
        let probe = match probe_ledger(path, self.offset) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(self.count()),
            other => other?,
        };
        self.offset = probe.offset;
        self.done.extend(probe.units);
        Ok(self.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpbench-progress-{name}-{}", std::process::id()));
        p
    }

    fn header() -> String {
        "{\"t\":\"run\",\"fp\":\"00000000000000aa\",\"n_trials\":1}\n".to_string()
    }

    fn marker(i: usize) -> String {
        format!(
            "{{\"t\":\"u\",\"unit\":\"{:016x}\",\"pos\":{i}}}\n",
            i as u64 + 1
        )
    }

    fn sample(i: usize) -> String {
        format!(
            "{{\"t\":\"s\",\"unit\":\"{:016x}\",\"pos\":{i},\"alg\":\"IDENTITY\",\
             \"dataset\":\"MEDCOST\",\"scale\":1000,\"domain\":\"128\",\"eps\":0.1,\
             \"sample\":0,\"trial\":0,\"err\":0.5}}\n",
            i as u64 + 1
        )
    }

    #[test]
    fn tailer_counts_unit_markers_incrementally() {
        let path = tmp("incremental");
        let mut t = ProgressTailer::new(3);
        // Missing file: zero, no error.
        let _ = std::fs::remove_file(&path);
        assert_eq!(t.observe(&path).unwrap(), 0);
        let mut content = header();
        content.push_str(&sample(0));
        content.push_str(&marker(0));
        std::fs::write(&path, &content).unwrap();
        assert_eq!(t.observe(&path).unwrap(), 1);
        // Appending a partial line does not move the count…
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{{\"t\":\"u\",\"unit\":\"0000000000").unwrap();
        drop(f);
        assert_eq!(t.observe(&path).unwrap(), 1);
        // …until the line completes.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "000002\",\"pos\":1}}").unwrap();
        drop(f);
        assert_eq!(t.observe(&path).unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tailer_survives_truncation_without_going_backwards() {
        let path = tmp("truncate");
        let mut t = ProgressTailer::new(4);
        let full = format!("{}{}{}{}", header(), marker(0), marker(1), marker(2));
        std::fs::write(&path, &full).unwrap();
        assert_eq!(t.observe(&path).unwrap(), 3);
        // A torn re-fetch delivers a shorter prefix: count must hold.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(t.observe(&path).unwrap(), 3);
        // And a later full fetch with one more unit moves it forward.
        std::fs::write(&path, format!("{full}{}", marker(3))).unwrap();
        assert_eq!(t.observe(&path).unwrap(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tailer_never_reports_more_than_the_manifest_size() {
        let path = tmp("cap");
        let mut t = ProgressTailer::new(2);
        // Duplicate markers (resume rewrites) and markers beyond the cap.
        let content = format!(
            "{}{}{}{}{}",
            header(),
            marker(0),
            marker(0),
            marker(1),
            marker(2)
        );
        std::fs::write(&path, &content).unwrap();
        assert_eq!(t.observe(&path).unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }

    /// The satellite property test: random interleavings of partial-line
    /// appends, completions, truncations, and full rewrites must never
    /// drive the reported count backwards or above the manifest size.
    #[test]
    fn property_random_appends_and_truncations_keep_the_count_monotone() {
        let total = 8usize;
        // The canonical byte stream the shard would eventually write.
        let mut full = header();
        for i in 0..total {
            full.push_str(&sample(i));
            full.push_str(&marker(i));
        }
        let full = full.into_bytes();

        let mut state: u64 = 0x5eed_cafe_f00d_0001;
        let mut rand = move |bound: u64| -> u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound.max(1)
        };

        for case in 0..40 {
            let path = tmp(&format!("prop{case}"));
            let _ = std::fs::remove_file(&path);
            let mut t = ProgressTailer::new(total);
            // `written` models the delivered file contents: ops mutate it
            // and rewrite the file whole, exactly like re-fetched copies.
            let mut written: Vec<u8> = Vec::new();
            let mut last = 0usize;
            for _ in 0..30 {
                match rand(4) {
                    // Extend toward the full stream by a random (possibly
                    // line-splitting) number of bytes.
                    0 | 1 => {
                        let remaining = full.len() - written.len();
                        if remaining > 0 {
                            let n = rand(remaining as u64) as usize + 1;
                            written.extend_from_slice(&full[written.len()..written.len() + n]);
                        }
                    }
                    // Torn delivery: truncate to a random prefix.
                    2 => {
                        let keep = rand(written.len() as u64 + 1) as usize;
                        written.truncate(keep);
                    }
                    // Fresh relaunch: restart the stream from scratch at
                    // a random prefix length.
                    _ => {
                        let keep = rand(full.len() as u64 + 1) as usize;
                        written = full[..keep].to_vec();
                    }
                }
                std::fs::write(&path, &written).unwrap();
                let count = t.observe(&path).unwrap();
                assert!(
                    count >= last,
                    "case {case}: count went backwards ({last} -> {count})"
                );
                assert!(
                    count <= total,
                    "case {case}: count {count} exceeds manifest size {total}"
                );
                last = count;
            }
            // Deliver the complete stream: the tailer must converge.
            std::fs::write(&path, &full).unwrap();
            assert_eq!(t.observe(&path).unwrap(), total, "case {case}");
            let _ = std::fs::remove_file(&path);
        }
    }
}
