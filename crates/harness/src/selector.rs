//! Mechanism selection as a product (paper Section 7, ROADMAP item 4).
//!
//! The paper's headline is that **no mechanism dominates**: the winner
//! flips with dataset shape, scale, domain, and ε. This module turns that
//! finding into a usable router. A [`SelectionProfile`] is built from one
//! or more [`AggregatingSink`] summary files (the training data every
//! fleet already emits): per *(domain-dims, shape-class, scale-bucket,
//! ε-bucket)* cell it stores the regret-ranked mechanism list with
//! competitive-tie sets, sample counts, and the tuned free parameters
//! from [`crate::tuning`]'s schedules — so a recommendation carries
//! concrete parameters, not just a name.
//!
//! Profiles serialize to a **versioned, deterministic** line-oriented
//! JSON file: building from the same summary files yields byte-identical
//! output regardless of the order the files are given in (contributions
//! to each group are merged in a content-sorted order, never in input
//! order). `tests/selector.rs` shuffles shards to prove it.
//!
//! Lookup ([`SelectionProfile::lookup`]) answers a [`SelectorQuery`]
//! with the profiled cell when one matches exactly, or the **nearest**
//! same-dimensionality cell otherwise — always labeled with an explicit
//! [`Confidence`] tier so callers (the `recommend` CLI, the release
//! server's `auto` routing) can tell a measured answer from an
//! extrapolated one.

use crate::config::Setting;
use crate::results::parse_domain;
use crate::sink::{read_summary, AggregatingSink};
use crate::tuning::tuned_params_for;
use dpbench_core::Domain;
use dpbench_datasets::{catalog, shape_stats};
use dpbench_stats::{competitive_set_moments, Moments, StreamingSummary};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Profile file format version (bumped on any layout change; readers
/// refuse versions they don't know).
pub const PROFILE_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Cell coordinates
// ---------------------------------------------------------------------------

/// Coarse dataset-shape class, derived from the catalog shape's summary
/// statistics ([`dpbench_datasets::shape_stats`]). Three broad families
/// are enough to capture the paper's "shape decides the winner" effect:
/// near-uniform data favors data-independent mechanisms, spiky/sparse
/// data favors partition-based ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShapeClass {
    /// Aggregate over all shapes — the cell consulted when the caller
    /// doesn't know (or doesn't say) what the data looks like.
    Any,
    /// Near-uniform mass (normalized entropy ≥ 0.95, dense support).
    Flat,
    /// Structured but dense.
    Moderate,
    /// Sparse/spiky: under half the cells carry mass.
    Spiky,
    /// Dataset name not in the catalog; classified conservatively.
    Unknown,
}

impl ShapeClass {
    /// Classify a normalized shape vector.
    pub fn classify(shape: &[f64]) -> ShapeClass {
        let s = shape_stats(shape);
        if s.support_fraction < 0.5 {
            ShapeClass::Spiky
        } else if s.normalized_entropy >= 0.95 {
            ShapeClass::Flat
        } else {
            ShapeClass::Moderate
        }
    }

    /// Classify a catalog dataset by name ([`ShapeClass::Unknown`] when
    /// the name isn't in the catalog).
    pub fn of_dataset(name: &str) -> ShapeClass {
        match catalog::by_name(name) {
            Some(ds) => ShapeClass::classify(&ds.base_shape()),
            None => ShapeClass::Unknown,
        }
    }

    /// Stable serialization token.
    pub fn as_str(self) -> &'static str {
        match self {
            ShapeClass::Any => "any",
            ShapeClass::Flat => "flat",
            ShapeClass::Moderate => "moderate",
            ShapeClass::Spiky => "spiky",
            ShapeClass::Unknown => "unknown",
        }
    }

    fn from_str(s: &str) -> Option<ShapeClass> {
        Some(match s {
            "any" => ShapeClass::Any,
            "flat" => ShapeClass::Flat,
            "moderate" => ShapeClass::Moderate,
            "spiky" => ShapeClass::Spiky,
            "unknown" => ShapeClass::Unknown,
            _ => return None,
        })
    }
}

/// Decimal order of magnitude of a scale: `10^b ≤ scale < 10^(b+1)`.
/// Computed by digit count, so it is exact for every `u64`.
pub fn scale_bucket(scale: u64) -> i32 {
    let mut b = 0i32;
    let mut s = scale.max(1);
    while s >= 10 {
        s /= 10;
        b += 1;
    }
    b
}

/// Decimal order of magnitude of ε: largest `b` with `10^b ≤ eps`.
/// Comparison-based (no `log10`), so boundary values like 0.1 land in
/// their own bucket on every platform.
pub fn eps_bucket(eps: f64) -> i32 {
    let mut b = -18i32;
    while b < 18 && 10f64.powi(b + 1) <= eps {
        b += 1;
    }
    b
}

/// One profiled cell's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Domain dimensionality (1 or 2).
    pub dims: u8,
    /// Dataset shape class ([`ShapeClass::Any`] for the aggregate cell).
    pub shape: ShapeClass,
    /// [`scale_bucket`] of the setting scale.
    pub scale_bucket: i32,
    /// [`eps_bucket`] of the setting ε.
    pub eps_bucket: i32,
}

impl CellKey {
    fn of_setting(setting: &Setting, shape: ShapeClass) -> CellKey {
        CellKey {
            dims: match setting.domain {
                Domain::D1(_) => 1,
                Domain::D2(_, _) => 2,
            },
            shape,
            scale_bucket: scale_bucket(setting.scale),
            eps_bucket: eps_bucket(setting.epsilon),
        }
    }

    /// Representative ε·scale signal of the cell (geometric midpoint of
    /// both bucket ranges), used to look up tuned parameters.
    pub fn signal(&self) -> f64 {
        10f64.powi(self.scale_bucket + self.eps_bucket + 1)
    }
}

// ---------------------------------------------------------------------------
// Profile contents
// ---------------------------------------------------------------------------

/// One mechanism's record within a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MechRecord {
    /// Registry mechanism name.
    pub mechanism: String,
    /// Geometric-mean regret vs the per-setting oracle *within the cell*
    /// (1.0 = this mechanism is the oracle everywhere it was measured).
    pub regret: f64,
    /// Mean error pooled over the cell's settings.
    pub mean_error: f64,
    /// 95th-percentile error (t-digest estimate) pooled over the cell.
    pub p95_error: f64,
    /// Error samples backing this record.
    pub n: u64,
    /// Member of the cell's competitive set (Welch test at Bonferroni α
    /// on the pooled moments fails to separate it from the best mean).
    pub competitive: bool,
    /// Tuned free parameters at the cell's signal level (`"T=10"`,
    /// `"rho=0.7,eta=1"`); `None` for parameter-free mechanisms.
    pub params: Option<String>,
}

/// One profiled cell: the regret-ranked mechanism list.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Ranked best-first: regret ascending, then pooled mean error, then
    /// name (total order — ties cannot reorder across builds).
    pub ranked: Vec<MechRecord>,
    /// Distinct experimental settings that contributed.
    pub settings: u32,
}

impl Cell {
    /// The recommendation: first of the ranked list.
    pub fn winner(&self) -> &MechRecord {
        &self.ranked[0]
    }

    /// Names in the competitive-tie set, ranked order.
    pub fn ties(&self) -> Vec<&str> {
        self.ranked
            .iter()
            .filter(|m| m.competitive)
            .map(|m| m.mechanism.as_str())
            .collect()
    }
}

/// How much measured support a lookup answer has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// The query fell inside a profiled cell.
    Exact,
    /// No cell matched; the nearest same-dimensionality cell answered.
    Near,
}

impl Confidence {
    /// Stable token for JSON/status output.
    pub fn as_str(self) -> &'static str {
        match self {
            Confidence::Exact => "exact",
            Confidence::Near => "near",
        }
    }
}

/// A selection question: "which mechanism for this request".
#[derive(Debug, Clone)]
pub struct SelectorQuery {
    /// Domain of the release.
    pub domain: Domain,
    /// Shape class when the caller knows the dataset (the server always
    /// does); `None` consults the shape-aggregated cells.
    pub shape: Option<ShapeClass>,
    /// Data scale (number of tuples).
    pub scale: u64,
    /// Privacy budget of the release.
    pub epsilon: f64,
}

/// A lookup answer: the cell that decided, plus provenance.
#[derive(Debug, Clone)]
pub struct Recommendation<'a> {
    /// The deciding cell's coordinates.
    pub key: CellKey,
    /// The deciding cell.
    pub cell: &'a Cell,
    /// Measured-vs-extrapolated tier.
    pub confidence: Confidence,
    /// Bucket distance from the query to the deciding cell (0 for
    /// [`Confidence::Exact`]).
    pub distance: u32,
}

impl Recommendation<'_> {
    /// Human/JSON-readable one-line provenance, e.g.
    /// `exact cell dims=1 shape=spiky scale=1e3 eps=1e-1 (4 settings, n=120)`.
    pub fn reason(&self) -> String {
        format!(
            "{} cell dims={} shape={} scale=1e{} eps=1e{} ({} settings, n={})",
            self.confidence.as_str(),
            self.key.dims,
            self.key.shape.as_str(),
            self.key.scale_bucket,
            self.key.eps_bucket,
            self.cell.settings,
            self.cell.winner().n,
        )
    }
}

/// The learned router: every fleet's summary file makes it better.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionProfile {
    /// Profiled cells (includes one [`ShapeClass::Any`] aggregate cell
    /// per (dims, scale-bucket, ε-bucket) alongside the per-shape cells).
    pub cells: BTreeMap<CellKey, Cell>,
    /// Summary files folded in.
    pub sources: u32,
    /// Total error samples across sources.
    pub total_samples: u64,
}

// ---------------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------------

/// Content-sort key for a summary contribution: merging in this order
/// (never input order) is what makes profile building order-invariant.
fn contribution_key(s: &StreamingSummary) -> (u64, u64, u64, u64, u64) {
    (
        s.count(),
        s.mean().to_bits(),
        s.variance().to_bits(),
        s.min().to_bits(),
        s.max().to_bits(),
    )
}

impl SelectionProfile {
    /// Build a profile from any number of summary sinks — typically one
    /// per past fleet. Unlike [`AggregatingSink::merge_from`] this
    /// accepts sinks from **different runs** (different grids, different
    /// fingerprints): selection wants the union of all evidence.
    /// Deterministic in the strongest sense: permuting `sinks` yields a
    /// byte-identical serialized profile.
    pub fn build(sinks: &[AggregatingSink]) -> SelectionProfile {
        // 1. Pool contributions per (algorithm, setting) across sinks,
        //    merging each group's pieces in content-sorted order.
        type GroupKey = (String, String);
        let mut pieces: BTreeMap<GroupKey, (Setting, Vec<&StreamingSummary>)> = BTreeMap::new();
        for sink in sinks {
            for (alg, setting, summary) in sink.groups() {
                pieces
                    .entry((alg.to_string(), setting.to_string()))
                    .or_insert_with(|| (setting.clone(), Vec::new()))
                    .1
                    .push(summary);
            }
        }
        let mut groups: BTreeMap<GroupKey, (Setting, StreamingSummary)> = BTreeMap::new();
        for ((alg, skey), (setting, mut list)) in pieces {
            list.sort_by_key(|s| contribution_key(s));
            let mut merged = StreamingSummary::new();
            for s in list {
                merged.merge(s);
            }
            groups.insert((alg, skey), (setting, merged));
        }

        // 2. Deal each pooled group into its specific cell and the
        //    shape-aggregated twin.
        let mut shape_cache: BTreeMap<String, ShapeClass> = BTreeMap::new();
        type CellGroups = BTreeMap<String, BTreeMap<String, StreamingSummary>>;
        let mut by_cell: BTreeMap<CellKey, CellGroups> = BTreeMap::new();
        for ((alg, skey), (setting, summary)) in &groups {
            let shape = *shape_cache
                .entry(setting.dataset.clone())
                .or_insert_with(|| ShapeClass::of_dataset(&setting.dataset));
            for key in [
                CellKey::of_setting(setting, shape),
                CellKey::of_setting(setting, ShapeClass::Any),
            ] {
                by_cell
                    .entry(key)
                    .or_default()
                    .entry(alg.clone())
                    .or_default()
                    .insert(skey.clone(), summary.clone());
            }
        }

        // 3. Rank each cell.
        let mut cells = BTreeMap::new();
        for (key, algs) in by_cell {
            cells.insert(key, build_cell(&key, &algs));
        }
        SelectionProfile {
            cells,
            sources: sinks.len() as u32,
            total_samples: sinks.iter().map(|s| s.samples_seen()).sum(),
        }
    }

    /// Read each summary file ([`read_summary`]) and [`build`] the
    /// profile. Order of `paths` does not affect the result.
    ///
    /// [`build`]: SelectionProfile::build
    pub fn from_summary_files<P: AsRef<Path>>(paths: &[P]) -> io::Result<SelectionProfile> {
        let mut sinks = Vec::with_capacity(paths.len());
        for p in paths {
            sinks.push(read_summary(p)?);
        }
        Ok(SelectionProfile::build(&sinks))
    }

    // -----------------------------------------------------------------------
    // Lookup
    // -----------------------------------------------------------------------

    /// Answer a query from the profile: the exact cell when the query
    /// lands in one, otherwise the nearest cell of the same domain
    /// dimensionality (distance = scale-bucket gap + ε-bucket gap +
    /// shape-mismatch penalty, ties broken by cell order). `None` when
    /// the profile holds no cell of that dimensionality at all — the
    /// caller falls back to its static default.
    pub fn lookup(&self, q: &SelectorQuery) -> Option<Recommendation<'_>> {
        let dims = match q.domain {
            Domain::D1(_) => 1,
            Domain::D2(_, _) => 2,
        };
        let shape = q.shape.unwrap_or(ShapeClass::Any);
        let target = CellKey {
            dims,
            shape,
            scale_bucket: scale_bucket(q.scale),
            eps_bucket: eps_bucket(q.epsilon),
        };
        if let Some(cell) = self.cells.get(&target) {
            return Some(Recommendation {
                key: target,
                cell,
                confidence: Confidence::Exact,
                distance: 0,
            });
        }
        let mut best: Option<(u32, CellKey, &Cell)> = None;
        for (key, cell) in &self.cells {
            if key.dims != dims {
                continue;
            }
            let shape_penalty = if key.shape == shape {
                0
            } else if key.shape == ShapeClass::Any {
                // The aggregate twin pools every shape: a mild mismatch.
                1
            } else {
                4
            };
            let d = key.scale_bucket.abs_diff(target.scale_bucket)
                + key.eps_bucket.abs_diff(target.eps_bucket)
                + shape_penalty;
            if best.as_ref().map(|(bd, _, _)| d < *bd).unwrap_or(true) {
                best = Some((d, *key, cell));
            }
        }
        best.map(|(distance, key, cell)| Recommendation {
            key,
            cell,
            confidence: Confidence::Near,
            distance,
        })
    }

    // -----------------------------------------------------------------------
    // Serialization
    // -----------------------------------------------------------------------

    /// Serialize as versioned line-oriented JSON (one header line + one
    /// line per cell, cells in key order, floats in shortest round-trip
    /// form). Deterministic: equal profiles serialize to equal bytes.
    pub fn write<W: Write>(&self, out: &mut W) -> io::Result<()> {
        writeln!(
            out,
            "{{\"t\":\"dpbench-profile\",\"v\":{PROFILE_VERSION},\"cells\":{},\"sources\":{},\"samples\":{}}}",
            self.cells.len(),
            self.sources,
            self.total_samples
        )?;
        for (key, cell) in &self.cells {
            let ranked: Vec<String> = cell
                .ranked
                .iter()
                .map(|m| {
                    let params = match &m.params {
                        Some(p) => format!(",\"params\":\"{p}\""),
                        None => String::new(),
                    };
                    format!(
                        "{{\"m\":\"{}\",\"regret\":{},\"mean\":{},\"p95\":{},\"n\":{},\"comp\":{}{params}}}",
                        m.mechanism, m.regret, m.mean_error, m.p95_error, m.n, m.competitive
                    )
                })
                .collect();
            writeln!(
                out,
                "{{\"t\":\"cell\",\"dims\":{},\"shape\":\"{}\",\"scale_b\":{},\"eps_b\":{},\"settings\":{},\"ranked\":[{}]}}",
                key.dims,
                key.shape.as_str(),
                key.scale_bucket,
                key.eps_bucket,
                cell.settings,
                ranked.join(",")
            )?;
        }
        out.flush()
    }

    /// [`write`](SelectionProfile::write) to a file.
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut out = BufWriter::new(File::create(path)?);
        self.write(&mut out)
    }

    /// Strict reader: any malformed line, unknown version, or cell-count
    /// mismatch is `InvalidData` with a line number — a router must
    /// never run on a silently half-parsed profile.
    pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<SelectionProfile> {
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let header = match lines.next() {
            Some(l) => l?,
            None => return Err(bad(1, "empty profile file")),
        };
        if field(&header, "\"t\"") != Some("\"dpbench-profile\"".into()) {
            return Err(bad(1, "not a dpbench profile header"));
        }
        let version: u32 = field(&header, "\"v\"")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(1, "missing profile version"))?;
        if version != PROFILE_VERSION {
            return Err(bad(1, &format!("unsupported profile version {version}")));
        }
        let n_cells: usize = parse_field(&header, "\"cells\"", 1)?;
        let sources: u32 = parse_field(&header, "\"sources\"", 1)?;
        let total_samples: u64 = parse_field(&header, "\"samples\"", 1)?;

        let mut cells = BTreeMap::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let line = line?;
            if line.trim().is_empty() {
                return Err(bad(lineno, "blank line inside profile"));
            }
            let (key, cell) = parse_cell(&line, lineno)?;
            if cells.insert(key, cell).is_some() {
                return Err(bad(lineno, "duplicate cell"));
            }
        }
        if cells.len() != n_cells {
            return Err(bad(
                1,
                &format!("header says {n_cells} cells, file has {}", cells.len()),
            ));
        }
        Ok(SelectionProfile {
            cells,
            sources,
            total_samples,
        })
    }
}

/// Rank one cell's algorithms: regret from per-setting mean errors (NaN
/// marks a setting an algorithm didn't run — [`geometric_mean_regret`]
/// skips those), pooled moments for the competitive set and the
/// mean/p95/n columns.
///
/// [`geometric_mean_regret`]: dpbench_stats::geometric_mean_regret
fn build_cell(key: &CellKey, algs: &BTreeMap<String, BTreeMap<String, StreamingSummary>>) -> Cell {
    // Union of settings in the cell, in key order.
    let mut setting_keys: Vec<&String> = Vec::new();
    for per_setting in algs.values() {
        for skey in per_setting.keys() {
            if !setting_keys.contains(&skey) {
                setting_keys.push(skey);
            }
        }
    }
    setting_keys.sort();

    let names: Vec<&String> = algs.keys().collect();
    let errors: Vec<Vec<f64>> = names
        .iter()
        .map(|name| {
            setting_keys
                .iter()
                .map(|skey| algs[*name].get(*skey).map(|s| s.mean()).unwrap_or(f64::NAN))
                .collect()
        })
        .collect();
    let regrets = dpbench_stats::geometric_mean_regret(&errors)
        .expect("cell matrix is rectangular by construction");

    // Pool each algorithm's settings (content-sorted merge order again).
    let pooled: Vec<StreamingSummary> = names
        .iter()
        .map(|name| {
            let mut list: Vec<&StreamingSummary> = algs[*name].values().collect();
            list.sort_by_key(|s| contribution_key(s));
            let mut merged = StreamingSummary::new();
            for s in list {
                merged.merge(s);
            }
            merged
        })
        .collect();
    let moments: Vec<Moments> = pooled
        .iter()
        .map(|s| Moments {
            n: s.count(),
            mean: s.mean(),
            variance: s.variance(),
        })
        .collect();
    let competitive = competitive_set_moments(&moments);

    let mut ranked: Vec<MechRecord> = names
        .iter()
        .enumerate()
        .map(|(i, name)| MechRecord {
            mechanism: (*name).clone(),
            regret: regrets[i],
            mean_error: pooled[i].mean(),
            p95_error: pooled[i].to_summary().p95,
            n: pooled[i].count(),
            competitive: competitive.contains(&i),
            params: tuned_params_for(name, key.signal()),
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.regret
            .total_cmp(&b.regret)
            .then(a.mean_error.total_cmp(&b.mean_error))
            .then(a.mechanism.cmp(&b.mechanism))
    });
    Cell {
        ranked,
        settings: setting_keys.len() as u32,
    }
}

// ---------------------------------------------------------------------------
// Parsing helpers (same strictness discipline as `sink::read_summary`)
// ---------------------------------------------------------------------------

fn bad(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("profile line {lineno}: {msg}"),
    )
}

/// Extract the raw token after `"key":`. The key is matched only where
/// a key can actually occur — at the top level of the record object,
/// outside any quoted string — so a key-looking pattern inside an
/// earlier string value (e.g. a params string containing `"n":`) can
/// never match. Values are either quoted strings (returned with
/// quotes), numbers, or booleans — the profile writer never nests
/// objects inside these fields.
fn field(line: &str, key: &str) -> Option<String> {
    let pat = format!("{key}:");
    let bytes = line.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                if depth == 1 && line[i..].starts_with(&pat) {
                    return value_token(&line[i + pat.len()..]);
                }
                i = skip_string(bytes, i)?;
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Advance past the quoted string opening at `bytes[i] == b'"'`;
/// returns the index just past the closing quote, `None` if the string
/// never terminates.
fn skip_string(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return Some(j + 1),
            _ => j += 1,
        }
    }
    None
}

/// The raw value token from the start of `rest` up to the next `,`, `}`
/// or `]` that is both top-level and outside quotes — commas inside a
/// quoted value (AHP's `"rho=…,eta=…"` params) don't cut it short.
fn value_token(rest: &str) -> Option<String> {
    let bytes = rest.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => i = skip_string(bytes, i)?,
            b'[' | b'{' => {
                depth += 1;
                i += 1;
            }
            b']' | b'}' if depth > 0 => {
                depth -= 1;
                i += 1;
            }
            b',' | b'}' | b']' if depth == 0 => return Some(rest[..i].to_string()),
            _ => i += 1,
        }
    }
    Some(rest.to_string())
}

/// Split the body of a JSON array of flat objects into one complete
/// `{…}` slice per record, tracking quoted strings so a `},{` sequence
/// inside a value can never split a record. `None` on anything that
/// isn't a comma-separated list of objects.
fn split_records(body: &str) -> Option<Vec<&str>> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if depth > 0 => i = skip_string(bytes, i)?,
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
                if depth == 0 {
                    out.push(&body[start..=i]);
                }
                i += 1;
            }
            b',' if depth == 0 => i += 1,
            _ if depth == 0 => return None,
            _ => i += 1,
        }
    }
    (depth == 0).then_some(out)
}

fn parse_field<T: std::str::FromStr>(line: &str, key: &str, lineno: usize) -> io::Result<T> {
    field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad(lineno, &format!("missing or malformed {key}")))
}

fn unquote(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

fn parse_cell(line: &str, lineno: usize) -> io::Result<(CellKey, Cell)> {
    if field(line, "\"t\"").as_deref() != Some("\"cell\"") {
        return Err(bad(lineno, "expected a cell record"));
    }
    let shape_tok =
        field(line, "\"shape\"").ok_or_else(|| bad(lineno, "missing or malformed \"shape\""))?;
    let shape = unquote(&shape_tok)
        .and_then(ShapeClass::from_str)
        .ok_or_else(|| bad(lineno, "unknown shape class"))?;
    let key = CellKey {
        dims: parse_field(line, "\"dims\"", lineno)?,
        shape,
        scale_bucket: parse_field(line, "\"scale_b\"", lineno)?,
        eps_bucket: parse_field(line, "\"eps_b\"", lineno)?,
    };
    let settings: u32 = parse_field(line, "\"settings\"", lineno)?;

    let arr_tok = field(line, "\"ranked\"").ok_or_else(|| bad(lineno, "missing ranked list"))?;
    let body = arr_tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| bad(lineno, "malformed ranked list"))?;
    let mut ranked = Vec::new();
    for obj in split_records(body).ok_or_else(|| bad(lineno, "malformed ranked list"))? {
        let mech_tok =
            field(obj, "\"m\"").ok_or_else(|| bad(lineno, "mech record missing name"))?;
        let mechanism = unquote(&mech_tok)
            .ok_or_else(|| bad(lineno, "mech name not a string"))?
            .to_string();
        let params = match field(obj, "\"params\"") {
            Some(tok) => Some(
                unquote(&tok)
                    .ok_or_else(|| bad(lineno, "params not a string"))?
                    .to_string(),
            ),
            None => None,
        };
        ranked.push(MechRecord {
            mechanism,
            regret: parse_field(obj, "\"regret\"", lineno)?,
            mean_error: parse_field(obj, "\"mean\"", lineno)?,
            p95_error: parse_field(obj, "\"p95\"", lineno)?,
            n: parse_field(obj, "\"n\"", lineno)?,
            competitive: parse_field(obj, "\"comp\"", lineno)?,
            params,
        });
    }
    if ranked.is_empty() {
        return Err(bad(lineno, "cell with no mechanisms"));
    }
    Ok((key, Cell { ranked, settings }))
}

/// Parse the `--domain` form used across the CLI (`4096` or `128x128`).
pub fn parse_query_domain(s: &str) -> Option<Domain> {
    parse_domain(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ManifestUnit, UnitId};
    use crate::results::ErrorSample;
    use crate::sink::ResultSink;

    fn setting(dataset: &str, scale: u64, eps: f64) -> Setting {
        Setting {
            dataset: dataset.into(),
            scale,
            domain: Domain::D1(256),
            epsilon: eps,
        }
    }

    /// Deterministic fabricated errors: alg "A" best at small scale,
    /// alg "B" best at large scale.
    fn fabricate(sink: &mut AggregatingSink, alg: &str, s: &Setting, base: f64) {
        let samples: Vec<ErrorSample> = (0..8)
            .map(|trial| ErrorSample {
                algorithm: alg.into(),
                setting: s.clone(),
                sample: 0,
                trial,
                error: base * (1.0 + 0.02 * (trial % 4) as f64),
            })
            .collect();
        let unit = ManifestUnit {
            id: UnitId(0),
            pos: 0,
            algorithm: alg.into(),
            setting: s.clone(),
            sample: 0,
        };
        sink.unit_complete(&unit, &samples).unwrap();
    }

    fn two_regime_profile() -> SelectionProfile {
        let mut sink = AggregatingSink::new();
        let small = setting("MEDCOST", 1_000, 0.1);
        let large = setting("MEDCOST", 1_000_000, 0.1);
        fabricate(&mut sink, "A", &small, 0.01);
        fabricate(&mut sink, "B", &small, 0.50);
        fabricate(&mut sink, "A", &large, 0.20);
        fabricate(&mut sink, "B", &large, 0.002);
        SelectionProfile::build(std::slice::from_ref(&sink))
    }

    #[test]
    fn buckets_are_exact_decades() {
        assert_eq!(scale_bucket(1), 0);
        assert_eq!(scale_bucket(999), 2);
        assert_eq!(scale_bucket(1_000), 3);
        assert_eq!(scale_bucket(10_000_000), 7);
        assert_eq!(eps_bucket(0.1), -1);
        assert_eq!(eps_bucket(0.09), -2);
        assert_eq!(eps_bucket(1.0), 0);
        assert_eq!(eps_bucket(10.0), 1);
    }

    #[test]
    fn winner_flips_across_cells() {
        let p = two_regime_profile();
        let q_small = SelectorQuery {
            domain: Domain::D1(256),
            shape: None,
            scale: 2_000,
            epsilon: 0.1,
        };
        let q_large = SelectorQuery {
            domain: Domain::D1(256),
            shape: None,
            scale: 3_000_000,
            epsilon: 0.1,
        };
        let r_small = p.lookup(&q_small).unwrap();
        let r_large = p.lookup(&q_large).unwrap();
        assert_eq!(r_small.confidence, Confidence::Exact);
        assert_eq!(r_small.cell.winner().mechanism, "A");
        assert_eq!(r_large.cell.winner().mechanism, "B");
        // Within their winning cells, the winner has regret 1.
        assert!((r_small.cell.winner().regret - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_cell_fallback_is_labeled() {
        let p = two_regime_profile();
        // ε two decades away from anything profiled.
        let q = SelectorQuery {
            domain: Domain::D1(256),
            shape: None,
            scale: 2_000,
            epsilon: 10.0,
        };
        let r = p.lookup(&q).unwrap();
        assert_eq!(r.confidence, Confidence::Near);
        assert!(r.distance >= 2, "distance {}", r.distance);
        assert!(r.reason().starts_with("near cell"), "{}", r.reason());
        // 2-D queries have no cells at all → None.
        let q2 = SelectorQuery {
            domain: Domain::D2(16, 16),
            shape: None,
            scale: 2_000,
            epsilon: 0.1,
        };
        assert!(p.lookup(&q2).is_none());
    }

    #[test]
    fn profile_roundtrips_byte_identically() {
        let p = two_regime_profile();
        let dir = std::env::temp_dir().join(format!("dpbench-selector-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        p.write_file(&path).unwrap();
        let bytes1 = std::fs::read(&path).unwrap();
        let reread = SelectionProfile::read_file(&path).unwrap();
        assert_eq!(p, reread);
        reread.write_file(&path).unwrap();
        let bytes2 = std::fs::read(&path).unwrap();
        assert_eq!(bytes1, bytes2, "write → read → write must be stable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_refuses_corruption() {
        let p = two_regime_profile();
        let dir = std::env::temp_dir().join(format!("dpbench-selector-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        p.write_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Unknown version.
        let bumped = text.replacen("\"v\":1", "\"v\":99", 1);
        std::fs::write(&path, &bumped).unwrap();
        assert!(SelectionProfile::read_file(&path).is_err());
        // Truncated cell list (header count mismatch).
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        assert!(SelectionProfile::read_file(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tuned_params_ride_along() {
        let mut sink = AggregatingSink::new();
        let s = setting("MEDCOST", 1_000, 0.1);
        fabricate(&mut sink, "MWEM*", &s, 0.01);
        fabricate(&mut sink, "IDENTITY", &s, 0.50);
        let p = SelectionProfile::build(std::slice::from_ref(&sink));
        let q = SelectorQuery {
            domain: Domain::D1(256),
            shape: Some(ShapeClass::of_dataset("MEDCOST")),
            scale: 1_000,
            epsilon: 0.1,
        };
        let r = p.lookup(&q).unwrap();
        let w = r.cell.winner();
        assert_eq!(w.mechanism, "MWEM*");
        // signal = 10^(3 + -1 + 1) = 1000 → mid-schedule T.
        assert_eq!(w.params.as_deref(), Some("T=10"));
        let identity = r.cell.ranked.iter().find(|m| m.mechanism == "IDENTITY");
        assert!(identity.unwrap().params.is_none());
    }

    /// AHP's tuned params contain a comma (`rho=…,eta=…`); the reader
    /// must not cut the quoted value at it (regression: the old scanner
    /// split on any top-level comma and rejected its own output).
    #[test]
    fn ahp_comma_params_roundtrip() {
        let mut sink = AggregatingSink::new();
        let s = setting("MEDCOST", 1_000, 0.1);
        fabricate(&mut sink, "AHP*", &s, 0.01);
        fabricate(&mut sink, "IDENTITY", &s, 0.50);
        let p = SelectionProfile::build(std::slice::from_ref(&sink));
        let cell = p.cells.values().next().unwrap();
        let ahp = cell.ranked.iter().find(|m| m.mechanism == "AHP*").unwrap();
        let params = ahp.params.as_deref().expect("AHP* carries tuned params");
        assert!(
            params.contains(','),
            "schedule params are comma-joined: {params}"
        );

        let dir = std::env::temp_dir().join(format!("dpbench-selector-ahp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        p.write_file(&path).unwrap();
        let bytes1 = std::fs::read(&path).unwrap();
        let reread = SelectionProfile::read_file(&path).unwrap();
        assert_eq!(p, reread);
        reread.write_file(&path).unwrap();
        assert_eq!(bytes1, std::fs::read(&path).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Keys are matched only at top level outside strings: a value that
    /// happens to contain a key-looking pattern must not shadow the
    /// real field, and commas inside quoted values don't end a token.
    #[test]
    fn field_scanner_is_string_aware() {
        let line = "{\"t\":\"cell\",\"note\":\"fake \\\"dims\\\": 9,\",\"dims\":2}";
        assert_eq!(field(line, "\"dims\"").as_deref(), Some("2"));
        assert_eq!(
            field(line, "\"note\"").as_deref(),
            Some("\"fake \\\"dims\\\": 9,\"")
        );
        let rec = "{\"m\":\"AHP*\",\"n\":64,\"params\":\"rho=0.85,eta=1.5\"}";
        assert_eq!(field(rec, "\"n\"").as_deref(), Some("64"));
        assert_eq!(
            field(rec, "\"params\"").as_deref(),
            Some("\"rho=0.85,eta=1.5\"")
        );
        assert_eq!(
            split_records("{\"a\":1},{\"b\":\"},{\"}").map(|v| v.len()),
            Some(2)
        );
        assert!(split_records("{\"a\":1}garbage").is_none());
    }
}
