//! One-command shard fleets: spawn, monitor, retry, and merge.
//!
//! PR 3 made sharded runs *possible* — `dpbench run --shard i/k` writes a
//! per-shard JSONL ledger whose union is bit-identical to a one-shot run —
//! but operating a fleet meant k terminals, hand-watching exits, and a
//! manual `merge`. This module is the driver that makes it one command:
//!
//! 1. expand the manifest **once** and deal it into `k` round-robin
//!    shards ([`RunManifest::shard`]);
//! 2. spawn one child process per shard through a [`ShardLauncher`]
//!    (the CLI launches `dpbench run --shard i/k --out <shard ledger>`);
//! 3. wait for every child; a shard whose process failed **or** whose
//!    ledger is missing completed units is relaunched with `--resume`,
//!    continuing from its own ledger — up to
//!    [`FleetOptions::max_attempts`] rounds;
//! 4. once every shard ledger is complete, k-way stream-merge them into
//!    the canonical output ([`merge_jsonl`]) and verify the merged
//!    ledger covers the full manifest.
//!
//! Because per-trial RNG streams derive from unit coordinates, the merged
//! fleet output is **byte-identical** to an uninterrupted single-process
//! run — even when shards crashed and were resumed along the way. `diff`
//! against a one-shot file is a complete correctness check, and CI's
//! `fleet-smoke` job runs exactly that (including a kill-one-shard
//! drill).
//!
//! Shard ledgers are left in place after a successful merge: they are
//! the fleet's crash record, and re-running the fleet over them is a
//! cheap no-op (every shard reports complete, only the merge re-runs).

use crate::manifest::RunManifest;
use crate::sink::{merge_jsonl, read_ledger};
use std::collections::HashSet;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::Child;

/// How a fleet run is conducted.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of shard processes (`k` in `--shard i/k`).
    pub procs: usize,
    /// Total launch rounds allowed per shard (first attempt + retries).
    pub max_attempts: usize,
    /// Print per-shard progress lines to stderr.
    pub verbose: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            procs: 2,
            max_attempts: 3,
            verbose: false,
        }
    }
}

/// Spawns one shard process. Implementations decide the command line;
/// the driver decides *when* to launch, whether to pass resume, and what
/// to do with the exit status.
pub trait ShardLauncher {
    /// Launch shard `index` of `procs`, writing its ledger to `ledger`.
    /// `resume` is true when a prior ledger holds completed units to
    /// skip; `attempt` counts launch rounds from 0.
    fn launch(
        &self,
        index: usize,
        procs: usize,
        ledger: &Path,
        resume: bool,
        attempt: usize,
    ) -> io::Result<Child>;
}

/// What happened to one shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index in `0..procs`.
    pub index: usize,
    /// The shard's ledger file.
    pub ledger: PathBuf,
    /// Launch rounds used (0 when a pre-existing ledger was already
    /// complete).
    pub attempts: usize,
    /// True when any attempt resumed from a partial ledger.
    pub resumed: bool,
    /// Units this shard was responsible for.
    pub units: usize,
}

/// What the whole fleet did.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard outcomes, by shard index.
    pub shards: Vec<ShardOutcome>,
    /// Units in the merged output (= the full manifest).
    pub merged_units: usize,
    /// Total child launches across all rounds.
    pub launches: usize,
}

/// Canonical shard-ledger path for a merged output path: `out.jsonl` →
/// `out.shard3.jsonl` (the `.jsonl` suffix stays last so every ledger
/// tool recognizes the file).
pub fn shard_ledger_path(out: &Path, index: usize) -> PathBuf {
    let name = out
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    out.with_file_name(format!("{base}.shard{index}.jsonl"))
}

/// Canonical shard *summary* (mergeable sketch) path: `out.jsonl` →
/// `out.shard3.agg.jsonl`.
pub fn shard_summary_path(out: &Path, index: usize) -> PathBuf {
    let ledger = shard_ledger_path(out, index);
    let name = ledger
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let base = name.strip_suffix(".jsonl").unwrap_or(&name);
    ledger.with_file_name(format!("{base}.agg.jsonl"))
}

/// Where one shard stands before (re)launching.
enum ShardState {
    /// No usable ledger — launch fresh.
    Fresh,
    /// A matching partial ledger exists — launch with resume.
    Partial,
    /// Every unit of the shard is already in the ledger.
    Complete,
}

/// Inspect a shard ledger. Corruption and foreign-run ledgers are hard
/// errors (the fleet never silently discards or overwrites data that
/// does not belong to this run); an empty/absent file means fresh.
fn shard_state(path: &Path, shard: &RunManifest) -> io::Result<ShardState> {
    match std::fs::metadata(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ShardState::Fresh),
        Err(e) => return Err(e),
        Ok(m) if m.len() == 0 => return Ok(ShardState::Fresh),
        Ok(_) => {}
    }
    let ledger = match read_ledger(path) {
        Ok(l) => l,
        // A child killed while its very first write was in flight leaves
        // a non-empty file holding only a torn fragment (no well-formed
        // record). That is a fresh shard — relaunch and let the child's
        // `JsonlSink::create` truncate it — not corruption to abort on.
        Err(_) if crate::sink::ledger_is_effectively_empty(path)? => return Ok(ShardState::Fresh),
        Err(e) => {
            return Err(io::Error::new(
                e.kind(),
                format!("shard ledger {} is unreadable: {e}", path.display()),
            ))
        }
    };
    if ledger.fingerprint != shard.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard ledger {} belongs to a different run (fingerprint mismatch); \
                 move it aside before launching this fleet",
                path.display()
            ),
        ));
    }
    let complete = shard.units.iter().all(|u| ledger.done.contains(&u.id));
    Ok(if complete {
        ShardState::Complete
    } else {
        ShardState::Partial
    })
}

/// Run the whole fleet: spawn `k` shard processes, monitor them, retry
/// failed shards with resume, then stream-merge the shard ledgers into
/// `out` and verify the merged ledger covers the manifest. See the
/// module docs for the exact protocol.
pub fn run_fleet(
    manifest: &RunManifest,
    launcher: &dyn ShardLauncher,
    out: &Path,
    opts: &FleetOptions,
) -> io::Result<FleetReport> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    if opts.procs == 0 {
        return Err(invalid("fleet needs at least one process".into()));
    }
    if opts.max_attempts == 0 {
        return Err(invalid("fleet needs at least one launch attempt".into()));
    }
    let shards: Vec<RunManifest> = (0..opts.procs)
        .map(|i| manifest.shard(i, opts.procs))
        .collect();
    let paths: Vec<PathBuf> = (0..opts.procs).map(|i| shard_ledger_path(out, i)).collect();
    let mut outcomes: Vec<ShardOutcome> = (0..opts.procs)
        .map(|i| ShardOutcome {
            index: i,
            ledger: paths[i].clone(),
            attempts: 0,
            resumed: false,
            units: shards[i].len(),
        })
        .collect();
    let mut launches = 0;

    for round in 0..opts.max_attempts {
        // Which shards still need work? (Re-checked every round: a child
        // that died *after* finishing its ledger counts as complete.)
        let mut pending: Vec<(usize, bool)> = Vec::new(); // (shard, resume)
        for i in 0..opts.procs {
            match shard_state(&paths[i], &shards[i])? {
                ShardState::Complete => {}
                ShardState::Fresh => pending.push((i, false)),
                ShardState::Partial => pending.push((i, true)),
            }
        }
        if pending.is_empty() {
            break;
        }
        let mut children: Vec<(usize, Child)> = Vec::with_capacity(pending.len());
        for &(i, resume) in &pending {
            if opts.verbose {
                eprintln!(
                    "[fleet] round {round}: launching shard {i}/{} ({} units{})",
                    opts.procs,
                    shards[i].len(),
                    if resume { ", resuming" } else { "" }
                );
            }
            outcomes[i].attempts += 1;
            outcomes[i].resumed |= resume;
            launches += 1;
            children.push((i, launcher.launch(i, opts.procs, &paths[i], resume, round)?));
        }
        // All children run concurrently; collect every exit before
        // deciding anything (sequential waits are fine — the set only
        // finishes when its slowest member does).
        for (i, mut child) in children {
            let status = child.wait()?;
            if opts.verbose && !status.success() {
                eprintln!("[fleet] shard {i} exited with {status}; will verify its ledger");
            }
            // Exit status is advisory: the ledger is the truth. A failed
            // shard is retried next round; a shard that finished its
            // ledger before dying is done.
        }
    }

    // Every shard must be complete now.
    for i in 0..opts.procs {
        if !matches!(shard_state(&paths[i], &shards[i])?, ShardState::Complete) {
            return Err(io::Error::other(format!(
                "shard {i} did not complete after {} attempt(s); its partial \
                 ledger is at {} (re-run the fleet to continue from it)",
                outcomes[i].attempts,
                paths[i].display()
            )));
        }
    }

    // K-way stream-merge into the canonical output, then prove coverage.
    let mut writer = std::io::BufWriter::new(std::fs::File::create(out)?);
    merge_jsonl(&paths, &mut writer)?;
    writer.flush()?;
    let merged = read_ledger(out)?;
    if merged.fingerprint != manifest.fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "merged fleet output carries the wrong fingerprint",
        ));
    }
    let missing: Vec<String> = manifest
        .units
        .iter()
        .filter(|u| !merged.done.contains(&u.id))
        .map(|u| u.id.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "merged fleet output is missing {} unit(s): {}",
                missing.len(),
                missing.join(", ")
            ),
        ));
    }
    // Paranoia: the merge must not have invented units either.
    let known: HashSet<_> = manifest.units.iter().map(|u| u.id).collect();
    if merged.done.iter().any(|id| !known.contains(id)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "merged fleet output contains units outside the manifest",
        ));
    }
    Ok(FleetReport {
        shards: outcomes,
        merged_units: manifest.len(),
        launches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, WorkloadSpec};
    use dpbench_core::{Domain, Loss};
    use dpbench_datasets::catalog;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            datasets: vec![catalog::by_name("MEDCOST").unwrap()],
            scales: vec![10_000],
            domains: vec![Domain::D1(128)],
            epsilons: vec![0.5],
            algorithms: vec!["IDENTITY".into(), "UNIFORM".into()],
            n_samples: 1,
            n_trials: 2,
            workload: WorkloadSpec::Prefix,
            loss: Loss::L2,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpbench-fleet-mod-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn shard_ledger_paths_keep_the_jsonl_suffix() {
        let out = PathBuf::from("/tmp/results/fleet.jsonl");
        assert_eq!(
            shard_ledger_path(&out, 0),
            PathBuf::from("/tmp/results/fleet.shard0.jsonl")
        );
        assert_eq!(
            shard_ledger_path(Path::new("run"), 3),
            PathBuf::from("run.shard3.jsonl")
        );
    }

    /// A launcher that never spawns anything — exercises the driver's
    /// completeness handling around pre-built ledgers.
    struct NoopLauncher;

    impl ShardLauncher for NoopLauncher {
        fn launch(
            &self,
            _index: usize,
            _procs: usize,
            _ledger: &Path,
            _resume: bool,
            _attempt: usize,
        ) -> io::Result<Child> {
            // A no-op child: `true` exits 0 immediately without touching
            // the ledger, modeling a worker that dies before any unit.
            std::process::Command::new("true").spawn()
        }
    }

    #[test]
    fn fleet_over_prebuilt_ledgers_merges_without_launching() {
        use crate::runner::Runner;
        use crate::sink::JsonlSink;
        let out = tmp("prebuilt.jsonl");
        let manifest = Runner::new(tiny_config()).manifest();
        for i in 0..2 {
            let path = shard_ledger_path(&out, i);
            let _ = std::fs::remove_file(&path);
            let runner = Runner::new(tiny_config());
            let mut sink = JsonlSink::create(&path).unwrap();
            runner
                .run_with_sink(&manifest.shard(i, 2), &mut sink)
                .unwrap();
        }
        let opts = FleetOptions {
            procs: 2,
            max_attempts: 1,
            verbose: false,
        };
        let report = run_fleet(&manifest, &NoopLauncher, &out, &opts).unwrap();
        assert_eq!(report.launches, 0, "complete shards must not relaunch");
        assert_eq!(report.merged_units, manifest.len());
        assert!(report.shards.iter().all(|s| s.attempts == 0));
        // Merged output equals a one-shot run byte for byte.
        let ref_path = tmp("prebuilt-ref.jsonl");
        let _ = std::fs::remove_file(&ref_path);
        let runner = Runner::new(tiny_config());
        let mut reference = JsonlSink::create(&ref_path).unwrap();
        runner.run_with_sink(&manifest, &mut reference).unwrap();
        drop(reference);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&ref_path).unwrap()
        );
        for p in [&out, &ref_path] {
            let _ = std::fs::remove_file(p);
        }
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_ledger_path(&out, i));
        }
    }

    #[test]
    fn fleet_reports_a_shard_that_never_completes() {
        let out = tmp("stuck.jsonl");
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_ledger_path(&out, i));
        }
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let opts = FleetOptions {
            procs: 2,
            max_attempts: 2,
            verbose: false,
        };
        let err = run_fleet(&manifest, &NoopLauncher, &out, &opts).unwrap_err();
        assert!(
            err.to_string().contains("did not complete"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn torn_header_only_ledger_counts_as_fresh_not_corrupt() {
        use std::io::Write;
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let shard = manifest.shard(0, 2);
        // A child killed during its very first write: the file holds
        // only a torn header fragment. The fleet must relaunch fresh.
        let path = tmp("torn-header.jsonl");
        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "{{\"t\":\"run\",\"fp\":\"5b51").unwrap();
        drop(f);
        assert!(matches!(
            shard_state(&path, &shard).unwrap(),
            ShardState::Fresh
        ));
        // But a ledger with real content and a damaged header stays a
        // hard error — that is corruption, not a clean first-write kill.
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "NOT A HEADER").unwrap();
        writeln!(
            f,
            "{{\"t\":\"u\",\"unit\":\"{}\",\"pos\":{}}}",
            shard.units[0].id, shard.units[0].pos
        )
        .unwrap();
        drop(f);
        assert!(shard_state(&path, &shard).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fleet_refuses_a_foreign_shard_ledger() {
        use crate::runner::Runner;
        use crate::sink::JsonlSink;
        let out = tmp("foreign.jsonl");
        let shard0 = shard_ledger_path(&out, 0);
        let _ = std::fs::remove_file(&shard0);
        // Shard 0's path holds a ledger from a *different* grid.
        let mut other = tiny_config();
        other.epsilons = vec![0.9];
        let other_runner = Runner::new(other);
        let mut sink = JsonlSink::create(&shard0).unwrap();
        other_runner
            .run_with_sink(&other_runner.manifest(), &mut sink)
            .unwrap();
        drop(sink);
        let manifest = crate::manifest::RunManifest::from_config(&tiny_config());
        let err = run_fleet(&manifest, &NoopLauncher, &out, &FleetOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains("different run"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_file(&shard0);
    }
}
