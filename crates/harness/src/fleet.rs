//! Shard fleets over pluggable transports: spawn, watch, copy back,
//! retry, and merge.
//!
//! PR 3 made sharded runs *possible* (`dpbench run --shard i/k` writes a
//! per-shard JSONL ledger whose union is bit-identical to a one-shot
//! run); PR 4 added the one-command driver over k local child
//! processes. This module generalizes the driver to **k shards over any
//! transport**:
//!
//! * [`driver`] — the transport-agnostic conductor: round-robin shard
//!   manifests, launch rounds with retry/resume, the copy-back protocol
//!   (fetch → validate with the strict readers → re-dispatch on torn or
//!   missing artifacts), stall detection, live progress, and the final
//!   k-way stream-merge with coverage verification.
//! * [`transport`] — how shards actually run: local child processes
//!   ([`LocalTransport`] over a [`ShardLauncher`]), an arbitrary
//!   templated wrapper command line ([`CommandTransport`] — covers
//!   `ssh`, `docker run`, and `sh -c` without the driver knowing any of
//!   them), and a deterministic fault injector ([`FaultyTransport`])
//!   for the crash/hang/torn-copy-back test matrix.
//! * [`progress`] — the monotone units-done tailer behind the live
//!   per-shard progress lines.
//!
//! The invariant everything here protects: the merged fleet output is
//! **byte-identical** to an uninterrupted single-process run, whatever
//! the transport did along the way.

pub mod driver;
pub mod progress;
pub mod transport;

pub use driver::{
    run_fleet, run_fleet_with, shard_ledger_path, shard_summary_path, steal_ledger_path,
    FleetOptions, FleetReport, ShardOutcome, StealEvent,
};
pub use progress::ProgressTailer;
pub use transport::{
    sh_quote, Artifact, CommandTransport, FaultyTransport, FetchFault, FetchOutcome, LaunchFault,
    LaunchSpec, LocalTransport, ProcessHandle, RangedFetch, RemotePaths, ShardCommandBuilder,
    ShardHandle, ShardLauncher, ShardStatus, ShardTransport, StealSpec,
};
