//! The paper's motivating scenario (Section 1): a data owner at a census
//! bureau wants to publish a 2-D histogram over (age × salary)-style
//! attributes under differential privacy and must *choose an algorithm
//! without looking at the data* (looking would itself leak).
//!
//! This example walks the paper's guidance: compute the signal level
//! (ε·scale), compare the shortlisted algorithms on *public* proxy shapes,
//! then apply the chosen algorithm once to the private data.
//!
//! Run with: `cargo run --release --example census_release`

use dpbench::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let epsilon = 0.1;

    // The "private" table: a capital-gain × capital-loss style 2-D
    // histogram (the ADULT-2D benchmark shape), 32,561 records, 64×64.
    let dataset = dpbench::datasets::catalog::by_name("ADULT-2D").expect("catalog");
    let domain = Domain::D2(64, 64);
    let private = DataGenerator::new().generate(&dataset, domain, 32_561, &mut rng);
    let workload = Workload::random_ranges(domain, 2000, &mut rng);

    // Step 1: signal diagnosis (paper Section 8, "lessons for
    // practitioners"). ε·scale ≈ 3.2k → low-signal regime: data-dependent
    // algorithms are worth considering.
    let signal = epsilon * private.scale();
    println!(
        "signal = ε·scale = {signal:.0} → {} regime",
        if signal < 1e5 {
            "LOW-signal"
        } else {
            "HIGH-signal"
        }
    );

    // Step 2: evaluate the shortlist on a *public* proxy (here: a uniform
    // shape and a synthetic clustered shape — no private data touched).
    let shortlist = ["IDENTITY", "HB", "AGRID", "DAWA", "UGRID"];
    let proxy = DataGenerator::new().generate(
        &dpbench::datasets::catalog::by_name("GOWALLA").expect("catalog"),
        domain,
        32_561,
        &mut rng,
    );
    let proxy_truth = workload.evaluate(&proxy);
    println!(
        "\nproxy evaluation (public data, {} queries):",
        workload.len()
    );
    let mut best = ("", f64::INFINITY);
    for name in shortlist {
        let mech = mechanism_by_name(name).expect("registered");
        let mut total = 0.0;
        let trials = 5;
        for _ in 0..trials {
            let est = mech
                .run_eps(&proxy, &workload, epsilon, &mut rng)
                .expect("run");
            total += scaled_per_query_error(
                &proxy_truth,
                &workload.evaluate_cells(&est),
                proxy.scale(),
                Loss::L2,
            );
        }
        let err = total / trials as f64;
        println!("  {name:<9} {err:.4e}");
        if err < best.1 {
            best = (name, err);
        }
    }

    // Step 3: one shot on the private data with the chosen algorithm.
    // `release_eps` returns the structured Release: the estimate plus the
    // per-step budget trace a privacy auditor would want to see.
    println!("\nchosen algorithm: {}", best.0);
    let mech = mechanism_by_name(best.0).expect("registered");
    let release = mech
        .release_eps(&private, &workload, epsilon, &mut rng)
        .expect("private release");
    let y_true = workload.evaluate(&private);
    let y_hat = workload.evaluate_cells(&release.estimate);
    let err = scaled_per_query_error(&y_true, &y_hat, private.scale(), Loss::L2);
    println!("private release done: scaled per-query L2 error = {err:.4e}");
    println!("budget trace (total ε spent = {:.4}):", release.spent());
    for step in &release.budget_trace {
        println!("  {:<16} ε = {:.4}", step.label, step.epsilon);
    }
    println!("(in production, the error would of course be unknown to the analyst)");
}
