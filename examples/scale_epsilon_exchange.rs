//! Demonstrates the paper's *scale-ε exchangeability* property
//! (Definition 4): for exchangeable algorithms, multiplying the dataset
//! scale by c and dividing ε by c leaves the scaled error unchanged —
//! "to get better accuracy, either collect more data or negotiate a
//! larger privacy budget; the two are interchangeable".
//!
//! Run with: `cargo run --release --example scale_epsilon_exchange`

use dpbench::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_error(
    mech: &dyn Mechanism,
    x: &DataVector,
    w: &Workload,
    eps: f64,
    trials: usize,
    rng: &mut StdRng,
) -> f64 {
    let y = w.evaluate(x);
    let mut total = 0.0;
    for _ in 0..trials {
        let est = mech.run_eps(x, w, eps, rng).expect("run");
        total += scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2);
    }
    total / trials as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 512;
    let domain = Domain::D1(n);
    let workload = Workload::prefix_1d(n);
    let dataset = dpbench::datasets::catalog::by_name("INCOME").expect("catalog");
    let gen = DataGenerator::new();

    // Three (scale, ε) pairs with identical products.
    let pairs = [
        (100_000_u64, 0.1_f64),
        (1_000_000, 0.01),
        (10_000_000, 0.001),
    ];
    let trials = 10;

    println!("scale-ε exchangeability on INCOME (n = {n}, Prefix workload)");
    println!("all three settings share ε·scale = 10,000\n");
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "algorithm", "m=1e5, ε=0.1", "m=1e6, ε=0.01", "m=1e7, ε=0.001"
    );
    for name in ["IDENTITY", "HB", "DAWA", "PHP", "MWEM", "EFPA"] {
        let mech = mechanism_by_name(name).expect("registered");
        let mut row = format!("{name:<10}");
        for &(scale, eps) in &pairs {
            let x = gen.generate(&dataset, domain, scale, &mut rng);
            let err = mean_error(mech.as_ref(), &x, &workload, eps, trials, &mut rng);
            row.push_str(&format!(" {err:>16.4e}"));
        }
        println!("{row}");
    }
    println!("\nEach row should be roughly constant (Theorems 1, 9, 11–13): the");
    println!("benchmark exploits this to explore ε diversity through scale diversity.");
}
