//! Quickstart: release a differentially private 1-D histogram and compare
//! a few algorithms on it.
//!
//! Run with: `cargo run --release --example quickstart`

use dpbench::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2016);

    // 1. A dataset: the MEDCOST shape (medical costs, 75% empty cells)
    //    at scale 10,000 over a 1024-cell domain.
    let dataset = dpbench::datasets::catalog::by_name("MEDCOST").expect("catalog entry");
    let x = DataGenerator::new().generate(&dataset, Domain::D1(1024), 10_000, &mut rng);
    println!(
        "dataset: {} | scale = {} | domain = {} | zero cells = {:.1}%",
        dataset.name,
        x.scale(),
        x.domain(),
        100.0 * x.zero_fraction()
    );

    // 2. A workload: all prefix range queries (any 1-D range is the
    //    difference of two prefixes).
    let workload = Workload::prefix_1d(1024);
    let y_true = workload.evaluate(&x);

    // 3. Run several mechanisms at the same privacy level and compare
    //    their scaled per-query L2 error (paper Definition 3).
    let epsilon = 0.1;
    println!("\nε = {epsilon}, workload = Prefix({})\n", workload.len());
    println!(
        "{:<10} {:>14} {:>10}",
        "algorithm", "scaled L2 err", "vs IDENTITY"
    );

    let mut identity_err = None;
    for name in ["IDENTITY", "UNIFORM", "HB", "DAWA", "MWEM*", "AHP*"] {
        let mech = mechanism_by_name(name).expect("registered mechanism");
        // Two-phase API: plan once (all data-independent setup), then
        // execute per trial — DP outputs are random variables, so average
        // a few. `mech.run_eps(...)` is the one-line shim for single runs.
        let plan = mech.plan(&x.domain(), &workload).expect("plan");
        let trials = 5;
        let mut total = 0.0;
        for _ in 0..trials {
            let release =
                dpbench_core::mechanism::execute_eps(plan.as_ref(), &x, epsilon, &mut rng)
                    .expect("mechanism run");
            let y_hat = workload.evaluate_cells(&release.estimate);
            total += scaled_per_query_error(&y_true, &y_hat, x.scale(), Loss::L2);
        }
        let err = total / trials as f64;
        let baseline = *identity_err.get_or_insert(err);
        println!("{name:<10} {err:>14.6e} {:>9.2}x", err / baseline);
    }

    println!("\nAt this low-signal setting (small scale, small ε) the data-dependent");
    println!("algorithms should beat the IDENTITY baseline by a wide margin —");
    println!("the paper's Finding 1.");
}
