//! The paper's closing guidance (Section 8): algorithm selection by
//! signal regime. This example sweeps the signal ε·scale across four
//! orders of magnitude on one dataset and prints which algorithm a
//! practitioner should deploy in each regime, plus the regret of
//! committing to a single algorithm everywhere.
//!
//! Run with: `cargo run --release --example algorithm_selection`

use dpbench::prelude::*;
use dpbench::stats::geometric_mean_regret;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 1024;
    let domain = Domain::D1(n);
    let workload = Workload::prefix_1d(n);
    let dataset = dpbench::datasets::catalog::by_name("SEARCH").expect("catalog");
    let gen = DataGenerator::new();
    let algorithms = ["IDENTITY", "HB", "DAWA", "MWEM*", "AHP*", "UNIFORM"];
    let scales = [1_000_u64, 10_000, 100_000, 1_000_000, 10_000_000];
    let epsilon = 0.1;
    let trials = 5;

    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];
    println!("SEARCH, n = {n}, ε = {epsilon}, Prefix workload\n");
    println!(
        "{:<10} {}",
        "scale",
        algorithms.map(|a| format!("{a:>12}")).join(" ")
    );
    for &scale in &scales {
        let x = gen.generate(&dataset, domain, scale, &mut rng);
        let y = workload.evaluate(&x);
        let mut row = format!("{scale:<10}");
        for (ai, name) in algorithms.iter().enumerate() {
            let mech = mechanism_by_name(name).expect("registered");
            let mut total = 0.0;
            for _ in 0..trials {
                let est = mech.run_eps(&x, &workload, epsilon, &mut rng).expect("run");
                total +=
                    scaled_per_query_error(&y, &workload.evaluate_cells(&est), x.scale(), Loss::L2);
            }
            let err = total / trials as f64;
            errors[ai].push(err);
            row.push_str(&format!(" {err:>12.3e}"));
        }
        println!("{row}");
    }

    // Winner per regime.
    println!("\nbest algorithm per signal level:");
    for (si, &scale) in scales.iter().enumerate() {
        let (best, _) = algorithms
            .iter()
            .enumerate()
            .min_by(|a, b| errors[a.0][si].partial_cmp(&errors[b.0][si]).unwrap())
            .map(|(i, _)| (algorithms[i], errors[i][si]))
            .unwrap();
        let signal = epsilon * scale as f64;
        println!("  signal {signal:>9.0} (scale {scale:>9}): {best}");
    }

    // Regret of committing to one algorithm.
    let regrets = geometric_mean_regret(&errors).expect("rectangular error matrix");
    println!("\nregret of committing to a single algorithm across all signals:");
    let mut order: Vec<usize> = (0..algorithms.len()).collect();
    order.sort_by(|&a, &b| regrets[a].partial_cmp(&regrets[b]).unwrap());
    for i in order {
        println!("  {:<10} {:.2}", algorithms[i], regrets[i]);
    }
    println!("\nPaper shape check: data-dependent algorithms win the low-signal");
    println!("regimes, data-independent ones the high-signal regimes, and DAWA");
    println!("has the lowest single-choice regret.");
}
