//! Publishing a private spatial heat map: Beijing-taxi-style GPS start
//! points on a 64×64 grid, comparing the spatial-decomposition algorithms
//! (UGRID, AGRID, QUADTREE) against DAWA and the baselines — the paper's
//! 2-D evaluation in miniature, rendered as ASCII density maps.
//!
//! Run with: `cargo run --release --example taxi_heatmap`

use dpbench::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Render a 2-D histogram as a coarse ASCII density map.
fn ascii_heatmap(cells: &[f64], side: usize, rows: usize) -> String {
    let block = side / rows;
    let mut out = String::new();
    let max: f64 = cells.iter().copied().fold(0.0, f64::max).max(1e-9);
    let glyphs = [' ', '.', ':', '+', '*', '#', '@'];
    for br in 0..rows {
        for bc in 0..rows {
            let mut sum = 0.0;
            for r in br * block..(br + 1) * block {
                for c in bc * block..(bc + 1) * block {
                    sum += cells[r * side + c].max(0.0);
                }
            }
            let avg = sum / (block * block) as f64;
            let idx = ((avg / max * (glyphs.len() - 1) as f64 * 3.0).round() as usize)
                .min(glyphs.len() - 1);
            out.push(glyphs[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let side = 64;
    let domain = Domain::D2(side, side);
    let dataset = dpbench::datasets::catalog::by_name("BJ-CABS-S").expect("catalog");
    let x = DataGenerator::new().generate(&dataset, domain, 500_000, &mut rng);
    let workload = Workload::random_ranges(domain, 2000, &mut rng);
    let y_true = workload.evaluate(&x);
    let epsilon = 0.05;

    println!("true density ({} trips):", x.scale());
    println!("{}", ascii_heatmap(x.counts(), side, 16));

    for name in ["IDENTITY", "UGRID", "AGRID", "QUADTREE", "DAWA"] {
        let mech = mechanism_by_name(name).expect("registered");
        let est = mech.run_eps(&x, &workload, epsilon, &mut rng).expect("run");
        let err =
            scaled_per_query_error(&y_true, &workload.evaluate_cells(&est), x.scale(), Loss::L2);
        println!("{name} (ε = {epsilon}): scaled L2 error = {err:.4e}");
        println!("{}", ascii_heatmap(&est, side, 16));
    }
    println!("The grid/tree methods should preserve the hot spots visibly better");
    println!("than IDENTITY at this privacy level (paper Figures 1b/2b).");
}
