//! Property-style integration tests across the crate boundary: randomized
//! inputs through the public API must uphold the framework invariants.
//! (Seeded loops stand in for proptest, which is unavailable offline.)

use dpbench::prelude::*;
use dpbench_core::query::PrefixTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload evaluation equals brute-force cell summation.
#[test]
fn workload_eval_matches_naive() {
    let mut meta = StdRng::seed_from_u64(0xA0);
    for _ in 0..32 {
        let n = meta.gen_range(16..=64_usize);
        let counts: Vec<f64> = (0..n).map(|_| meta.gen_range(0.0..100.0)).collect();
        let x = DataVector::new(counts, Domain::D1(n));
        let mut rng = StdRng::seed_from_u64(meta.gen_range(0..1000_u64));
        let w = Workload::random_ranges(Domain::D1(n), 40, &mut rng);
        let fast = w.evaluate(&x);
        for (q, f) in w.queries().iter().zip(&fast) {
            assert!((q.eval_naive(&x) - f).abs() < 1e-9);
        }
    }
}

/// The generator produces integral vectors of exactly the requested scale,
/// confined to the shape's support.
#[test]
fn generator_exact_scale_and_support() {
    let mut meta = StdRng::seed_from_u64(0xA1);
    let dataset = dpbench::datasets::catalog::by_name("TRACE").unwrap();
    let domain = Domain::D1(512);
    let shape = dataset.shape(domain);
    for _ in 0..32 {
        let scale = meta.gen_range(1..200_000_u64);
        let mut rng = StdRng::seed_from_u64(meta.gen_range(0..1000_u64));
        let x = DataGenerator::new().generate(&dataset, domain, scale, &mut rng);
        assert_eq!(x.scale() as u64, scale);
        assert!(x.counts().iter().all(|&c| c >= 0.0 && c.fract() == 0.0));
        for (p, c) in shape.iter().zip(x.counts()) {
            if *p == 0.0 {
                assert_eq!(*c, 0.0);
            }
        }
    }
}

/// Coarsening preserves total mass for any domain divisor.
#[test]
fn coarsening_mass_preserved() {
    let mut meta = StdRng::seed_from_u64(0xA2);
    let dataset = dpbench::datasets::catalog::by_name("SEARCH").unwrap();
    for _ in 0..16 {
        let mut rng = StdRng::seed_from_u64(meta.gen_range(0..1000_u64));
        let x = DataGenerator::new().generate(&dataset, Domain::D1(1024), 50_000, &mut rng);
        for m in [512_usize, 256, 128] {
            let y = x.coarsen(Domain::D1(m));
            assert!((y.scale() - x.scale()).abs() < 1e-9);
        }
    }
}

/// Mechanisms produce finite, correctly-sized estimates on arbitrary
/// (power-of-two) inputs.
#[test]
fn mechanisms_total_on_random_inputs() {
    let mut meta = StdRng::seed_from_u64(0xA3);
    for _ in 0..12 {
        let raw: Vec<f64> = (0..64)
            .map(|_| meta.gen_range(0.0_f64..500.0).round())
            .collect();
        let x = DataVector::new(raw, Domain::D1(64));
        let w = Workload::prefix_1d(64);
        let mut rng = StdRng::seed_from_u64(meta.gen_range(0..100_u64));
        for name in ["IDENTITY", "HB", "PRIVELET", "DAWA", "EFPA", "PHP", "AHP"] {
            let mech = mechanism_by_name(name).unwrap();
            let est = mech.run_eps(&x, &w, 1.0, &mut rng).unwrap();
            assert_eq!(est.len(), 64);
            assert!(est.iter().all(|v| v.is_finite()), "{name} non-finite");
        }
    }
}

/// The prefix table's total always equals the vector's scale.
#[test]
fn prefix_table_total() {
    let mut meta = StdRng::seed_from_u64(0xA4);
    for _ in 0..32 {
        let n = meta.gen_range(1..=128_usize);
        let counts: Vec<f64> = (0..n).map(|_| meta.gen_range(0.0..10.0)).collect();
        let x = DataVector::new(counts, Domain::D1(n));
        let t = PrefixTable::build(&x);
        assert!((t.total() - x.scale()).abs() < 1e-9);
    }
}

#[test]
fn hierarchical_estimates_respect_sum_consistency() {
    // H's inferred cells must sum close to its inferred root (which is a
    // direct consequence of the tree inference's consistency guarantee).
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = dpbench::datasets::catalog::by_name("INCOME").unwrap();
    let x = DataGenerator::new().generate(&dataset, Domain::D1(256), 1_000_000, &mut rng);
    let w = Workload::prefix_1d(256);
    let est = mechanism_by_name("H")
        .unwrap()
        .run_eps(&x, &w, 1.0, &mut rng)
        .unwrap();
    let total: f64 = est.iter().sum();
    // With ε = 1 the root estimate is within a few hundred of the truth.
    assert!(
        (total - x.scale()).abs() < 2_000.0,
        "inferred total {total} vs true {}",
        x.scale()
    );
}
