//! Property-based integration tests across the crate boundary: random
//! inputs through the public API must uphold the framework invariants.

use dpbench::prelude::*;
use dpbench_core::query::PrefixTable;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Workload evaluation equals brute-force cell summation.
    #[test]
    fn workload_eval_matches_naive(
        counts in proptest::collection::vec(0.0_f64..100.0, 16..=64),
        seed in 0_u64..1000,
    ) {
        let n = counts.len();
        let x = DataVector::new(counts, Domain::D1(n));
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Workload::random_ranges(Domain::D1(n), 40, &mut rng);
        let fast = w.evaluate(&x);
        for (q, f) in w.queries().iter().zip(&fast) {
            prop_assert!((q.eval_naive(&x) - f).abs() < 1e-9);
        }
    }

    /// The generator produces integral vectors of exactly the requested
    /// scale, confined to the shape's support.
    #[test]
    fn generator_exact_scale_and_support(scale in 1_u64..200_000, seed in 0_u64..1000) {
        let dataset = dpbench::datasets::catalog::by_name("TRACE").unwrap();
        let domain = Domain::D1(512);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = DataGenerator::new().generate(&dataset, domain, scale, &mut rng);
        prop_assert_eq!(x.scale() as u64, scale);
        prop_assert!(x.counts().iter().all(|&c| c >= 0.0 && c.fract() == 0.0));
        let shape = dataset.shape(domain);
        for (p, c) in shape.iter().zip(x.counts()) {
            if *p == 0.0 {
                prop_assert_eq!(*c, 0.0);
            }
        }
    }

    /// Coarsening preserves total mass for any domain divisor.
    #[test]
    fn coarsening_mass_preserved(seed in 0_u64..1000) {
        let dataset = dpbench::datasets::catalog::by_name("SEARCH").unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = DataGenerator::new().generate(&dataset, Domain::D1(1024), 50_000, &mut rng);
        for m in [512_usize, 256, 128] {
            let y = x.coarsen(Domain::D1(m));
            prop_assert!((y.scale() - x.scale()).abs() < 1e-9);
        }
    }

    /// Mechanisms produce finite, correctly-sized estimates on arbitrary
    /// (power-of-two) inputs.
    #[test]
    fn mechanisms_total_on_random_inputs(
        raw in proptest::collection::vec(0.0_f64..500.0, 64),
        seed in 0_u64..100,
    ) {
        let x = DataVector::new(raw.iter().map(|v| v.round()).collect(), Domain::D1(64));
        let w = Workload::prefix_1d(64);
        let mut rng = StdRng::seed_from_u64(seed);
        for name in ["IDENTITY", "HB", "PRIVELET", "DAWA", "EFPA", "PHP", "AHP"] {
            let mech = mechanism_by_name(name).unwrap();
            let est = mech.run_eps(&x, &w, 1.0, &mut rng).unwrap();
            prop_assert_eq!(est.len(), 64);
            prop_assert!(est.iter().all(|v| v.is_finite()), "{} non-finite", name);
        }
    }

    /// The prefix table's total always equals the vector's scale.
    #[test]
    fn prefix_table_total(counts in proptest::collection::vec(0.0_f64..10.0, 1..=128)) {
        let n = counts.len();
        let x = DataVector::new(counts, Domain::D1(n));
        let t = PrefixTable::build(&x);
        prop_assert!((t.total() - x.scale()).abs() < 1e-9);
    }
}

#[test]
fn hierarchical_estimates_respect_sum_consistency() {
    // H's inferred cells must sum close to its inferred root (which is a
    // direct consequence of the tree inference's consistency guarantee).
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = dpbench::datasets::catalog::by_name("INCOME").unwrap();
    let x = DataGenerator::new().generate(&dataset, Domain::D1(256), 1_000_000, &mut rng);
    let w = Workload::prefix_1d(256);
    let est = mechanism_by_name("H").unwrap().run_eps(&x, &w, 1.0, &mut rng).unwrap();
    let total: f64 = est.iter().sum();
    // With ε = 1 the root estimate is within a few hundred of the truth.
    assert!(
        (total - x.scale()).abs() < 2_000.0,
        "inferred total {total} vs true {}",
        x.scale()
    );
}
