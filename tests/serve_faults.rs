//! Crash-consistency torture for the spend journal and tenant
//! accountant, driven through the deterministic `FaultyIo` layer.
//!
//! The contract under test (the ISSUE 7 acceptance bar): every injected
//! crash or I/O fault either **replays to bit-exact tenant balances** or
//! **refuses loudly** — never a silent ε overspend. Two invariants are
//! asserted throughout:
//!
//! 1. `journal-sum == ledger-spent`: replaying the surviving records as
//!    a sequential f64 fold reproduces the recovered ledger's spent
//!    value to the bit.
//! 2. Conservatism: the recovered spend is never *less* than the ε the
//!    live server acknowledged spending (a lost refund record costs the
//!    tenant budget; it never mints free budget).

use dpbench::harness::serve::{
    AdmissionError, AppendFault, FaultyIo, JournalOp, JournalRecord, SpendJournal, TenantAccountant,
};
use dpbench_core::rng::rng_for;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

type Disk = Arc<Mutex<Vec<u8>>>;

/// Simulate a crash: clone the disk bytes, optionally tearing the tail
/// at byte `cut`, and hand back a fresh "device" for the reopen.
fn crash(disk: &Disk, cut: Option<usize>) -> Disk {
    let mut bytes = disk.lock().unwrap().clone();
    if let Some(k) = cut {
        bytes.truncate(k);
    }
    Arc::new(Mutex::new(bytes))
}

/// Reopen an accountant from a (possibly torn) disk image.
fn reopen(budgets: &[(String, f64)], disk: Disk) -> std::io::Result<TenantAccountant> {
    TenantAccountant::new_with_io(budgets, Box::new(FaultyIo::over(disk)))
}

/// The records a reopen would replay from a disk image.
fn surviving_records(disk: &Disk) -> Vec<JournalRecord> {
    let (_, records) = SpendJournal::open_with(Box::new(FaultyIo::over(crash(disk, None))))
        .expect("scan surviving records");
    records
}

/// Invariant 1: fold the surviving records per tenant in order — the
/// identical f64 op sequence the replay performs — and compare against
/// the recovered ledgers bit-for-bit.
fn assert_journal_sum_matches(acct: &TenantAccountant, records: &[JournalRecord]) {
    let mut spent: HashMap<&str, f64> = HashMap::new();
    for rec in records {
        let acc = spent.entry(rec.tenant.as_str()).or_insert(0.0);
        match rec.op {
            JournalOp::Spend => *acc += rec.eps,
            JournalOp::Refund => *acc -= rec.eps.min(*acc),
        }
    }
    for (name, snap) in acct.snapshot_all() {
        let expected = spent.get(name.as_str()).copied().unwrap_or(0.0);
        assert_eq!(
            snap.spent.to_bits(),
            expected.to_bits(),
            "tenant {name}: ledger spent {} != journal sum {expected}",
            snap.spent
        );
    }
}

fn budget(name: &str, eps: f64) -> (String, f64) {
    (name.to_string(), eps)
}

/// Case 1 (sweep): a crash tears the final journal line at *every* byte
/// offset; each tear must replay to exactly the pre-final-record
/// balances — the torn op is gone, everything durable survives.
#[test]
fn torn_tail_at_every_byte_offset_replays_to_durable_prefix() {
    let budgets = vec![budget("a", 10.0), budget("b", 10.0)];
    let io = FaultyIo::new();
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap();
    acct.reserve("b", 0.25).unwrap();
    let spent_before_last = acct.snapshot("a").unwrap().spent;
    let len_before_last = disk.lock().unwrap().len();
    acct.reserve("a", 1.0 / 3.0).unwrap();
    let full_len = disk.lock().unwrap().len();
    let full_spent = acct.snapshot("a").unwrap().spent;

    for k in len_before_last..=full_len {
        let recovered = reopen(&budgets, crash(&disk, Some(k))).unwrap();
        let snap = recovered.snapshot("a").unwrap();
        if k + 1 >= full_len {
            // k == full_len: untouched. k == full_len − 1: only the
            // newline is lost — a complete, valid unterminated record,
            // which the heal policy keeps and re-terminates.
            assert_eq!(snap.spent.to_bits(), full_spent.to_bits(), "cut at {k}");
        } else {
            assert_eq!(
                snap.spent.to_bits(),
                spent_before_last.to_bits(),
                "cut at {k}: torn record must vanish cleanly"
            );
        }
        assert_eq!(
            recovered.snapshot("b").unwrap().spent.to_bits(),
            0.25_f64.to_bits(),
            "cut at {k}: tenant b's durable record survives"
        );
        assert_journal_sum_matches(&recovered, &surviving_records(&crash(&disk, Some(k))));
    }
}

/// Case 2: a crash exactly at a line boundary (newline included) loses
/// nothing at all.
#[test]
fn crash_at_exact_line_boundary_loses_nothing() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new();
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.7).unwrap();
    let k = disk.lock().unwrap().len();
    acct.reserve("a", 0.2).unwrap();
    let recovered = reopen(&budgets, crash(&disk, Some(k))).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.7_f64.to_bits()
    );
}

/// Case 3: a failed fsync at shutdown is surfaced loudly, and the
/// already-appended records still replay in full (append means the bytes
/// reached the OS; the fsync only hardens against power loss).
#[test]
fn failed_shutdown_fsync_is_loud_and_records_survive() {
    let budgets = vec![budget("a", 5.0)];
    // Sync 0 happens at open (header); fail the *next* one.
    let io = FaultyIo::new().fail_sync(1);
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap();
    acct.reserve("a", 0.25).unwrap();
    let err = acct.sync().unwrap_err();
    assert!(err.to_string().contains("fsync"), "{err}");
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.75_f64.to_bits()
    );
}

/// Case 4: a short write on an append refuses that reservation (rolled
/// back, no ε charged), self-repairs via truncate, and the journal stays
/// fully usable for the next request.
#[test]
fn short_write_refuses_rolls_back_and_recovers() {
    let budgets = vec![budget("a", 5.0)];
    // Append 0 = header; append 1 = first spend, torn after 9 bytes.
    let io = FaultyIo::new().fail_append(1, AppendFault::Short { keep: 9 });
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    match acct.reserve("a", 0.5) {
        Err(AdmissionError::Journal(e)) => assert!(e.contains("short write"), "{e}"),
        other => panic!("expected Journal error, got {other:?}"),
    }
    assert_eq!(
        acct.snapshot("a").unwrap().spent.to_bits(),
        0.0_f64.to_bits(),
        "failed reservation must roll back"
    );
    // The journal healed itself: the next reservation lands cleanly.
    acct.reserve("a", 0.25).unwrap();
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.25_f64.to_bits()
    );
    assert_journal_sum_matches(&recovered, &surviving_records(&disk));
}

/// Case 5: a short write whose truncate-repair ALSO fails wedges the
/// journal — every later reservation refuses loudly (no release without
/// a durable record) — and a restart heals the tear and serves again.
#[test]
fn unrepairable_short_write_wedges_until_restart() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new()
        .fail_append(1, AppendFault::Short { keep: 4 })
        .fail_truncate();
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    match acct.reserve("a", 0.5) {
        Err(AdmissionError::Journal(e)) => assert!(e.contains("wedged"), "{e}"),
        other => panic!("expected Journal error, got {other:?}"),
    }
    assert!(acct.journal_wedged());
    // Wedged: even a tiny reservation refuses; nothing is charged.
    match acct.reserve("a", 0.01) {
        Err(AdmissionError::Journal(e)) => assert!(e.contains("wedged"), "{e}"),
        other => panic!("expected Journal error, got {other:?}"),
    }
    assert_eq!(acct.snapshot("a").unwrap().spent, 0.0);
    // Restart: the 4 torn bytes are the final line; reopen truncates
    // them and the tenant is fully unspent.
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert!(!recovered.journal_wedged());
    assert_eq!(recovered.snapshot("a").unwrap().spent, 0.0);
    recovered.reserve("a", 0.5).unwrap();
}

/// Case 6: ENOSPC refuses the reservation with nothing written and
/// nothing charged; once space "returns", service resumes.
#[test]
fn enospc_refuses_cleanly_and_resumes() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new().fail_append(1, AppendFault::Enospc);
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    let before = disk.lock().unwrap().clone();
    match acct.reserve("a", 0.5) {
        Err(AdmissionError::Journal(e)) => assert!(e.contains("space"), "{e}"),
        other => panic!("expected Journal error, got {other:?}"),
    }
    assert_eq!(*disk.lock().unwrap(), before, "ENOSPC must write nothing");
    assert_eq!(acct.snapshot("a").unwrap().spent, 0.0);
    acct.reserve("a", 0.25).unwrap();
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.25_f64.to_bits()
    );
}

/// Case 7: crash *between* reserve and append (nothing reached the
/// disk): the op was refused live, and after restart the tenant is
/// exactly as unspent as the refusal promised.
#[test]
fn crash_between_reserve_and_append_charges_nothing() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new().fail_append(2, AppendFault::Short { keep: 0 });
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap();
    assert!(matches!(
        acct.reserve("a", 0.25),
        Err(AdmissionError::Journal(_))
    ));
    // Crash now. Only the first (durable) spend exists anywhere.
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.5_f64.to_bits()
    );
}

/// Case 8: crash after a successful append but before the response went
/// out: the spend replays — the tenant paid for a release it never saw,
/// which is the conservative direction (never the reverse).
#[test]
fn crash_after_append_before_response_replays_the_spend() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new();
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap(); // journaled; "response" never sent
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.5_f64.to_bits(),
        "an unacknowledged spend still counts — conservative"
    );
}

/// Case 9: a refund whose journal record is torn by a crash: the
/// recovered balance is MORE spent than the live one was — budget lost
/// to the tenant, never ε leaked past its grant.
#[test]
fn torn_refund_record_is_conservative() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new();
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap();
    let len_before_refund = disk.lock().unwrap().len();
    acct.refund("a", 0.5).unwrap();
    let live_spent = acct.snapshot("a").unwrap().spent; // 0.0
                                                        // Crash tears the refund line in half.
    let torn_at = len_before_refund + 10;
    let recovered = reopen(&budgets, crash(&disk, Some(torn_at))).unwrap();
    let snap = recovered.snapshot("a").unwrap();
    assert_eq!(snap.spent.to_bits(), 0.5_f64.to_bits());
    assert!(
        snap.spent >= live_spent,
        "a lost refund must cost the tenant, not the privacy budget"
    );
}

/// Case 10: mid-file garbage (bit rot, concurrent writer, truncate-then-
/// reuse) is a hard, loud error — the server must refuse to start rather
/// than guess at balances.
#[test]
fn mid_file_corruption_refuses_loudly() {
    let budgets = vec![budget("a", 5.0)];
    let io = FaultyIo::new();
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap();
    acct.reserve("a", 0.25).unwrap();
    {
        let mut bytes = disk.lock().unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let corrupted = text.replacen("\"eps\":0.5", "\"eps\":@@@", 1);
        *bytes = corrupted.into_bytes();
    }
    match reopen(&budgets, crash(&disk, None)) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
        Ok(_) => panic!("mid-file corruption must refuse to open"),
    }
}

/// Case 11: a journal error mid-traffic never poisons *other* tenants:
/// the failed tenant's op rolls back while concurrent bookkeeping for
/// everyone else stays exact.
#[test]
fn fault_on_one_tenants_append_leaves_others_exact() {
    let budgets = vec![budget("a", 5.0), budget("b", 5.0)];
    let io = FaultyIo::new().fail_append(2, AppendFault::Enospc);
    let disk = io.disk_handle();
    let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();
    acct.reserve("a", 0.5).unwrap(); // append 1: ok
    assert!(acct.reserve("b", 0.25).is_err()); // append 2: ENOSPC
    acct.reserve("b", 0.125).unwrap(); // append 3: ok
    let recovered = reopen(&budgets, crash(&disk, None)).unwrap();
    assert_eq!(
        recovered.snapshot("a").unwrap().spent.to_bits(),
        0.5_f64.to_bits()
    );
    assert_eq!(
        recovered.snapshot("b").unwrap().spent.to_bits(),
        0.125_f64.to_bits()
    );
    assert_journal_sum_matches(&recovered, &surviving_records(&disk));
}

/// Case 12 (seeded sweep): random op sequences with a randomly-placed
/// fault, crashed at a random tear point. Every outcome must satisfy
/// both invariants: journal-sum == ledger-spent, and recovered spend ≥
/// the ε acknowledged live (minus refunds the journal kept) — i.e. no
/// sequence of faults ever mints budget back.
#[test]
fn seeded_random_fault_sweep_never_overspends() {
    let budgets = vec![budget("a", 1e6), budget("b", 1e6)];
    for seed in 0..24_u64 {
        let mut rng = rng_for("serve-fault-sweep", &[seed]);
        let n_ops = rng.gen_range(4..20);
        let fault_at = rng.gen_range(1..=n_ops as u64);
        let fault = if rng.gen_bool(0.5) {
            AppendFault::Enospc
        } else {
            AppendFault::Short {
                keep: rng.gen_range(0..30),
            }
        };
        let io = FaultyIo::new().fail_append(fault_at, fault);
        let disk = io.disk_handle();
        let acct = TenantAccountant::new_with_io(&budgets, Box::new(io)).unwrap();

        // Acknowledged net spend per tenant: ops the live server
        // reported as successful (reserve Ok minus refund Ok). Track the
        // durable length before the final successful record so a "real"
        // crash (which can only tear the in-flight tail) is simulable.
        let mut acked: HashMap<&str, f64> = HashMap::new();
        let mut prev_len = disk.lock().unwrap().len();
        let mut cur_len = prev_len;
        let advance = |disk: &Disk, prev: &mut usize, cur: &mut usize| {
            *prev = *cur;
            *cur = disk.lock().unwrap().len();
        };
        for _ in 0..n_ops {
            let tenant = if rng.gen_bool(0.5) { "a" } else { "b" };
            let eps = rng.gen_range(0.001..0.9);
            if acct.reserve(tenant, eps).is_ok() {
                *acked.entry(tenant).or_insert(0.0) += eps;
                advance(&disk, &mut prev_len, &mut cur_len);
                if rng.gen_bool(0.25) && acct.refund(tenant, eps).is_ok() {
                    *acked.entry(tenant).or_insert(0.0) -= eps;
                    advance(&disk, &mut prev_len, &mut cur_len);
                }
            }
        }
        let len = disk.lock().unwrap().len();

        // Crash A: arbitrary tail loss (lost chunk past the last sync).
        // The recovered state must be a consistent replay of whatever
        // records survive — journal-sum == ledger-spent, bit for bit.
        let cut = rng.gen_range(22..=len); // the 22-byte header survives
        let snap_disk = crash(&disk, Some(cut));
        let recovered = match reopen(&budgets, snap_disk.clone()) {
            Ok(a) => a,
            Err(e) => panic!("seed {seed}: tear at {cut}/{len} must heal, got {e}"),
        };
        assert_journal_sum_matches(&recovered, &surviving_records(&snap_disk));

        // Crash B: a realistic crash mid-final-append — at most the last
        // record is torn. The recovered spend sits within one op of the
        // acknowledged balance, and only in the conservative direction:
        // a torn spend (< 0.9 ε) lowers it, a torn refund raises it.
        let cut = rng.gen_range(prev_len..=len);
        let snap_disk = crash(&disk, Some(cut));
        let recovered = match reopen(&budgets, snap_disk.clone()) {
            Ok(a) => a,
            Err(e) => panic!("seed {seed}: tail tear at {cut}/{len} must heal, got {e}"),
        };
        assert_journal_sum_matches(&recovered, &surviving_records(&snap_disk));
        for (name, snap) in recovered.snapshot_all() {
            let live = acked.get(name.as_str()).copied().unwrap_or(0.0);
            assert!(
                snap.spent >= live - 0.9 - 1e-12,
                "seed {seed}: tenant {name} recovered {} far below acknowledged {live}",
                snap.spent
            );
        }
    }
}
