//! Fleet end-to-end tests: drive the real `dpbench` binary the way an
//! operator would and pin the acceptance criteria — `dpbench fleet
//! --procs k` produces bytes identical to a one-shot single-process run,
//! including after a shard is killed mid-run and retried, and the
//! cross-shard t-digest summaries merge without touching raw samples.

use std::path::PathBuf;
use std::process::Command;

const DPBENCH: &str = env!("CARGO_BIN_EXE_dpbench");

/// The tiny grid every test runs (6 units, 3 trials each).
const GRID: &[&str] = &[
    "--dataset",
    "MEDCOST",
    "--algorithms",
    "IDENTITY,DAWA,UNIFORM",
    "--scale",
    "10000",
    "--domain",
    "256",
    "--trials",
    "3",
    "--samples",
    "2",
    "--threads",
    "2",
];

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dpbench-fleet-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn dpbench(args: &[&str]) -> std::process::Output {
    Command::new(DPBENCH)
        .args(args)
        .output()
        .expect("spawn dpbench")
}

fn run_ok(args: &[&str]) -> String {
    let out = dpbench(args);
    assert!(
        out.status.success(),
        "dpbench {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// One-shot single-process reference ledger for the shared grid.
fn reference_ledger(dir: &std::path::Path) -> PathBuf {
    let reference = dir.join("ref.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", reference.to_str().unwrap()]);
    run_ok(&args);
    reference
}

#[test]
fn fleet_output_is_byte_identical_to_one_shot_run() {
    let dir = tmp_dir("basic");
    let reference = reference_ledger(&dir);
    let merged = dir.join("fleet.jsonl");
    let mut args = vec!["fleet", "--procs", "2"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("merged 6 units"), "{stdout}");
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap(),
        "fleet output differs from the one-shot run"
    );
    // Re-running the fleet over complete shard ledgers is a cheap no-op
    // (zero launches) and reproduces the same bytes.
    let stdout = run_ok(&args);
    assert!(stdout.contains("0 launch(es)"), "{stdout}");
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_is_resumed_and_fleet_bytes_still_match() {
    let dir = tmp_dir("kill");
    let reference = reference_ledger(&dir);
    let merged = dir.join("fleet.jsonl");
    // Crash drill: shard 1's first attempt dies (exit 3) after 1 unit;
    // the fleet must relaunch it with --resume and still converge.
    let mut args = vec!["fleet", "--procs", "2", "--kill-shard", "1:1"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let stdout = run_ok(&args);
    assert!(
        stdout.contains("2 launch(es), resumed"),
        "expected shard 1 to be retried with resume:\n{stdout}"
    );
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap(),
        "fleet output after a killed shard differs from the one-shot run"
    );
    // The victim's shard ledger shows both phases, and its log recorded
    // the simulated crash.
    let log = std::fs::read_to_string(dir.join("fleet.shard1.log")).unwrap();
    assert!(log.contains("simulated crash"), "{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_without_retries_surfaces_the_failed_shard() {
    let dir = tmp_dir("noretry");
    let merged = dir.join("fleet.jsonl");
    let mut args = vec![
        "fleet",
        "--procs",
        "2",
        "--kill-shard",
        "0:1",
        "--retries",
        "0",
    ];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let out = dpbench(&args);
    assert!(!out.status.success(), "fleet must fail with zero retries");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("shard 0 did not complete"),
        "unexpected stderr: {stderr}"
    );
    // The partial shard ledger survives for a later fleet to resume.
    assert!(dir.join("fleet.shard0.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_merges_shard_summaries_into_union_statistics() {
    let dir = tmp_dir("agg");
    // Single-process reference summary (streamed, no sharding).
    let ref_agg = dir.join("ref.agg.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    let ref_out = dir.join("ref.jsonl");
    args.extend_from_slice(&[
        "--out",
        ref_out.to_str().unwrap(),
        "--agg",
        ref_agg.to_str().unwrap(),
    ]);
    run_ok(&args);

    let merged = dir.join("fleet.jsonl");
    let fleet_agg = dir.join("fleet.agg.jsonl");
    let mut args = vec!["fleet", "--procs", "2", "--kill-shard", "0:1"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&[
        "--out",
        merged.to_str().unwrap(),
        "--agg",
        fleet_agg.to_str().unwrap(),
    ]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("merged t-digest summary"), "{stdout}");

    // Compare the merged sketch against the single-stream one: exact
    // moments must agree to fp noise; quantiles within the documented
    // digest tolerance.
    let single = dpbench::harness::sink::read_summary(&ref_agg).unwrap();
    let fleet = dpbench::harness::sink::read_summary(&fleet_agg).unwrap();
    assert_eq!(single.samples_seen(), fleet.samples_seen());
    let single_sums = single.summaries();
    let fleet_sums = fleet.summaries();
    assert_eq!(single_sums.len(), fleet_sums.len());
    for ((alg_a, _, a), (alg_b, _, b)) in single_sums.iter().zip(&fleet_sums) {
        assert_eq!(alg_a, alg_b);
        assert_eq!(a.n, b.n);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert!((a.mean - b.mean).abs() <= 1e-12 * a.mean.abs().max(1.0));
        assert!(
            (a.p95 - b.p95).abs() <= (0.05 * a.p95.abs()).max(0.01 * (a.max - a.min)),
            "{alg_a}: single p95 {} vs fleet p95 {}",
            a.p95,
            b.p95
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn launch_cmd_fleet_with_copy_back_matches_one_shot_bytes() {
    let dir = tmp_dir("remote");
    let reference = reference_ledger(&dir);
    let merged = dir.join("fleet.jsonl");
    let workdir = dir.join("scratch");
    // The command transport with an explicit sh wrapper: shards write
    // into per-shard workdirs and the driver copies ledgers back before
    // merging — the full remote protocol on one machine. The kill drill
    // exercises crash + resume through the same path, and --progress
    // tails the fetched ledgers.
    let mut args = vec![
        "fleet",
        "--procs",
        "2",
        "--kill-shard",
        "1:2",
        "--progress",
        "--launch-cmd",
        "sh -c \"{cmd}\"",
        "--workdir",
    ];
    args.push(workdir.to_str().unwrap());
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let out = dpbench(&args);
    assert!(
        out.status.success(),
        "launch-cmd fleet failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap(),
        "launch-cmd fleet output differs from the one-shot run"
    );
    // Per-shard progress lines: present, monotone, never above the
    // shard's unit count, and converging on done == total.
    let stderr = String::from_utf8_lossy(&out.stderr);
    for shard in 0..2usize {
        let prefix = format!("[fleet] shard {shard}: ");
        let mut last = 0usize;
        let mut total = None;
        let mut seen = 0;
        for line in stderr.lines().filter(|l| l.starts_with(&prefix)) {
            let Some((done, tot)) = line[prefix.len()..]
                .trim_end_matches(" units")
                .split_once('/')
                .and_then(|(d, t)| Some((d.parse::<usize>().ok()?, t.parse::<usize>().ok()?)))
            else {
                continue; // stall/kill lines share the prefix
            };
            assert!(
                done >= last,
                "shard {shard} progress went backwards: {stderr}"
            );
            assert!(
                done <= tot,
                "shard {shard} progress exceeds total: {stderr}"
            );
            last = done;
            total = Some(tot);
            seen += 1;
        }
        assert!(seen >= 1, "no progress lines for shard {shard}: {stderr}");
        assert_eq!(Some(last), total, "shard {shard} never reached done==total");
    }
    // Cleanup removed the per-shard scratch dirs after the verified
    // merge; the local shard ledgers remain as the crash record.
    assert!(!workdir.join("shard0").exists());
    assert!(!workdir.join("shard1").exists());
    assert!(dir.join("fleet.shard0.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flag_names_are_rejected() {
    // Regression: a misspelled flag *name* (--trails for --trials) used
    // to land unread in the flag map, silently running the default grid
    // — the same bug class as malformed flag values.
    let out = dpbench(&["run", "--dataset", "MEDCOST", "--trails", "10"]);
    assert!(!out.status.success(), "--trails accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag --trails"),
        "unexpected stderr: {stderr}"
    );
    // run-only flags are not fleet flags…
    let out = dpbench(&[
        "fleet",
        "--procs",
        "2",
        "--fail-after",
        "1",
        "--dataset",
        "MEDCOST",
        "--out",
        "/tmp/never-written.jsonl",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag --fail-after"),
        "unexpected stderr: {stderr}"
    );
    // …and fleet-only flags are not run flags.
    let out = dpbench(&["run", "--dataset", "MEDCOST", "--procs", "2"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag --procs"),
        "unexpected stderr: {stderr}"
    );
    // Boolean flags take bare form or 0/1 — `--progress true` silently
    // meaning "off" would be another silent misparse.
    let out = dpbench(&["run", "--dataset", "MEDCOST", "--verbose", "true"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad --verbose value"),
        "unexpected stderr: {stderr}"
    );
}

#[test]
fn run_creates_missing_ledger_parent_directories() {
    // Regression: a shard launched on a remote machine is the only
    // process there — nothing else can have made its workdir, so
    // `run --out` must create parent directories itself.
    let dir = tmp_dir("mkdirs");
    let out = dir.join("nested/deeper/run.jsonl");
    let agg = dir.join("other/run.agg.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&[
        "--out",
        out.to_str().unwrap(),
        "--agg",
        agg.to_str().unwrap(),
    ]);
    run_ok(&args);
    assert!(out.exists());
    assert!(agg.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_finite_stall_timeout_is_an_error_not_a_panic() {
    // Regression: `inf` parses as a positive f64 and used to panic
    // inside Duration::from_secs_f64 instead of failing cleanly.
    for bad in ["inf", "nan", "1e300"] {
        let mut args = vec!["fleet", "--procs", "2", "--stall-timeout", bad];
        args.extend_from_slice(GRID);
        args.extend_from_slice(&["--out", "/tmp/never-written.jsonl"]);
        let out = dpbench(&args);
        assert!(!out.status.success(), "--stall-timeout {bad} accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("error:") && stderr.contains("stall-timeout"),
            "unexpected stderr for {bad}: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "--stall-timeout {bad} panicked: {stderr}"
        );
    }
}

#[test]
fn launch_cmd_requires_a_workdir() {
    let mut args = vec!["fleet", "--procs", "2", "--launch-cmd", "{cmd}"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", "/tmp/never-written.jsonl"]);
    let out = dpbench(&args);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--workdir"), "unexpected stderr: {stderr}");
}

#[test]
fn kill_shard_out_of_range_is_rejected_at_parse_time() {
    // Regression: an out-of-range victim index must be a loud parse
    // error naming the valid range — a drill aimed at a nonexistent
    // shard would otherwise "pass" while testing nothing. (The boundary
    // index procs-1 is exercised by the kill drills above.)
    for bad in ["2:1", "5:1"] {
        let mut args = vec!["fleet", "--procs", "2", "--kill-shard", bad];
        args.extend_from_slice(GRID);
        args.extend_from_slice(&["--out", "/tmp/never-written.jsonl"]);
        let out = dpbench(&args);
        assert!(!out.status.success(), "--kill-shard {bad} accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("out of range") && stderr.contains("0..=1"),
            "unexpected stderr for {bad}: {stderr}"
        );
    }
    // Malformed spellings get the format error, not the range error.
    let mut args = vec!["fleet", "--procs", "2", "--kill-shard", "1-2"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", "/tmp/never-written.jsonl"]);
    let out = dpbench(&args);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("use i:N"), "unexpected stderr: {stderr}");
}

#[test]
fn malformed_numeric_flags_are_errors_not_defaults() {
    // Regression: numeric flags used to fall back to their defaults on
    // unparseable values, silently benchmarking the wrong grid.
    let cases: &[(&[&str], &str)] = &[
        (
            &["run", "--dataset", "MEDCOST", "--trials", "abc"],
            "--trials",
        ),
        (&["run", "--dataset", "MEDCOST", "--scale", "-3"], "--scale"),
        (&["run", "--dataset", "MEDCOST", "--eps", "zero"], "--eps"),
        (
            &[
                "fleet",
                "--procs",
                "2",
                "--retries",
                "x",
                "--dataset",
                "MEDCOST",
                "--out",
                "/tmp/never-written.jsonl",
            ],
            "--retries",
        ),
        (
            &[
                "fleet",
                "--procs",
                "two",
                "--dataset",
                "MEDCOST",
                "--out",
                "/tmp/never-written.jsonl",
            ],
            "--procs",
        ),
    ];
    for (args, flag) in cases {
        let out = dpbench(args);
        assert!(!out.status.success(), "{args:?} accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("bad {flag} value")),
            "unexpected stderr for {args:?}: {stderr}"
        );
    }
}

#[test]
fn bare_boolean_flags_are_accepted() {
    let dir = tmp_dir("bareflags");
    let ledger = dir.join("run.jsonl");
    // --verbose without a value, trailed by another flag.
    let mut args = vec!["run", "--verbose"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--max-units", "2"]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("plan cache"), "--verbose ignored: {stdout}");
    // Bare --resume finishes the run; --resume 1 (the old spelling) then
    // no-ops over the complete ledger.
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--resume"]);
    run_ok(&args);
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--resume", "1"]);
    let stdout = run_ok(&args);
    assert!(
        stdout.contains("6 units already in ledger, 0 run now"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_mismatch_names_the_diverging_config_field() {
    let dir = tmp_dir("mismatch");
    let ledger = dir.join("run.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap()]);
    run_ok(&args);
    // Same ledger, different scale and eps: the error must say which
    // fields moved, not just "fingerprint mismatch".
    let mut args = vec![
        "run",
        "--dataset",
        "MEDCOST",
        "--algorithms",
        "IDENTITY,DAWA,UNIFORM",
        "--scale",
        "99000",
        "--domain",
        "256",
        "--trials",
        "3",
        "--samples",
        "2",
        "--eps",
        "0.5",
    ];
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--resume"]);
    let out = dpbench(&args);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scales: ledger=10000 current=99000"),
        "missing scale diff: {stderr}"
    );
    assert!(
        stderr.contains("eps: ledger=0.1 current=0.5"),
        "missing eps diff: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_shard_fleet_with_status_file_converges_byte_identically() {
    let dir = tmp_dir("elastic");
    let reference = reference_ledger(&dir);
    let merged = dir.join("fleet.jsonl");
    let status = dir.join("status.json");
    // Straggler drill against the real binary: shard 1 sleeps 150 ms per
    // unit while shard 0 runs at full speed, and a status file tracks
    // the fleet. Whether the driver steals shard 1's tail is a timing
    // race at this scale (6 units); the byte oracle and the status feed
    // must hold either way.
    let mut args = vec![
        "fleet",
        "--procs",
        "2",
        "--slow-shard",
        "1:150",
        "--progress",
    ];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&[
        "--out",
        merged.to_str().unwrap(),
        "--status-file",
        status.to_str().unwrap(),
    ]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("merged 6 units"), "{stdout}");
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap(),
        "slow-shard fleet output differs from the one-shot run"
    );
    // The final status snapshot is a single complete line.
    let s = std::fs::read_to_string(&status).unwrap();
    assert!(
        s.starts_with("{\"t\":\"fleet-status\"") && s.ends_with("}\n"),
        "malformed status file: {s:?}"
    );
    assert!(s.contains("\"complete\":true"), "{s}");
    assert!(s.contains("\"units_done\":6"), "{s}");
    let _ = std::fs::remove_dir_all(&dir);
}
