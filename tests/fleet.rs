//! Fleet end-to-end tests: drive the real `dpbench` binary the way an
//! operator would and pin the acceptance criteria — `dpbench fleet
//! --procs k` produces bytes identical to a one-shot single-process run,
//! including after a shard is killed mid-run and retried, and the
//! cross-shard t-digest summaries merge without touching raw samples.

use std::path::PathBuf;
use std::process::Command;

const DPBENCH: &str = env!("CARGO_BIN_EXE_dpbench");

/// The tiny grid every test runs (6 units, 3 trials each).
const GRID: &[&str] = &[
    "--dataset",
    "MEDCOST",
    "--algorithms",
    "IDENTITY,DAWA,UNIFORM",
    "--scale",
    "10000",
    "--domain",
    "256",
    "--trials",
    "3",
    "--samples",
    "2",
    "--threads",
    "2",
];

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dpbench-fleet-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn dpbench(args: &[&str]) -> std::process::Output {
    Command::new(DPBENCH)
        .args(args)
        .output()
        .expect("spawn dpbench")
}

fn run_ok(args: &[&str]) -> String {
    let out = dpbench(args);
    assert!(
        out.status.success(),
        "dpbench {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// One-shot single-process reference ledger for the shared grid.
fn reference_ledger(dir: &std::path::Path) -> PathBuf {
    let reference = dir.join("ref.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", reference.to_str().unwrap()]);
    run_ok(&args);
    reference
}

#[test]
fn fleet_output_is_byte_identical_to_one_shot_run() {
    let dir = tmp_dir("basic");
    let reference = reference_ledger(&dir);
    let merged = dir.join("fleet.jsonl");
    let mut args = vec!["fleet", "--procs", "2"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("merged 6 units"), "{stdout}");
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap(),
        "fleet output differs from the one-shot run"
    );
    // Re-running the fleet over complete shard ledgers is a cheap no-op
    // (zero launches) and reproduces the same bytes.
    let stdout = run_ok(&args);
    assert!(stdout.contains("0 launch(es)"), "{stdout}");
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_is_resumed_and_fleet_bytes_still_match() {
    let dir = tmp_dir("kill");
    let reference = reference_ledger(&dir);
    let merged = dir.join("fleet.jsonl");
    // Crash drill: shard 1's first attempt dies (exit 3) after 1 unit;
    // the fleet must relaunch it with --resume and still converge.
    let mut args = vec!["fleet", "--procs", "2", "--kill-shard", "1:1"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let stdout = run_ok(&args);
    assert!(
        stdout.contains("2 launch(es), resumed"),
        "expected shard 1 to be retried with resume:\n{stdout}"
    );
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&merged).unwrap(),
        "fleet output after a killed shard differs from the one-shot run"
    );
    // The victim's shard ledger shows both phases, and its log recorded
    // the simulated crash.
    let log = std::fs::read_to_string(dir.join("fleet.shard1.log")).unwrap();
    assert!(log.contains("simulated crash"), "{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_without_retries_surfaces_the_failed_shard() {
    let dir = tmp_dir("noretry");
    let merged = dir.join("fleet.jsonl");
    let mut args = vec![
        "fleet",
        "--procs",
        "2",
        "--kill-shard",
        "0:1",
        "--retries",
        "0",
    ];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", merged.to_str().unwrap()]);
    let out = dpbench(&args);
    assert!(!out.status.success(), "fleet must fail with zero retries");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("shard 0 did not complete"),
        "unexpected stderr: {stderr}"
    );
    // The partial shard ledger survives for a later fleet to resume.
    assert!(dir.join("fleet.shard0.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_merges_shard_summaries_into_union_statistics() {
    let dir = tmp_dir("agg");
    // Single-process reference summary (streamed, no sharding).
    let ref_agg = dir.join("ref.agg.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    let ref_out = dir.join("ref.jsonl");
    args.extend_from_slice(&[
        "--out",
        ref_out.to_str().unwrap(),
        "--agg",
        ref_agg.to_str().unwrap(),
    ]);
    run_ok(&args);

    let merged = dir.join("fleet.jsonl");
    let fleet_agg = dir.join("fleet.agg.jsonl");
    let mut args = vec!["fleet", "--procs", "2", "--kill-shard", "0:1"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&[
        "--out",
        merged.to_str().unwrap(),
        "--agg",
        fleet_agg.to_str().unwrap(),
    ]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("merged t-digest summary"), "{stdout}");

    // Compare the merged sketch against the single-stream one: exact
    // moments must agree to fp noise; quantiles within the documented
    // digest tolerance.
    let single = dpbench::harness::sink::read_summary(&ref_agg).unwrap();
    let fleet = dpbench::harness::sink::read_summary(&fleet_agg).unwrap();
    assert_eq!(single.samples_seen(), fleet.samples_seen());
    let single_sums = single.summaries();
    let fleet_sums = fleet.summaries();
    assert_eq!(single_sums.len(), fleet_sums.len());
    for ((alg_a, _, a), (alg_b, _, b)) in single_sums.iter().zip(&fleet_sums) {
        assert_eq!(alg_a, alg_b);
        assert_eq!(a.n, b.n);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert!((a.mean - b.mean).abs() <= 1e-12 * a.mean.abs().max(1.0));
        assert!(
            (a.p95 - b.p95).abs() <= (0.05 * a.p95.abs()).max(0.01 * (a.max - a.min)),
            "{alg_a}: single p95 {} vs fleet p95 {}",
            a.p95,
            b.p95
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bare_boolean_flags_are_accepted() {
    let dir = tmp_dir("bareflags");
    let ledger = dir.join("run.jsonl");
    // --verbose without a value, trailed by another flag.
    let mut args = vec!["run", "--verbose"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--max-units", "2"]);
    let stdout = run_ok(&args);
    assert!(stdout.contains("plan cache"), "--verbose ignored: {stdout}");
    // Bare --resume finishes the run; --resume 1 (the old spelling) then
    // no-ops over the complete ledger.
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--resume"]);
    run_ok(&args);
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--resume", "1"]);
    let stdout = run_ok(&args);
    assert!(
        stdout.contains("6 units already in ledger, 0 run now"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_mismatch_names_the_diverging_config_field() {
    let dir = tmp_dir("mismatch");
    let ledger = dir.join("run.jsonl");
    let mut args = vec!["run"];
    args.extend_from_slice(GRID);
    args.extend_from_slice(&["--out", ledger.to_str().unwrap()]);
    run_ok(&args);
    // Same ledger, different scale and eps: the error must say which
    // fields moved, not just "fingerprint mismatch".
    let mut args = vec![
        "run",
        "--dataset",
        "MEDCOST",
        "--algorithms",
        "IDENTITY,DAWA,UNIFORM",
        "--scale",
        "99000",
        "--domain",
        "256",
        "--trials",
        "3",
        "--samples",
        "2",
        "--eps",
        "0.5",
    ];
    args.extend_from_slice(&["--out", ledger.to_str().unwrap(), "--resume"]);
    let out = dpbench(&args);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scales: ledger=10000 current=99000"),
        "missing scale diff: {stderr}"
    );
    assert!(
        stderr.contains("eps: ledger=0.1 current=0.5"),
        "missing eps diff: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
