//! Selection-profile integration tests (the PR 9 contract): a profile
//! built from several shard summary files must be **byte-identical**
//! however those files are ordered on the command line, and every
//! recommendation drawn from it must be order-independent too. Shard
//! summaries come from real tiny grid runs with distinct fingerprints —
//! exactly the cross-run pooling `AggregatingSink::merge_from` refuses
//! and the selector deliberately performs.

use dpbench::harness::sink::AggregatingSink;
use dpbench::harness::{SelectionProfile, SelectorQuery, ShapeClass};
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dpbench-selector-{name}-{}", std::process::id()));
    p
}

/// One tiny two-mechanism grid (a distinct run fingerprint per call).
fn grid(dataset: &str, scale: u64, eps: f64) -> ExperimentConfig {
    ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name(dataset).unwrap()],
        scales: vec![scale],
        domains: vec![Domain::D1(256)],
        epsilons: vec![eps],
        algorithms: vec!["IDENTITY".into(), "DAWA".into()],
        n_samples: 1,
        n_trials: 3,
        workload: WorkloadSpec::Prefix,
        loss: Loss::L2,
    }
}

#[test]
fn profile_is_invariant_to_summary_merge_order() {
    // Four shards from four distinct runs: different datasets, scales,
    // and ε, so cells overlap (two shards land in the same scale/ε
    // bucket) without being identical.
    let shards = [
        ("MEDCOST", 1_000_u64, 0.1),
        ("ADULT", 1_000, 0.1),
        ("MEDCOST", 100_000, 1.0),
        ("HEPTH", 10_000, 0.01),
    ];
    let mut paths = Vec::new();
    for (i, (ds, scale, eps)) in shards.iter().enumerate() {
        let runner = Runner::new(grid(ds, *scale, *eps));
        let mut sink = AggregatingSink::new();
        runner.run_with_sink(&runner.manifest(), &mut sink).unwrap();
        let path = tmp(&format!("shard{i}"));
        sink.write_summary_file(&path).unwrap();
        paths.push(path);
    }

    // The reference profile and its answers to a spread of queries
    // (exact hits, a shaped query, and an off-grid near-fallback).
    let reference = SelectionProfile::from_summary_files(&paths).unwrap();
    assert!(
        reference.cells.len() >= 3,
        "expected several cells, got {}",
        reference.cells.len()
    );
    let ref_path = tmp("profile-ref");
    reference.write_file(&ref_path).unwrap();
    let ref_bytes = std::fs::read(&ref_path).unwrap();
    assert_eq!(
        SelectionProfile::read_file(&ref_path).unwrap(),
        reference,
        "profile must round-trip through its file form"
    );

    let queries = [
        SelectorQuery {
            domain: Domain::D1(256),
            shape: None,
            scale: 1_000,
            epsilon: 0.1,
        },
        SelectorQuery {
            domain: Domain::D1(256),
            shape: Some(ShapeClass::of_dataset("ADULT")),
            scale: 1_000,
            epsilon: 0.1,
        },
        SelectorQuery {
            domain: Domain::D1(256),
            shape: None,
            scale: 100_000,
            epsilon: 1.0,
        },
        // Off every measured bucket: answered by nearest-cell fallback.
        SelectorQuery {
            domain: Domain::D1(256),
            shape: None,
            scale: 77,
            epsilon: 3.3,
        },
    ];
    let answer = |profile: &SelectionProfile, q: &SelectorQuery| {
        let rec = profile.lookup(q).expect("a same-dims cell always exists");
        format!("{} via {}", rec.cell.winner().mechanism, rec.reason())
    };
    let ref_answers: Vec<String> = queries.iter().map(|q| answer(&reference, q)).collect();

    // Every rotation of the input list, plus seeded shuffles, must
    // produce the same bytes and the same recommendations.
    let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
    for round in 0..7 {
        let mut order = paths.clone();
        if round < 4 {
            order.rotate_left(round);
        } else {
            for i in (1..order.len()).rev() {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                order.swap(i, (lcg >> 33) as usize % (i + 1));
            }
        }
        let profile = SelectionProfile::from_summary_files(&order).unwrap();
        let path = tmp(&format!("profile-{round}"));
        profile.write_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            bytes, ref_bytes,
            "summary order {order:?} changed the profile bytes"
        );
        for (q, want) in queries.iter().zip(&ref_answers) {
            assert_eq!(&answer(&profile, q), want, "order {order:?}");
        }
    }

    for p in &paths {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&ref_path).ok();
}
