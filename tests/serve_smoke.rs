//! End-to-end tests of the online release server: the budget invariant
//! under concurrency, bit-exact journal recovery across restarts, the
//! shared warm plan cache, and request batching.

use dpbench::harness::serve::{self, http, JournalOp, ServeConfig, TenantAccountant};
use dpbench::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn tmp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpbench-serve-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("spend.jsonl")
}

fn test_server(
    tenants: &[(&str, f64)],
    journal: Option<&Path>,
    batch_ms: u64,
) -> serve::ServerHandle {
    serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        datasets: vec!["MEDCOST".into()],
        scale: 10_000,
        domain: Domain::D1(256),
        tenants: tenants.iter().map(|(n, e)| (n.to_string(), *e)).collect(),
        journal: journal.map(PathBuf::from),
        threads: 4,
        batch_window: Duration::from_millis(batch_ms),
        seed: 7,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn release_body(tenant: &str, mech: &str, eps: f64) -> String {
    format!("{{\"tenant\":\"{tenant}\",\"dataset\":\"MEDCOST\",\"mechanism\":\"{mech}\",\"eps\":{eps}}}")
}

/// Pull the integer after `"key":` out of a flat stretch of JSON. Only
/// for keys that appear once in the body.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The acceptance invariant: a tenant granted ε=1.0 spends exactly up to
/// 1.0 across concurrent requests — exactly 4 of 8 racing 0.25-ε
/// requests are admitted, the rest get the structured 429 — and a server
/// restarted from the journal holds the identical (bit-exact) balance
/// and refuses identically.
#[test]
fn concurrent_spend_exactly_exhausts_the_budget_and_survives_restart() {
    let journal = tmp_journal("exhaust");
    let _ = std::fs::remove_file(&journal);
    let spent_bits;
    {
        let handle = test_server(&[("alice", 1.0)], Some(&journal), 0);
        let addr = handle.addr().to_string();
        let barrier = Arc::new(Barrier::new(8));
        let ok = Arc::new(AtomicU64::new(0));
        let refused = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                let ok = Arc::clone(&ok);
                let refused = Arc::clone(&refused);
                std::thread::spawn(move || {
                    let body = release_body("alice", "IDENTITY", 0.25);
                    barrier.wait();
                    let (status, resp) =
                        http::request(&addr, "POST", "/v1/release", Some(&body)).unwrap();
                    match status {
                        200 => ok.fetch_add(1, Ordering::Relaxed),
                        429 => {
                            assert!(resp.contains("\"error\":\"budget_exhausted\""), "{resp}");
                            refused.fetch_add(1, Ordering::Relaxed)
                        }
                        s => panic!("unexpected status {s}: {resp}"),
                    };
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ok.load(Ordering::Relaxed), 4, "1.0 / 0.25 admits exactly 4");
        assert_eq!(refused.load(Ordering::Relaxed), 4);

        // Exhausted: even the smallest further request is refused.
        let body = release_body("alice", "IDENTITY", 0.001);
        let (status, resp) = http::request(&addr, "POST", "/v1/release", Some(&body)).unwrap();
        assert_eq!(status, 429, "{resp}");

        let snap = handle.state().accountant.snapshot("alice").unwrap();
        assert_eq!(
            snap.spent.to_bits(),
            1.0_f64.to_bits(),
            "spent exactly ε=1.0"
        );
        assert_eq!(snap.releases, 4);
        spent_bits = snap.spent.to_bits();
        handle.shutdown().unwrap();
    }

    // The journal's spend sum replays to exactly the live balance.
    let records = serve::journal::replay(&journal).unwrap();
    assert_eq!(records.len(), 4, "only admitted requests are journaled");
    let mut replayed = 0.0_f64;
    for rec in &records {
        assert_eq!(rec.op, JournalOp::Spend);
        replayed += rec.eps;
    }
    assert_eq!(replayed.to_bits(), spent_bits, "journal sum is bit-exact");

    // Restart from the journal: same balance, same refusal.
    let handle = test_server(&[("alice", 1.0)], Some(&journal), 0);
    let addr = handle.addr().to_string();
    let snap = handle.state().accountant.snapshot("alice").unwrap();
    assert_eq!(
        snap.spent.to_bits(),
        spent_bits,
        "restart recovers bit-exactly"
    );
    let (status, resp) = http::request(&addr, "GET", "/v1/tenants/alice/budget", None).unwrap();
    assert_eq!(status, 200);
    assert!(resp.contains("\"remaining\":0"), "{resp}");
    let body = release_body("alice", "IDENTITY", 0.001);
    let (status, _) = http::request(&addr, "POST", "/v1/release", Some(&body)).unwrap();
    assert_eq!(status, 429, "restarted server refuses identically");
    handle.shutdown().unwrap();
}

/// Repeated identical releases hit the shared cross-request plan cache:
/// the first request builds (hit bit false), every later one is served
/// warm (hit bit true), and the status counters agree.
#[test]
fn repeated_identical_releases_hit_the_shared_plan_cache() {
    let handle = test_server(&[("bob", 10.0)], None, 0);
    let addr = handle.addr().to_string();
    for i in 0..5 {
        let body = release_body("bob", "DAWA", 0.1);
        let (status, resp) = http::request(&addr, "POST", "/v1/release", Some(&body)).unwrap();
        assert_eq!(status, 200, "{resp}");
        let expected = format!("\"plan_cache_hit\":{}", i > 0);
        assert!(resp.contains(&expected), "request {i}: {resp}");
    }
    let (status, resp) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        resp.contains("\"plan_cache\":{\"hits\":4,\"misses\":1,\"built\":1}"),
        "{resp}"
    );
    assert!(resp.contains("\"DAWA\":5"), "{resp}");
    let stats = handle.state().plan_cache.stats();
    assert_eq!((stats.hits, stats.misses), (4, 1));
    handle.shutdown().unwrap();
}

/// Concurrent same-strategy requests inside the batch window share one
/// `Plan::execute`: followers return the leader's release verbatim (the
/// `batched` bit set), and distinct estimates equal the number of
/// executions the batcher actually led.
#[test]
fn batch_window_groups_concurrent_identical_requests() {
    let handle = test_server(&[("carol", 16.0)], None, 200);
    let addr = handle.addr().to_string();
    let barrier = Arc::new(Barrier::new(4));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let body = release_body("carol", "IDENTITY", 0.5);
                barrier.wait();
                let (status, resp) =
                    http::request(&addr, "POST", "/v1/release", Some(&body)).unwrap();
                assert_eq!(status, 200, "{resp}");
                resp
            })
        })
        .collect();
    let responses: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    let estimate_of = |resp: &str| -> String {
        let at = resp.find("\"estimate\":[").unwrap();
        let end = resp[at..].find(']').unwrap();
        resp[at..at + end].to_string()
    };
    let mut distinct: Vec<String> = responses.iter().map(|r| estimate_of(r)).collect();
    distinct.sort();
    distinct.dedup();

    let (status, status_body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    let led = json_u64(&status_body, "led");
    let followed = json_u64(&status_body, "followed");
    assert_eq!(led + followed, 4, "{status_body}");
    assert!(followed >= 1, "no request joined a batch: {status_body}");
    assert_eq!(
        distinct.len() as u64,
        led,
        "distinct estimates must equal executions led"
    );
    let batched = responses
        .iter()
        .filter(|r| r.contains("\"batched\":true"))
        .count() as u64;
    assert_eq!(
        batched, followed,
        "the batched bit marks exactly the followers"
    );

    // Every joiner still paid its own ε: budgets stay conservative.
    let snap = handle.state().accountant.snapshot("carol").unwrap();
    assert_eq!(
        snap.spent.to_bits(),
        2.0_f64.to_bits(),
        "4 × 0.5 all charged"
    );
    handle.shutdown().unwrap();
}

/// Property test over the accountant alone: any interleaving of
/// concurrent reserve/refund for one tenant never over-spends ε, and the
/// journal — even after a simulated crash tears its final line —
/// replays to the exact live balance.
#[test]
fn concurrent_reserve_refund_never_overspends_and_replays_bit_exactly() {
    use dpbench_core::rng::rng_for;
    use rand::Rng;

    for round in 0..3_u64 {
        let journal = tmp_journal(&format!("prop{round}"));
        let _ = std::fs::remove_file(&journal);
        let acct = Arc::new(TenantAccountant::new(&[("t".into(), 1.0)], Some(&journal)).unwrap());
        let threads: Vec<_> = (0..8_u64)
            .map(|tid| {
                let acct = Arc::clone(&acct);
                std::thread::spawn(move || {
                    let mut rng = rng_for("serve-prop", &[round, tid]);
                    for _ in 0..50 {
                        let eps = rng.gen_range(0.001..0.02);
                        if acct.reserve("t", eps).is_ok() && rng.gen_bool(0.3) {
                            acct.refund("t", eps).unwrap();
                        }
                        // The invariant holds at every intermediate point,
                        // not just after the dust settles.
                        let snap = acct.snapshot("t").unwrap();
                        assert!(
                            snap.spent <= 1.0 + 1e-6,
                            "over-spend: {} > 1.0 (round {round})",
                            snap.spent
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        acct.sync().unwrap();
        let live = acct.snapshot("t").unwrap();
        assert!(live.spent <= 1.0 + 1e-6);
        drop(acct);

        // Clean restart: bit-exact.
        let restarted = TenantAccountant::new(&[("t".into(), 1.0)], Some(&journal)).unwrap();
        let snap = restarted.snapshot("t").unwrap();
        assert_eq!(snap.spent.to_bits(), live.spent.to_bits(), "round {round}");
        drop(restarted);

        // Simulated crash mid-append: a torn final line is healed by
        // truncation and the surviving prefix still replays bit-exactly.
        let mut raw = std::fs::read_to_string(&journal).unwrap();
        raw.push_str("{\"t\":\"spend\",\"tenant\":\"t\",\"eps\":0.01");
        std::fs::write(&journal, raw).unwrap();
        let healed = TenantAccountant::new(&[("t".into(), 1.0)], Some(&journal)).unwrap();
        let snap = healed.snapshot("t").unwrap();
        assert_eq!(
            snap.spent.to_bits(),
            live.spent.to_bits(),
            "round {round}: torn tail must not change the balance"
        );
    }
}
