//! End-to-end harness runs reproducing the paper's headline findings at
//! reduced fidelity: Finding 1 (data-dependence wins at low signal),
//! Finding 2 (and loses at high signal), plus full-grid smoke coverage of
//! every registered mechanism through the public API.

use dpbench::harness::competitive::{competitive_in_setting, RiskProfile};
use dpbench::prelude::*;
use dpbench_core::Loss;

fn grid_1d(algorithms: &[&str], scales: Vec<u64>, n: usize) -> ResultStore {
    let config = ExperimentConfig {
        datasets: datasets_1d(),
        scales,
        domains: vec![Domain::D1(n)],
        epsilons: vec![0.1],
        algorithms: algorithms.iter().map(|s| s.to_string()).collect(),
        n_samples: 1,
        n_trials: 2,
        workload: WorkloadSpec::Prefix,
        loss: Loss::L2,
    };
    Runner::new(config).run()
}

#[test]
fn full_1d_suite_runs_through_the_harness() {
    let store = grid_1d(NAMES_1D, vec![10_000], 256);
    // 18 datasets × 15 algorithms × 2 trials.
    assert_eq!(store.samples().len(), 18 * 15 * 2);
    assert!(store.samples().iter().all(|s| s.error.is_finite()));
}

#[test]
fn full_2d_suite_runs_through_the_harness() {
    let config = ExperimentConfig {
        datasets: datasets_2d(),
        scales: vec![100_000],
        domains: vec![Domain::D2(32, 32)],
        epsilons: vec![0.1],
        algorithms: NAMES_2D.iter().map(|s| s.to_string()).collect(),
        n_samples: 1,
        n_trials: 2,
        workload: WorkloadSpec::RandomRanges(500),
        loss: Loss::L2,
    };
    let store = Runner::new(config).run();
    assert_eq!(store.samples().len(), 9 * NAMES_2D.len() * 2);
    assert!(store.samples().iter().all(|s| s.error.is_finite()));
}

#[test]
fn finding1_data_dependence_wins_at_low_signal() {
    // Small scale (10^3): the best data-dependent algorithm should beat
    // the best data-independent one on a clear majority of datasets. The
    // paper's claim ranges over the full suite, so both pools include
    // every applicable algorithm (the winner at this signal level varies
    // by dataset shape).
    const DI: &[&str] = &["HB", "IDENTITY", "H", "GREEDY_H", "PRIVELET"];
    const DD: &[&str] = &["DAWA", "MWEM*", "AHP*", "PHP", "EFPA", "DPCUBE", "UNIFORM"];
    let all: Vec<&str> = DI.iter().chain(DD.iter()).copied().collect();
    let store = grid_1d(&all, vec![1_000], 512);
    let mut dd_wins = 0;
    let mut total = 0;
    for setting in store.settings() {
        let di_best = DI
            .iter()
            .map(|a| store.mean_error(a, setting))
            .fold(f64::INFINITY, f64::min);
        let dd_best = DD
            .iter()
            .map(|a| store.mean_error(a, setting))
            .fold(f64::INFINITY, f64::min);
        total += 1;
        if dd_best < di_best {
            dd_wins += 1;
        }
    }
    assert!(
        dd_wins * 3 >= total * 2,
        "data-dependent won only {dd_wins}/{total} at scale 10^3"
    );
}

#[test]
fn finding2_data_independence_wins_at_high_signal() {
    // Large scale (10^7): HB should beat the biased data-dependent
    // algorithms (MWEM, PHP, UNIFORM) on nearly every dataset.
    let store = grid_1d(&["HB", "MWEM", "PHP", "UNIFORM"], vec![10_000_000], 512);
    let mut hb_wins = 0;
    let mut total = 0;
    for setting in store.settings() {
        let hb = store.mean_error("HB", setting);
        let dd_best = ["MWEM", "PHP", "UNIFORM"]
            .iter()
            .map(|a| store.mean_error(a, setting))
            .fold(f64::INFINITY, f64::min);
        total += 1;
        if hb < dd_best {
            hb_wins += 1;
        }
    }
    assert!(
        hb_wins * 4 >= total * 3,
        "HB won only {hb_wins}/{total} at scale 10^7"
    );
}

#[test]
fn competitive_analysis_runs_on_harness_output() {
    let algs = ["IDENTITY", "DAWA", "UNIFORM"];
    let store = grid_1d(&algs, vec![10_000], 256);
    let names: Vec<String> = algs.iter().map(|s| s.to_string()).collect();
    for setting in store.settings() {
        let winners = competitive_in_setting(&store, setting, &names, RiskProfile::Mean);
        assert!(!winners.is_empty(), "no competitive algorithm in {setting}");
        let p95 = competitive_in_setting(&store, setting, &names, RiskProfile::P95);
        assert!(!p95.is_empty());
    }
}

#[test]
fn identity_error_tracks_theory() {
    // IDENTITY on the Identity workload: E[scaled error] is analytically
    // ~ sqrt(q·Var)/(s·q) with Var = 2/ε²; check within 20%.
    let n = 1024_usize;
    let scale = 100_000_u64;
    let eps = 0.1;
    let config = ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name("BIDS-ALL").unwrap()],
        scales: vec![scale],
        domains: vec![Domain::D1(n)],
        epsilons: vec![eps],
        algorithms: vec!["IDENTITY".into()],
        n_samples: 1,
        n_trials: 10,
        workload: WorkloadSpec::Identity,
        loss: Loss::L2,
    };
    let store = Runner::new(config).run();
    let setting = store.settings()[0].clone();
    let measured = store.mean_error("IDENTITY", &setting);
    // E[||z||_2] ≈ sqrt(n · 2/ε²) for n iid Laplace(1/ε) coordinates.
    let expected = (n as f64 * 2.0 / (eps * eps)).sqrt() / (scale as f64 * n as f64);
    let ratio = measured / expected;
    assert!(
        (0.8..1.2).contains(&ratio),
        "measured {measured:.3e} vs theory {expected:.3e}"
    );
}
