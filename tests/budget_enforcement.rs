//! End-to-end privacy accounting (paper Principles 5–7): every mechanism
//! in the registry must route all of its ε spending through the budget
//! ledger and never overdraw it.

use dpbench::prelude::*;
use dpbench_core::rng::rng_for;

fn check_budget(name: &str, x: &DataVector, workload: &Workload, eps: f64) {
    let mech = mechanism_by_name(name).expect("registered");
    let mut ledger = BudgetLedger::new(eps);
    let mut rng = rng_for(
        "budget-test",
        &[dpbench_core::rng::hash_str(name), x.n_cells() as u64],
    );
    let est = mech
        .run(x, workload, &mut ledger, &mut rng)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(est.len(), x.n_cells(), "{name}: wrong estimate length");
    assert!(
        ledger.spent() <= ledger.total() * (1.0 + 1e-9),
        "{name}: overdrew the budget ({} > {})",
        ledger.spent(),
        ledger.total()
    );
    assert!(
        est.iter().all(|v| v.is_finite()),
        "{name}: non-finite estimates"
    );
}

#[test]
fn all_1d_mechanisms_respect_budget() {
    let mut rng = rng_for("budget-data", &[1]);
    let dataset = dpbench::datasets::catalog::by_name("MEDCOST").unwrap();
    let x = DataGenerator::new().generate(&dataset, Domain::D1(256), 20_000, &mut rng);
    let w = Workload::prefix_1d(256);
    for name in NAMES_1D {
        check_budget(name, &x, &w, 0.5);
    }
}

#[test]
fn all_2d_mechanisms_respect_budget() {
    let mut rng = rng_for("budget-data", &[2]);
    let dataset = dpbench::datasets::catalog::by_name("STROKE").unwrap();
    let x = DataGenerator::new().generate(&dataset, Domain::D2(32, 32), 20_000, &mut rng);
    let w = Workload::random_ranges(Domain::D2(32, 32), 300, &mut rng);
    for name in NAMES_2D.iter().chain(["HYBRIDTREE"].iter()) {
        check_budget(name, &x, &w, 0.5);
    }
}

#[test]
fn budget_holds_across_epsilons() {
    let mut rng = rng_for("budget-data", &[3]);
    let dataset = dpbench::datasets::catalog::by_name("ADULT").unwrap();
    let x = DataGenerator::new().generate(&dataset, Domain::D1(128), 5_000, &mut rng);
    let w = Workload::prefix_1d(128);
    for eps in [0.01, 0.1, 1.0, 10.0] {
        for name in ["DAWA", "MWEM*", "AHP*", "SF", "PHP", "EFPA"] {
            check_budget(name, &x, &w, eps);
        }
    }
}

/// The per-step budget traces a [`Release`] carries must sum to at most ε
/// for every registry mechanism, and every recorded step must be a
/// non-negative draw.
#[test]
fn release_budget_traces_sum_to_at_most_epsilon() {
    let mut rng = rng_for("trace-data", &[1]);
    let d1 = dpbench::datasets::catalog::by_name("MEDCOST").unwrap();
    let x1 = DataGenerator::new().generate(&d1, Domain::D1(256), 20_000, &mut rng);
    let w1 = Workload::prefix_1d(256);
    let d2 = dpbench::datasets::catalog::by_name("STROKE").unwrap();
    let x2 = DataGenerator::new().generate(&d2, Domain::D2(32, 32), 20_000, &mut rng);
    let w2 = Workload::random_ranges(Domain::D2(32, 32), 300, &mut rng);

    let eps = 0.5;
    let mut checked = 0;
    for name in NAMES_1D.iter().chain(NAMES_2D.iter()) {
        let mech = mechanism_by_name(name).expect("registered");
        let (x, w) = if mech.supports(&Domain::D1(256)) {
            (&x1, &w1)
        } else {
            (&x2, &w2)
        };
        let mut rng = rng_for("trace-test", &[dpbench_core::rng::hash_str(name)]);
        let release = mech
            .release_eps(x, w, eps, &mut rng)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !release.budget_trace.is_empty(),
            "{name}: empty budget trace"
        );
        assert!(
            release.budget_trace.iter().all(|r| r.epsilon >= 0.0),
            "{name}: negative spend record"
        );
        assert!(
            release.spent() <= eps * (1.0 + 1e-9),
            "{name}: trace sums to {} > ε = {eps}",
            release.spent()
        );
        assert_eq!(release.diagnostics.mechanism, *name);
        checked += 1;
    }
    assert!(checked >= 20, "expected to cover both suites");
}

/// Data-independent plans must expose their strategy size and sensitivity.
#[test]
fn data_independent_diagnostics_are_populated() {
    let domain = Domain::D1(256);
    let w = Workload::prefix_1d(256);
    for name in ["IDENTITY", "H", "HB", "GREEDY_H", "PRIVELET"] {
        let mech = mechanism_by_name(name).unwrap();
        let plan = mech.plan(&domain, &w).unwrap();
        let diag = plan.diagnostics();
        assert!(
            diag.data_independent,
            "{name} plan should be data-independent"
        );
        assert!(
            diag.measurements.unwrap() > 0,
            "{name}: no measurement count"
        );
        assert!(
            diag.sensitivity.unwrap() >= 1.0,
            "{name}: missing sensitivity"
        );
    }
}

#[test]
fn repaired_mechanisms_respect_budget() {
    use dpbench::harness::repair::SideInfoRepair;
    let mut rng = rng_for("budget-data", &[4]);
    let dataset = dpbench::datasets::catalog::by_name("GOWALLA").unwrap();
    let x = DataGenerator::new().generate(&dataset, Domain::D2(32, 32), 50_000, &mut rng);
    let w = Workload::random_ranges(Domain::D2(32, 32), 200, &mut rng);
    for name in ["UGRID", "AGRID"] {
        let repaired = SideInfoRepair::new(name).unwrap();
        let mut ledger = BudgetLedger::new(0.5);
        let est = repaired.run(&x, &w, &mut ledger, &mut rng).unwrap();
        assert_eq!(est.len(), x.n_cells());
        assert!(ledger.spent() <= ledger.total() * (1.0 + 1e-9));
    }
}
