//! Hostile-client tests against a live server socket: malformed and
//! adversarial byte streams, slowloris dribble, idle parking, the
//! connection cap, per-tenant rate limits, hot tenant reload, and the
//! health/readiness probes.
//!
//! Every hostile input must map to the documented error contract — a
//! clean 4xx/5xx with a machine-readable `error` code, or a silent reap
//! for idle peers — never a panic, a hang, or a pinned worker.

use dpbench::harness::serve::{self, http, Limits, RateLimit, ServeConfig};
use dpbench::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn server_with(limits: Limits, tenants: &[(&str, f64)]) -> serve::ServerHandle {
    server_full(limits, tenants, None)
}

fn server_full(
    limits: Limits,
    tenants: &[(&str, f64)],
    tenant_config: Option<PathBuf>,
) -> serve::ServerHandle {
    serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        datasets: vec!["MEDCOST".into()],
        scale: 10_000,
        domain: Domain::D1(256),
        tenants: tenants.iter().map(|(n, e)| (n.to_string(), *e)).collect(),
        threads: 2,
        seed: 7,
        limits,
        tenant_config,
        ..ServeConfig::default()
    })
    .unwrap()
}

/// Write raw bytes, then read the connection to EOF (the server closes
/// after every rejected request). Returns (status, full response text).
fn raw_exchange(addr: &str, payload: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload).unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp).into_owned();
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

/// Raw adversarial byte streams: each gets its documented 4xx and a
/// closed connection — the process neither panics nor hangs.
#[test]
fn malformed_requests_get_clean_4xx_and_close() {
    let handle = server_with(Limits::default(), &[("t", 1.0)]);
    let addr = handle.addr().to_string();

    let cases: Vec<(Vec<u8>, u16, &str)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400, "bad_request_line"),
        (
            b"GET /x HTTP/1.1 smuggled\r\n\r\n".to_vec(),
            400,
            "bad_request_line",
        ),
        (
            b"POST /v1/release HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            400,
            "bad_content_length",
        ),
        (
            b"POST /v1/release HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n".to_vec(),
            400,
            "bad_content_length",
        ),
        (
            b"POST /v1/release HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n".to_vec(),
            413,
            "body_too_large",
        ),
        (
            b"GET /v1/status HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
            400,
            "bad_header",
        ),
        (
            b"\x00\xff\xfenot http at all\r\n\r\n".to_vec(),
            400,
            "bad_request",
        ),
    ];
    for (payload, want_status, want_code) in &cases {
        let (status, text) = raw_exchange(&addr, payload);
        assert_eq!(status, *want_status, "{payload:?}: {text}");
        assert!(
            text.contains(&format!("\"error\":\"{want_code}\"")),
            "{payload:?}: {text}"
        );
    }

    // A flood of headers trips the header-count cap.
    let mut many = b"GET /v1/status HTTP/1.1\r\n".to_vec();
    for i in 0..100 {
        many.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
    }
    many.extend_from_slice(b"\r\n");
    let (status, text) = raw_exchange(&addr, &many);
    assert_eq!(status, 431, "{text}");
    assert!(text.contains("too_many_headers"), "{text}");

    // A single oversized header blows the head-size cap.
    let mut huge = b"GET /v1/status HTTP/1.1\r\nX-Pad: ".to_vec();
    huge.resize(http::MAX_HEAD + 64, b'a');
    let (status, text) = raw_exchange(&addr, &huge);
    assert_eq!(status, 431, "{text}");
    assert!(text.contains("header_too_large"), "{text}");

    // The server is still fully healthy afterwards.
    let (status, _) = http::request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(status, 200);
    handle.shutdown().unwrap();
}

/// Slowloris: a client dribbling one header byte at a time gets a 408
/// once the partial-request deadline passes, while a healthy client on
/// another connection is served normally throughout.
#[test]
fn slowloris_dribble_gets_408_and_healthy_clients_proceed() {
    let limits = Limits {
        header_timeout: Duration::from_millis(300),
        ..Limits::default()
    };
    let handle = server_with(limits, &[("t", 1.0)]);
    let addr = handle.addr().to_string();

    let mut slow = TcpStream::connect(&addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    slow.write_all(b"POST /v1/release HTTP/1.1\r\nX-Drip: ")
        .unwrap();

    // While the slow peer stalls, a real request completes.
    let (status, _) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);

    let mut resp = Vec::new();
    slow.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("request_timeout"), "{text}");

    let (_, status_body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert!(status_body.contains("\"timeouts\":1"), "{status_body}");
    handle.shutdown().unwrap();
}

/// An idle keep-alive connection (no partial request pending) is reaped
/// silently: EOF, no bytes, and the reap is counted.
#[test]
fn idle_keepalive_connection_is_reaped_silently() {
    let limits = Limits {
        idle_timeout: Duration::from_millis(300),
        ..Limits::default()
    };
    let handle = server_with(limits, &[("t", 1.0)]);
    let addr = handle.addr().to_string();

    let mut idle = TcpStream::connect(&addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    idle.read_to_end(&mut buf).unwrap();
    assert!(buf.is_empty(), "reap must be silent, got {buf:?}");

    let (_, status_body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert!(status_body.contains("\"reaped_idle\":1"), "{status_body}");
    handle.shutdown().unwrap();
}

/// Past the connection cap, new connects get a one-shot 503 with
/// `Retry-After` and are never queued; dropping a parked connection
/// frees a slot.
#[test]
fn connection_cap_sheds_with_retry_after() {
    let limits = Limits {
        max_conns: 4,
        idle_timeout: Duration::from_secs(60),
        ..Limits::default()
    };
    let handle = server_with(limits, &[("t", 1.0)]);
    let addr = handle.addr().to_string();

    let parked: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(&addr).unwrap()).collect();
    // The accept loop registers conns asynchronously; poll until the
    // fifth connect observes the cap.
    let mut shed = None;
    for _ in 0..100 {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut resp = Vec::new();
        if s.read_to_end(&mut resp).is_ok() && !resp.is_empty() {
            shed = Some(String::from_utf8_lossy(&resp).into_owned());
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let text = shed.expect("no connect was ever shed at the cap");
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("\"error\":\"overloaded\""), "{text}");
    assert!(text.contains("Retry-After:"), "{text}");

    drop(parked);
    // With slots free again, normal service resumes.
    let mut ok = false;
    for _ in 0..100 {
        if let Ok((200, _)) = http::request(&addr, "GET", "/v1/healthz", None) {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(ok, "server did not recover after parked conns dropped");
    handle.shutdown().unwrap();
}

/// The per-tenant token bucket answers 429 `rate_limited` — a code
/// distinct from `budget_exhausted` — with a Retry-After hint, and only
/// throttles the noisy tenant.
#[test]
fn rate_limit_429_is_distinct_from_budget_exhausted() {
    let limits = Limits {
        rate_limit: Some(RateLimit {
            rps: 0.5,
            burst: 2.0,
        }),
        ..Limits::default()
    };
    let handle = server_with(limits, &[("noisy", 100.0), ("quiet", 100.0)]);
    let addr = handle.addr().to_string();
    let body = |t: &str| {
        format!("{{\"tenant\":\"{t}\",\"dataset\":\"MEDCOST\",\"mechanism\":\"IDENTITY\",\"eps\":0.01}}")
    };

    let mut limited = None;
    for _ in 0..4 {
        let (status, resp) =
            http::request(&addr, "POST", "/v1/release", Some(&body("noisy"))).unwrap();
        if status == 429 {
            limited = Some(resp);
            break;
        }
        assert_eq!(status, 200, "{resp}");
    }
    let resp = limited.expect("burst of 4 never hit the 2-token bucket");
    assert!(resp.contains("\"error\":\"rate_limited\""), "{resp}");
    assert!(!resp.contains("budget_exhausted"), "{resp}");

    // The quiet tenant's bucket is untouched.
    let (status, resp) = http::request(&addr, "POST", "/v1/release", Some(&body("quiet"))).unwrap();
    assert_eq!(status, 200, "{resp}");

    // Rate-limited requests never touch the budget.
    let snap = handle.state().accountant.snapshot("noisy").unwrap();
    assert!(
        (snap.spent / 0.01).round() as u64 == snap.releases,
        "429s must not charge ε: {snap:?}"
    );
    handle.shutdown().unwrap();
}

/// Hot tenant reload via `POST /v1/admin/reload`: grants are re-read
/// from the config file — new tenants appear, grown grants extend, and
/// a grant shrunk below its spent clamps to exhausted, exactly as a
/// journal replay against the smaller grant would.
#[test]
fn admin_reload_adds_extends_and_clamps_shrunken_grants() {
    let dir = std::env::temp_dir().join(format!("dpbench-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = dir.join("tenants.toml");
    std::fs::write(&cfg, "alice = 1.0\n").unwrap();

    let handle = server_full(Limits::default(), &[("alice", 1.0)], Some(cfg.clone()));
    let addr = handle.addr().to_string();
    let body = |t: &str, eps: f64| {
        format!("{{\"tenant\":\"{t}\",\"dataset\":\"MEDCOST\",\"mechanism\":\"IDENTITY\",\"eps\":{eps}}}")
    };

    let (status, _) =
        http::request(&addr, "POST", "/v1/release", Some(&body("alice", 0.75))).unwrap();
    assert_eq!(status, 200);

    // Shrink alice below her spend; add bob.
    std::fs::write(&cfg, "# ops rotation\n[tenants]\nalice = 0.5\nbob = 2.0\n").unwrap();
    let (status, resp) = http::request(&addr, "POST", "/v1/admin/reload", None).unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"added\":1"), "{resp}");
    assert!(resp.contains("\"shrunk\":1"), "{resp}");

    // Alice is clamped to exhausted: spent == total == 0.5, remaining 0.
    let (status, resp) = http::request(&addr, "GET", "/v1/tenants/alice/budget", None).unwrap();
    assert_eq!(status, 200);
    assert!(resp.contains("\"remaining\":0"), "{resp}");
    let (status, resp) =
        http::request(&addr, "POST", "/v1/release", Some(&body("alice", 0.001))).unwrap();
    assert_eq!(status, 429, "{resp}");
    assert!(resp.contains("budget_exhausted"), "{resp}");

    // Bob exists now and is served.
    let (status, resp) =
        http::request(&addr, "POST", "/v1/release", Some(&body("bob", 0.1))).unwrap();
    assert_eq!(status, 200, "{resp}");

    // A broken config is rejected wholesale — grants stay as they were.
    std::fs::write(&cfg, "alice = not-a-number\n").unwrap();
    let (status, resp) = http::request(&addr, "POST", "/v1/admin/reload", None).unwrap();
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("bad_tenant_config"), "{resp}");
    let (status, _) = http::request(&addr, "POST", "/v1/release", Some(&body("bob", 0.1))).unwrap();
    assert_eq!(status, 200, "grants must survive a failed reload");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reload touching both `--tenant-config` and `--profile` is
/// all-or-nothing: a broken profile rejects the whole reload, so tenant
/// changes staged in the same call must not land (no partial reload).
#[test]
fn reload_is_atomic_across_tenants_and_profile() {
    use dpbench::harness::sink::AggregatingSink;
    use dpbench::harness::SelectionProfile;

    let dir = std::env::temp_dir().join(format!("dpbench-reload-atomic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = dir.join("tenants.toml");
    std::fs::write(&cfg, "alice = 1.0\n").unwrap();

    // A real (tiny) profile so the server starts with `auto` routable.
    let prof = dir.join("profile.json");
    let runner = Runner::new(ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name("MEDCOST").unwrap()],
        scales: vec![10_000],
        domains: vec![Domain::D1(256)],
        epsilons: vec![1.0],
        algorithms: vec!["IDENTITY".into(), "DAWA".into()],
        n_samples: 1,
        n_trials: 2,
        workload: WorkloadSpec::Prefix,
        loss: dpbench_core::Loss::L2,
    });
    let mut sink = AggregatingSink::new();
    runner.run_with_sink(&runner.manifest(), &mut sink).unwrap();
    let good_profile = SelectionProfile::build(std::slice::from_ref(&sink));
    good_profile.write_file(&prof).unwrap();

    let handle = serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        datasets: vec!["MEDCOST".into()],
        scale: 10_000,
        domain: Domain::D1(256),
        tenants: vec![("alice".into(), 1.0)],
        threads: 2,
        seed: 7,
        tenant_config: Some(cfg.clone()),
        profile: Some(prof.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let body = |t: &str| {
        format!(
            "{{\"tenant\":\"{t}\",\"dataset\":\"MEDCOST\",\"mechanism\":\"IDENTITY\",\"eps\":0.1}}"
        )
    };

    // Stage a tenant addition alongside a broken profile: the reload
    // must fail wholesale, leaving bob ungranted.
    std::fs::write(&cfg, "alice = 1.0\nbob = 2.0\n").unwrap();
    std::fs::write(
        &prof,
        "{\"t\":\"dpbench-profile\",\"v\":99,\"cells\":0,\"sources\":0,\"samples\":0}\n",
    )
    .unwrap();
    let (status, resp) = http::request(&addr, "POST", "/v1/admin/reload", None).unwrap();
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("bad_profile"), "{resp}");
    let (status, resp) = http::request(&addr, "POST", "/v1/release", Some(&body("bob"))).unwrap();
    assert_eq!(
        status, 404,
        "tenant change must not land on a failed reload: {resp}"
    );
    assert!(resp.contains("unknown_tenant"), "{resp}");

    // Restore the profile: the same staged tenant change now commits.
    good_profile.write_file(&prof).unwrap();
    let (status, resp) = http::request(&addr, "POST", "/v1/admin/reload", None).unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"added\":1"), "{resp}");
    assert!(resp.contains("\"profile_cells\":"), "{resp}");
    let (status, resp) = http::request(&addr, "POST", "/v1/release", Some(&body("bob"))).unwrap();
    assert_eq!(status, 200, "{resp}");

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without `--tenant-config`, the reload endpoint answers a structured
/// 409 rather than guessing.
#[test]
fn reload_without_tenant_config_is_a_409() {
    let handle = server_with(Limits::default(), &[("t", 1.0)]);
    let addr = handle.addr().to_string();
    let (status, resp) = http::request(&addr, "POST", "/v1/admin/reload", None).unwrap();
    assert_eq!(status, 409, "{resp}");
    assert!(resp.contains("no_tenant_config"), "{resp}");
    handle.shutdown().unwrap();
}

/// Liveness and readiness probes: healthz is unconditional, readyz
/// reports capacity headroom.
#[test]
fn health_and_readiness_probes() {
    let handle = server_with(Limits::default(), &[("t", 1.0)]);
    let addr = handle.addr().to_string();
    let (status, resp) = http::request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let (status, resp) = http::request(&addr, "GET", "/v1/readyz", None).unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"ready\":true"), "{resp}");
    handle.shutdown().unwrap();
}
