//! Empirical verification of the paper's consistency analysis
//! (Definition 5, Table 1, Appendix C): at ε = 10⁹ the error of a
//! consistent algorithm must essentially vanish, while inconsistent
//! algorithms retain bias on data richer than their structural capacity.

use dpbench::prelude::*;
use dpbench_core::rng::rng_for;

/// Rich 1-D data: many distinct cell levels (defeats coarse partitions).
fn rich_1d(n: usize) -> DataVector {
    let counts: Vec<f64> = (0..n)
        .map(|i| (i as f64) * 7.0 + ((i * i) % 13) as f64)
        .collect();
    DataVector::new(counts, Domain::D1(n))
}

fn high_eps_error(name: &str, x: &DataVector, w: &Workload) -> f64 {
    let mech = mechanism_by_name(name).expect("registered");
    let y = w.evaluate(x);
    let mut rng = rng_for("consistency", &[dpbench_core::rng::hash_str(name)]);
    let est = mech.run_eps(x, w, 1e9, &mut rng).unwrap();
    scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2)
}

#[test]
fn consistent_algorithms_error_vanishes() {
    let x = rich_1d(128);
    let w = Workload::prefix_1d(128);
    for name in [
        "IDENTITY", "H", "HB", "GREEDY_H", "PRIVELET", "DAWA", "AHP", "DPCUBE", "EFPA", "SF",
    ] {
        let err = high_eps_error(name, &x, &w);
        assert!(
            err < 1e-4,
            "{name} claims consistency but err = {err} at eps = 1e9"
        );
    }
}

#[test]
fn inconsistent_algorithms_keep_bias() {
    let x = rich_1d(128);
    let w = Workload::prefix_1d(128);
    // Consistent algorithms land below 1e-4 in the companion test; the
    // inconsistent ones must stay at least an order of magnitude above
    // that bias-free level.
    for name in ["UNIFORM", "MWEM", "PHP"] {
        let err = high_eps_error(name, &x, &w);
        assert!(
            err > 2e-4,
            "{name} is inconsistent but err = {err} (bias unexpectedly vanished)"
        );
    }
}

#[test]
fn quadtree_inconsistent_only_when_height_capped() {
    use dpbench::algorithms::quadtree::QuadTree;
    // 32x32 grid, rich data.
    let counts: Vec<f64> = (0..1024).map(|i| (i % 97) as f64 * 3.0).collect();
    let x = DataVector::new(counts, Domain::D2(32, 32));
    let w = Workload::identity(Domain::D2(32, 32));
    let y = w.evaluate(&x);
    let mut rng = rng_for("consistency-qt", &[1]);

    // Height cap below full resolution (needs 6 levels for 32x32): biased.
    let capped = QuadTree::with_height(4);
    let est = capped.run_eps(&x, &w, 1e9, &mut rng).unwrap();
    let err_capped = scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2);

    // Default c=10 resolves 32x32 fully: unbiased at eps -> inf.
    let full = QuadTree::new();
    let est = full.run_eps(&x, &w, 1e9, &mut rng).unwrap();
    let err_full = scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2);

    // The capped tree's uniform-leaf bias must dominate by orders of
    // magnitude (Theorem 5: inconsistency on under-resolved domains).
    assert!(
        err_capped > 100.0 * err_full.max(1e-12),
        "capped {err_capped} vs full {err_full}"
    );
}

#[test]
fn sf_mean_variant_matches_theorem_7() {
    use dpbench::algorithms::sf::StructureFirst;
    let x = rich_1d(100);
    let w = Workload::identity(Domain::D1(100));
    let y = w.evaluate(&x);
    let mut rng = rng_for("consistency-sf", &[1]);
    // Base (mean) variant: inconsistent.
    let est = StructureFirst::mean_based()
        .run_eps(&x, &w, 1e9, &mut rng)
        .unwrap();
    let err_mean = scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2);
    assert!(
        err_mean > 1e-6,
        "mean-based SF should retain bias: {err_mean}"
    );
    // Modified (hierarchical) variant: consistent.
    let est = StructureFirst::new()
        .run_eps(&x, &w, 1e10, &mut rng)
        .unwrap();
    let err_h = scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2);
    assert!(
        err_h < err_mean,
        "modification should reduce bias: {err_h} vs {err_mean}"
    );
}
