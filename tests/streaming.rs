//! Streaming-engine integration tests: checkpoint/resume determinism,
//! shard-merge bit-identity, JSONL ledger round-trips, and streaming
//! aggregation — the contract the ISSUE's acceptance criteria pin:
//! a sharded run and a kill-then-resume run must reproduce the
//! single-process grid **bit-identically**, across thread counts.

use dpbench::harness::manifest::{RunManifest, UnitId};
use dpbench::harness::sink::{self, AggregatingSink, JsonlSink, MemorySink, ResultSink, Tee};
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::collections::HashSet;
use std::path::PathBuf;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name("MEDCOST").unwrap()],
        scales: vec![10_000],
        domains: vec![Domain::D1(256)],
        epsilons: vec![0.1, 1.0],
        algorithms: vec!["IDENTITY".into(), "DAWA".into(), "GREEDY_H".into()],
        n_samples: 2,
        n_trials: 3,
        workload: WorkloadSpec::Prefix,
        loss: Loss::L2,
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dpbench-streaming-{name}-{}", std::process::id()));
    p
}

/// Canonical comparable form of a sample set.
fn keyed(store: &ResultStore) -> Vec<(String, String, usize, usize, u64)> {
    let mut v: Vec<_> = store
        .samples()
        .iter()
        .map(|s| {
            (
                s.algorithm.clone(),
                s.setting.to_string(),
                s.sample,
                s.trial,
                s.error.to_bits(),
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn kill_and_resume_is_bit_identical_across_thread_counts() {
    // Reference: uninterrupted single-threaded run.
    let mut reference = Runner::new(tiny_config());
    reference.threads = 1;
    let ref_store = reference.run();

    for threads in [1_usize, 4] {
        let path = tmp(&format!("resume-{threads}"));
        let _ = std::fs::remove_file(&path);

        // Phase 1: "crash" after 7 units, ledger on disk.
        let mut first = Runner::new(tiny_config());
        first.threads = threads;
        first.max_units = Some(7);
        let manifest = first.manifest();
        let mut jsonl = JsonlSink::create(&path).unwrap();
        let stats = first.run_with_sink(&manifest, &mut jsonl).unwrap();
        assert_eq!(stats.units, 7);
        drop(jsonl);

        // Phase 2: resume from the ledger.
        let ledger = sink::read_ledger(&path).unwrap();
        assert_eq!(ledger.fingerprint, manifest.fingerprint);
        assert_eq!(ledger.done.len(), 7);
        let mut second = Runner::new(tiny_config());
        second.threads = threads;
        let mut append = JsonlSink::append(&path).unwrap();
        let stats = second.resume(&manifest, &ledger.done, &mut append).unwrap();
        assert_eq!(stats.skipped, 7);
        assert_eq!(stats.units, manifest.len() - 7);
        drop(append);

        // The merged ErrorSample set is bit-identical to the
        // uninterrupted run.
        let resumed = sink::read_store(&path).unwrap();
        assert_eq!(
            keyed(&resumed),
            keyed(&ref_store),
            "threads = {threads}: resume diverged from uninterrupted run"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn resumed_ledger_is_byte_identical_to_uninterrupted_file() {
    // In-order emission makes the *file* — not just the sample set —
    // reproducible: interrupted-then-resumed bytes == one-shot bytes.
    let ref_path = tmp("oneshot");
    let cut_path = tmp("cut");
    for p in [&ref_path, &cut_path] {
        let _ = std::fs::remove_file(p);
    }

    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut oneshot = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut oneshot).unwrap();
    drop(oneshot);

    let mut first = Runner::new(tiny_config());
    first.threads = 4;
    first.max_units = Some(5);
    let mut part = JsonlSink::create(&cut_path).unwrap();
    first.run_with_sink(&manifest, &mut part).unwrap();
    drop(part);
    let done = sink::read_ledger(&cut_path).unwrap().done;
    let mut rest = JsonlSink::append(&cut_path).unwrap();
    Runner::new(tiny_config())
        .resume(&manifest, &done, &mut rest)
        .unwrap();
    drop(rest);

    let a = std::fs::read(&ref_path).unwrap();
    let b = std::fs::read(&cut_path).unwrap();
    assert_eq!(a, b, "resumed ledger bytes differ from one-shot run");
    for p in [&ref_path, &cut_path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn sharded_jsonl_files_merge_to_the_single_process_bytes() {
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let ref_path = tmp("shard-ref");
    let _ = std::fs::remove_file(&ref_path);
    let mut reference = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut reference).unwrap();
    drop(reference);

    let mut shard_paths = Vec::new();
    for i in 0..3 {
        let path = tmp(&format!("shard-{i}"));
        let _ = std::fs::remove_file(&path);
        let shard_runner = Runner::new(tiny_config());
        let mut jsonl = JsonlSink::create(&path).unwrap();
        shard_runner
            .run_with_sink(&manifest.shard(i, 3), &mut jsonl)
            .unwrap();
        drop(jsonl);
        shard_paths.push(path);
    }

    let mut merged = Vec::new();
    sink::merge_jsonl(&shard_paths, &mut merged).unwrap();
    let reference_bytes = std::fs::read(&ref_path).unwrap();
    assert_eq!(
        merged, reference_bytes,
        "merged shards differ from the single-process run"
    );
    std::fs::remove_file(&ref_path).unwrap();
    for p in &shard_paths {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn jsonl_roundtrip_matches_memory_store_bitwise() {
    let path = tmp("roundtrip");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut memory = MemorySink::new();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut jsonl]);
    runner.run_with_sink(&manifest, &mut tee).unwrap();
    drop(tee);
    drop(jsonl);

    let from_disk = sink::read_store(&path).unwrap();
    assert_eq!(keyed(&from_disk), keyed(memory.store()));
    // Shortest round-trip float formatting: error values survive exactly.
    assert_eq!(
        from_disk.samples().len(),
        manifest.len() * 3 // n_trials
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_ledger_tail_is_recovered_from() {
    // A crash can truncate the file mid-line; the readers must ignore the
    // torn tail and resume must complete the missing units.
    let path = tmp("torn");
    let _ = std::fs::remove_file(&path);
    let mut first = Runner::new(tiny_config());
    first.max_units = Some(4);
    let manifest = first.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    first.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);
    // Simulate a torn write: an incomplete sample line with no newline
    // and no completion marker.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    write!(
        f,
        "{{\"t\":\"s\",\"unit\":\"00ff00ff00ff00ff\",\"pos\":99,\"alg\":\"DA"
    )
    .unwrap();
    drop(f);

    let ledger = sink::read_ledger(&path).unwrap();
    assert_eq!(ledger.done.len(), 4);
    // The torn unit contributes no samples.
    let store = sink::read_store(&path).unwrap();
    assert_eq!(store.samples().len(), 4 * 3);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn orphaned_pre_crash_samples_do_not_double_count_after_resume() {
    // A BufWriter auto-flush can land part of a unit's samples on disk
    // before a crash; the resume then re-runs that unit in full. The
    // readers must keep exactly one copy per (unit, sample, trial) —
    // the resume's — and skip torn partial lines even when they carry a
    // real unit id.
    let ref_path = tmp("orphan-ref");
    let path = tmp("orphan");
    for p in [&ref_path, &path] {
        let _ = std::fs::remove_file(p);
    }
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut reference = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut reference).unwrap();
    drop(reference);

    let mut first = Runner::new(tiny_config());
    first.max_units = Some(4);
    let mut jsonl = JsonlSink::create(&path).unwrap();
    first.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);

    // Orphans of the *next* unit (pos 4): two well-formed sample lines
    // with sentinel error values (a real crash would flush the true
    // values; sentinels prove the resume's copy wins), plus a torn line.
    use std::io::Write;
    let victim = &manifest.units[4];
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    for trial in 0..2 {
        let orphan = ErrorSample {
            algorithm: victim.algorithm.clone(),
            setting: victim.setting.clone(),
            sample: victim.sample,
            trial,
            error: 999.0,
        };
        writeln!(f, "{}", sink::format_sample(victim.id, victim.pos, &orphan)).unwrap();
    }
    write!(
        f,
        "{{\"t\":\"s\",\"unit\":\"{}\",\"pos\":4,\"alg\":\"DA",
        victim.id
    )
    .unwrap();
    drop(f);

    let done = sink::read_ledger(&path).unwrap().done;
    assert_eq!(done.len(), 4, "orphans must not mark their unit done");
    let mut append = JsonlSink::append(&path).unwrap();
    Runner::new(tiny_config())
        .resume(&manifest, &done, &mut append)
        .unwrap();
    drop(append);

    let store = sink::read_store(&path).unwrap();
    assert_eq!(store.samples().len(), manifest.len() * 3);
    assert!(
        store.samples().iter().all(|s| s.error != 999.0),
        "resume's samples must supersede pre-crash orphans"
    );
    assert_eq!(keyed(&store), keyed(&sink::read_store(&ref_path).unwrap()));

    // One merge pass re-canonicalizes the dirty file to the reference
    // byte stream.
    let mut canonical = Vec::new();
    sink::merge_jsonl(&[&path], &mut canonical).unwrap();
    assert_eq!(canonical, std::fs::read(&ref_path).unwrap());
    for p in [&ref_path, &path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn merge_rejects_mismatched_runs() {
    let a_path = tmp("merge-a");
    let b_path = tmp("merge-b");
    for p in [&a_path, &b_path] {
        let _ = std::fs::remove_file(p);
    }
    let runner = Runner::new(tiny_config());
    let mut a = JsonlSink::create(&a_path).unwrap();
    runner.run_with_sink(&runner.manifest(), &mut a).unwrap();
    drop(a);

    let mut other_cfg = tiny_config();
    other_cfg.epsilons = vec![0.25];
    let other = Runner::new(other_cfg);
    let mut b = JsonlSink::create(&b_path).unwrap();
    other.run_with_sink(&other.manifest(), &mut b).unwrap();
    drop(b);

    let mut out = Vec::new();
    assert!(sink::merge_jsonl(&[&a_path, &b_path], &mut out).is_err());
    for p in [&a_path, &b_path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn aggregating_sink_matches_exact_store_statistics() {
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut memory = MemorySink::new();
    let mut agg = AggregatingSink::new();
    let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut agg]);
    runner.run_with_sink(&manifest, &mut tee).unwrap();
    drop(tee);

    let store = memory.store();
    assert_eq!(agg.samples_seen() as usize, store.samples().len());
    for (alg, setting, summary) in agg.summaries() {
        let exact = store.errors_for(&alg, &setting);
        assert_eq!(summary.n, exact.len());
        // Welford moments are exact (up to fp associativity).
        let exact_mean = dpbench::stats::mean(exact);
        assert!(
            (summary.mean - exact_mean).abs() <= 1e-12 * exact_mean.abs().max(1.0),
            "{alg} {setting}: streaming mean {} vs exact {exact_mean}",
            summary.mean
        );
        // Six samples per group: one update past the P² bootstrap, so the
        // p95 is a sketch estimate. At this n the only sound claim is
        // range containment plus exact min/max — the convergence-to-exact
        // behavior at realistic sample counts is pinned by the
        // `dpbench-stats` streaming unit tests.
        let lo = exact.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = exact.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            summary.p95 >= lo && summary.p95 <= hi,
            "{alg} {setting}: p95 sketch {} escapes [{lo}, {hi}]",
            summary.p95
        );
        assert_eq!(summary.min, lo, "{alg} {setting}: min must be exact");
        assert_eq!(summary.max, hi, "{alg} {setting}: max must be exact");
    }
}

#[test]
fn resume_with_complete_ledger_runs_nothing() {
    let path = tmp("complete");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);

    let done = sink::read_ledger(&path).unwrap().done;
    let mut append = JsonlSink::append(&path).unwrap();
    let stats = runner.resume(&manifest, &done, &mut append).unwrap();
    assert_eq!(stats.units, 0);
    assert_eq!(stats.skipped, manifest.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mid_file_corruption_is_a_hard_error_with_line_number() {
    // The old readers skipped any unrecognized line anywhere, which made
    // real corruption indistinguishable from a torn tail. Now: garbage
    // followed by valid records must fail loudly, naming the line.
    let path = tmp("midfile");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);

    let clean = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = clean.lines().collect();
    let corrupted_line_no = 3; // 1-based; mid-file, well before EOF
    lines[corrupted_line_no - 1] = "x9 GARBAGE {not json";
    let dirty = lines.join("\n") + "\n";
    std::fs::write(&path, &dirty).unwrap();

    for result in [
        sink::read_ledger(&path).map(|_| ()),
        sink::read_samples(&path).map(|_| ()),
        sink::read_store(&path).map(|_| ()),
    ] {
        let err = result.expect_err("mid-file corruption must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("line {corrupted_line_no}")),
            "error must carry the line number: {msg}"
        );
        assert!(msg.contains("corruption"), "{msg}");
    }
    // merge refuses the file too.
    let mut out = Vec::new();
    assert!(sink::merge_jsonl(&[&path], &mut out).is_err());

    // A half-overwritten *sample* record (valid tag, broken payload) is
    // equally fatal mid-file.
    let mut lines: Vec<&str> = clean.lines().collect();
    let doctored = lines[1].split("\"err\":").next().unwrap().to_string();
    lines[1] = &doctored;
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    let err = sink::read_ledger(&path).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_is_truncated_on_append_and_file_stays_valid() {
    // After a resume, the once-torn tail must not linger as mid-file
    // garbage (which the strict readers would reject): append() truncates
    // it before writing anything.
    let path = tmp("tail-truncate");
    let _ = std::fs::remove_file(&path);
    let mut first = Runner::new(tiny_config());
    first.max_units = Some(3);
    let manifest = first.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    first.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);
    let clean_len = std::fs::metadata(&path).unwrap().len();
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    write!(f, "{{\"t\":\"u\",\"unit\":\"00ff00ff").unwrap();
    drop(f);

    // Readers tolerate the torn tail (it is the final content) …
    assert_eq!(sink::read_ledger(&path).unwrap().done.len(), 3);
    // … and append() removes it entirely.
    drop(JsonlSink::append(&path).unwrap());
    assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
    let done = sink::read_ledger(&path).unwrap().done;
    let mut rest = JsonlSink::append(&path).unwrap();
    Runner::new(tiny_config())
        .resume(&manifest, &done, &mut rest)
        .unwrap();
    drop(rest);
    // The healed, resumed file is valid end to end.
    assert_eq!(
        sink::read_store(&path).unwrap().samples().len(),
        manifest.len() * 3
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_numeric_tail_that_still_parses_is_treated_as_torn() {
    // A tear can truncate a trailing number into a *shorter valid
    // number* (`"pos":15}` → `"pos":1`). Field-level parsing alone would
    // accept that and record the marker at the wrong position; the
    // structural end-with-`}` check must classify it as torn instead,
    // so the unit re-runs and the run stays recoverable.
    let ref_path = tmp("numtail-ref");
    let path = tmp("numtail");
    for p in [&ref_path, &path] {
        let _ = std::fs::remove_file(p);
    }
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut reference = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut reference).unwrap();
    drop(reference);

    let mut first = Runner::new(tiny_config());
    first.max_units = Some(4);
    let mut jsonl = JsonlSink::create(&path).unwrap();
    first.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);
    // Tear the final completion marker just before its closing `}`: the
    // remaining `"pos":N` digits still parse as a number.
    let content = std::fs::read_to_string(&path).unwrap();
    let torn = content.trim_end().strip_suffix('}').unwrap().to_string();
    std::fs::write(&path, &torn).unwrap();

    // The torn marker's unit must NOT count as done …
    let ledger = sink::read_ledger(&path).unwrap();
    assert_eq!(ledger.done.len(), 3, "torn marker counted as completed");
    // … append truncates the fragment, resume re-runs the unit …
    let mut rest = JsonlSink::append(&path).unwrap();
    Runner::new(tiny_config())
        .resume(&manifest, &ledger.done, &mut rest)
        .unwrap();
    drop(rest);
    // … and readers + merge recover the exact reference results (the
    // re-run unit's first-copy samples are deduplicated orphans).
    assert_eq!(keyed(&sink::read_store(&path).unwrap()), {
        let r = sink::read_store(&ref_path).unwrap();
        keyed(&r)
    });
    let mut canonical = Vec::new();
    sink::merge_jsonl(&[&path], &mut canonical).unwrap();
    assert_eq!(canonical, std::fs::read(&ref_path).unwrap());
    for p in [&ref_path, &path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn merge_rejects_doctored_headers_and_samples() {
    let path = tmp("doctor-base");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);
    let clean = std::fs::read_to_string(&path).unwrap();

    // Sanity: merging a file with itself is the identity (duplicate
    // units agree, emitted once).
    let mut out = Vec::new();
    sink::merge_jsonl(&[&path, &path], &mut out).unwrap();
    assert_eq!(out, clean.as_bytes());

    // (a) A shard whose header claims a different n_trials is rejected
    // even though the fingerprint matches.
    let doctored_path = tmp("doctor-trials");
    let doctored = clean.replacen("\"n_trials\":3", "\"n_trials\":4", 1);
    std::fs::write(&doctored_path, &doctored).unwrap();
    let mut out = Vec::new();
    let err = sink::merge_jsonl(&[&path, &doctored_path], &mut out).unwrap_err();
    assert!(err.to_string().contains("n_trials"), "{err}");

    // (b) A duplicated unit whose sample disagrees on a (sample, trial)
    // coordinate — same length, same error bits — is rejected. (The old
    // check compared only lengths and error values and missed this.)
    let coord_path = tmp("doctor-coord");
    let target = clean
        .lines()
        .find(|l| l.contains("\"t\":\"s\"") && l.contains("\"trial\":1"))
        .unwrap();
    let moved = target.replace("\"trial\":1", "\"trial\":9");
    std::fs::write(&coord_path, clean.replacen(target, &moved, 1)).unwrap();
    let mut out = Vec::new();
    let err = sink::merge_jsonl(&[&path, &coord_path], &mut out).unwrap_err();
    assert!(err.to_string().contains("disagrees"), "{err}");

    // (c) A doctored error value (coordinates intact) is still caught.
    let value_path = tmp("doctor-value");
    let tweaked = target.replace("\"err\":", "\"err\":1");
    std::fs::write(&value_path, clean.replacen(target, &tweaked, 1)).unwrap();
    let mut out = Vec::new();
    let err = sink::merge_jsonl(&[&path, &value_path], &mut out).unwrap_err();
    assert!(err.to_string().contains("disagrees"), "{err}");

    for p in [&path, &doctored_path, &coord_path, &value_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn merge_rejects_conflicting_cfg_headers() {
    // Two shard files agreeing on fingerprint and n_trials but carrying
    // different recorded config summaries can only come from doctored or
    // mislabeled ledgers; the merge must refuse, not pick one.
    let path = tmp("cfg-base");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let mut jsonl = JsonlSink::create(&path).unwrap();
    runner
        .run_with_sink(&runner.manifest(), &mut jsonl)
        .unwrap();
    drop(jsonl);
    let clean = std::fs::read_to_string(&path).unwrap();
    assert!(clean.contains("loss=l2"), "cfg summary missing from header");
    let doctored_path = tmp("cfg-doctored");
    std::fs::write(&doctored_path, clean.replacen("loss=l2", "loss=l1", 1)).unwrap();
    let mut out = Vec::new();
    let err = sink::merge_jsonl(&[&path, &doctored_path], &mut out).unwrap_err();
    assert!(err.to_string().contains("config summary"), "{err}");
    for p in [&path, &doctored_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn merge_rejects_duplicate_unit_with_disagreeing_error_bits() {
    // A duplicated unit must agree on every error *bit*, not just on
    // `==`: 0.0 and -0.0 compare equal but are different results, and a
    // merge that shrugged at the sign would hide a real reproducibility
    // break. Hand-built ledgers give exact control over the bits.
    let header = "{\"t\":\"run\",\"fp\":\"00000000000000aa\",\"n_trials\":1}\n";
    let record = |err: &str| {
        format!(
            "{header}{{\"t\":\"s\",\"unit\":\"0000000000000001\",\"pos\":0,\
             \"alg\":\"IDENTITY\",\"dataset\":\"MEDCOST\",\"scale\":1000,\
             \"domain\":\"128\",\"eps\":0.1,\"sample\":0,\"trial\":0,\"err\":{err}}}\n\
             {{\"t\":\"u\",\"unit\":\"0000000000000001\",\"pos\":0}}\n"
        )
    };
    let a_path = tmp("bits-a");
    let b_path = tmp("bits-b");
    std::fs::write(&a_path, record("0")).unwrap();
    std::fs::write(&b_path, record("-0")).unwrap();
    let mut out = Vec::new();
    let err = sink::merge_jsonl(&[&a_path, &b_path], &mut out).unwrap_err();
    assert!(err.to_string().contains("disagrees"), "{err}");
    // Sanity: bit-identical duplicates merge fine and emit once.
    let mut out = Vec::new();
    sink::merge_jsonl(&[&a_path, &a_path], &mut out).unwrap();
    assert_eq!(out, record("0").as_bytes());
    for p in [&a_path, &b_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn jsonl_sink_rejects_unrepresentable_identifiers() {
    // Nothing used to enforce at write time that names survive the
    // escape-free JSONL round-trip; now begin() fails fast.
    let runner = Runner::new(tiny_config());
    let mut manifest = runner.manifest();
    manifest.units[0].algorithm = "DA\"WA".into();
    let mut buf = Vec::new();
    let mut sink_w = JsonlSink::from_writer(&mut buf);
    let err = sink_w.begin(&manifest).unwrap_err();
    assert!(err.to_string().contains("identifier"), "{err}");
    let _ = sink_w;
    assert!(buf.is_empty(), "no ledger byte may be written on rejection");

    // The runner-level guard: a config with a ledger-breaking algorithm
    // name fails validation before any unit runs.
    let mut cfg = tiny_config();
    cfg.algorithms = vec!["IDENT\"ITY".into()];
    assert!(cfg.validate().is_err());
}

#[test]
fn shard_summaries_roundtrip_and_merge_without_raw_samples() {
    // Each shard aggregates through a mergeable StreamingSummary; the
    // serialized sketches must round-trip exactly and merge into the
    // statistics of the union stream.
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();

    // Reference: exact store + one-pass streaming aggregation.
    let mut memory = MemorySink::new();
    let mut single = AggregatingSink::new();
    let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut single]);
    runner.run_with_sink(&manifest, &mut tee).unwrap();
    drop(tee);
    let store = memory.store();

    // Shards: aggregate each independently, serialize, reload, merge.
    let mut merged = AggregatingSink::new();
    let mut paths = Vec::new();
    for i in 0..3 {
        let shard_runner = Runner::new(tiny_config());
        let mut agg = AggregatingSink::new();
        shard_runner
            .run_with_sink(&manifest.shard(i, 3), &mut agg)
            .unwrap();
        let path = tmp(&format!("agg-shard-{i}"));
        agg.write_summary_file(&path).unwrap();
        // Round-trip exactness: rewriting the reloaded sink reproduces
        // the file byte for byte.
        let mut reloaded = sink::read_summary(&path).unwrap();
        let mut rewritten = Vec::new();
        reloaded.write_summary(&mut rewritten).unwrap();
        assert_eq!(rewritten, std::fs::read(&path).unwrap());
        merged.merge_from(&reloaded).unwrap();
        paths.push(path);
    }
    assert_eq!(merged.samples_seen(), single.samples_seen());
    for (alg, setting, summary) in merged.summaries() {
        let exact = store.errors_for(&alg, &setting);
        assert_eq!(summary.n, exact.len());
        let exact_mean = dpbench::stats::mean(exact);
        assert!(
            (summary.mean - exact_mean).abs() <= 1e-12 * exact_mean.abs().max(1.0),
            "{alg} {setting}: merged mean {} vs exact {exact_mean}",
            summary.mean
        );
        let lo = exact.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = exact.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(summary.min, lo);
        assert_eq!(summary.max, hi);
        // Documented digest tolerance vs the exact percentile.
        let exact_p95 = dpbench::stats::percentile(exact, 95.0);
        assert!(
            (summary.p95 - exact_p95).abs() <= (0.05 * exact_p95.abs()).max(0.01 * (hi - lo)),
            "{alg} {setting}: merged p95 {} vs exact {exact_p95}",
            summary.p95
        );
    }
    // merge_summary_files is the one-call equivalent.
    let merged2 = sink::merge_summary_files(&paths).unwrap();
    assert_eq!(merged2.samples_seen(), merged.samples_seen());
    // Cross-run merges are refused.
    let mut other_cfg = tiny_config();
    other_cfg.epsilons = vec![0.77];
    let other = Runner::new(other_cfg);
    let mut foreign = AggregatingSink::new();
    other
        .run_with_sink(&other.manifest(), &mut foreign)
        .unwrap();
    assert!(merged.merge_from(&foreign).is_err());
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn summary_from_ledger_matches_streamed_aggregation() {
    // The resume path rebuilds a shard's summary from its ledger; on a
    // clean ledger the rebuild must be bit-identical to the streamed
    // aggregation (same push order: manifest position, then trial).
    let path = tmp("agg-rebuild");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    let mut agg = AggregatingSink::new();
    let mut tee = Tee::new(vec![&mut jsonl as &mut dyn ResultSink, &mut agg]);
    runner.run_with_sink(&manifest, &mut tee).unwrap();
    drop(tee);
    drop(jsonl);

    let mut rebuilt = sink::summary_from_ledger(&path).unwrap();
    let mut a = Vec::new();
    let mut b = Vec::new();
    agg.write_summary(&mut a).unwrap();
    rebuilt.write_summary(&mut b).unwrap();
    assert_eq!(a, b, "ledger rebuild diverged from streamed aggregation");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn manifest_addresses_are_stable_across_processes() {
    // UnitIds must be pure content hashes: re-expanding the same config
    // (as a resuming process does) reproduces them exactly.
    let a = RunManifest::from_config(&tiny_config());
    let b = RunManifest::from_config(&tiny_config());
    let ids_a: Vec<UnitId> = a.units.iter().map(|u| u.id).collect();
    let ids_b: Vec<UnitId> = b.units.iter().map(|u| u.id).collect();
    assert_eq!(ids_a, ids_b);
    assert_eq!(
        ids_a.iter().collect::<HashSet<_>>().len(),
        a.len(),
        "unit ids must be unique"
    );
}
