//! Streaming-engine integration tests: checkpoint/resume determinism,
//! shard-merge bit-identity, JSONL ledger round-trips, and streaming
//! aggregation — the contract the ISSUE's acceptance criteria pin:
//! a sharded run and a kill-then-resume run must reproduce the
//! single-process grid **bit-identically**, across thread counts.

use dpbench::harness::manifest::{RunManifest, UnitId};
use dpbench::harness::sink::{self, AggregatingSink, JsonlSink, MemorySink, ResultSink, Tee};
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::collections::HashSet;
use std::path::PathBuf;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name("MEDCOST").unwrap()],
        scales: vec![10_000],
        domains: vec![Domain::D1(256)],
        epsilons: vec![0.1, 1.0],
        algorithms: vec!["IDENTITY".into(), "DAWA".into(), "GREEDY_H".into()],
        n_samples: 2,
        n_trials: 3,
        workload: WorkloadSpec::Prefix,
        loss: Loss::L2,
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dpbench-streaming-{name}-{}", std::process::id()));
    p
}

/// Canonical comparable form of a sample set.
fn keyed(store: &ResultStore) -> Vec<(String, String, usize, usize, u64)> {
    let mut v: Vec<_> = store
        .samples()
        .iter()
        .map(|s| {
            (
                s.algorithm.clone(),
                s.setting.to_string(),
                s.sample,
                s.trial,
                s.error.to_bits(),
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn kill_and_resume_is_bit_identical_across_thread_counts() {
    // Reference: uninterrupted single-threaded run.
    let mut reference = Runner::new(tiny_config());
    reference.threads = 1;
    let ref_store = reference.run();

    for threads in [1_usize, 4] {
        let path = tmp(&format!("resume-{threads}"));
        let _ = std::fs::remove_file(&path);

        // Phase 1: "crash" after 7 units, ledger on disk.
        let mut first = Runner::new(tiny_config());
        first.threads = threads;
        first.max_units = Some(7);
        let manifest = first.manifest();
        let mut jsonl = JsonlSink::create(&path).unwrap();
        let stats = first.run_with_sink(&manifest, &mut jsonl).unwrap();
        assert_eq!(stats.units, 7);
        drop(jsonl);

        // Phase 2: resume from the ledger.
        let ledger = sink::read_ledger(&path).unwrap();
        assert_eq!(ledger.fingerprint, manifest.fingerprint);
        assert_eq!(ledger.done.len(), 7);
        let mut second = Runner::new(tiny_config());
        second.threads = threads;
        let mut append = JsonlSink::append(&path).unwrap();
        let stats = second.resume(&manifest, &ledger.done, &mut append).unwrap();
        assert_eq!(stats.skipped, 7);
        assert_eq!(stats.units, manifest.len() - 7);
        drop(append);

        // The merged ErrorSample set is bit-identical to the
        // uninterrupted run.
        let resumed = sink::read_store(&path).unwrap();
        assert_eq!(
            keyed(&resumed),
            keyed(&ref_store),
            "threads = {threads}: resume diverged from uninterrupted run"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn resumed_ledger_is_byte_identical_to_uninterrupted_file() {
    // In-order emission makes the *file* — not just the sample set —
    // reproducible: interrupted-then-resumed bytes == one-shot bytes.
    let ref_path = tmp("oneshot");
    let cut_path = tmp("cut");
    for p in [&ref_path, &cut_path] {
        let _ = std::fs::remove_file(p);
    }

    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut oneshot = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut oneshot).unwrap();
    drop(oneshot);

    let mut first = Runner::new(tiny_config());
    first.threads = 4;
    first.max_units = Some(5);
    let mut part = JsonlSink::create(&cut_path).unwrap();
    first.run_with_sink(&manifest, &mut part).unwrap();
    drop(part);
    let done = sink::read_ledger(&cut_path).unwrap().done;
    let mut rest = JsonlSink::append(&cut_path).unwrap();
    Runner::new(tiny_config())
        .resume(&manifest, &done, &mut rest)
        .unwrap();
    drop(rest);

    let a = std::fs::read(&ref_path).unwrap();
    let b = std::fs::read(&cut_path).unwrap();
    assert_eq!(a, b, "resumed ledger bytes differ from one-shot run");
    for p in [&ref_path, &cut_path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn sharded_jsonl_files_merge_to_the_single_process_bytes() {
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let ref_path = tmp("shard-ref");
    let _ = std::fs::remove_file(&ref_path);
    let mut reference = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut reference).unwrap();
    drop(reference);

    let mut shard_paths = Vec::new();
    for i in 0..3 {
        let path = tmp(&format!("shard-{i}"));
        let _ = std::fs::remove_file(&path);
        let shard_runner = Runner::new(tiny_config());
        let mut jsonl = JsonlSink::create(&path).unwrap();
        shard_runner
            .run_with_sink(&manifest.shard(i, 3), &mut jsonl)
            .unwrap();
        drop(jsonl);
        shard_paths.push(path);
    }

    let mut merged = Vec::new();
    sink::merge_jsonl(&shard_paths, &mut merged).unwrap();
    let reference_bytes = std::fs::read(&ref_path).unwrap();
    assert_eq!(
        merged, reference_bytes,
        "merged shards differ from the single-process run"
    );
    std::fs::remove_file(&ref_path).unwrap();
    for p in &shard_paths {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn jsonl_roundtrip_matches_memory_store_bitwise() {
    let path = tmp("roundtrip");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut memory = MemorySink::new();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut jsonl]);
    runner.run_with_sink(&manifest, &mut tee).unwrap();
    drop(tee);
    drop(jsonl);

    let from_disk = sink::read_store(&path).unwrap();
    assert_eq!(keyed(&from_disk), keyed(memory.store()));
    // Shortest round-trip float formatting: error values survive exactly.
    assert_eq!(
        from_disk.samples().len(),
        manifest.len() * 3 // n_trials
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_ledger_tail_is_recovered_from() {
    // A crash can truncate the file mid-line; the readers must ignore the
    // torn tail and resume must complete the missing units.
    let path = tmp("torn");
    let _ = std::fs::remove_file(&path);
    let mut first = Runner::new(tiny_config());
    first.max_units = Some(4);
    let manifest = first.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    first.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);
    // Simulate a torn write: an incomplete sample line with no newline
    // and no completion marker.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    write!(
        f,
        "{{\"t\":\"s\",\"unit\":\"00ff00ff00ff00ff\",\"pos\":99,\"alg\":\"DA"
    )
    .unwrap();
    drop(f);

    let ledger = sink::read_ledger(&path).unwrap();
    assert_eq!(ledger.done.len(), 4);
    // The torn unit contributes no samples.
    let store = sink::read_store(&path).unwrap();
    assert_eq!(store.samples().len(), 4 * 3);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn orphaned_pre_crash_samples_do_not_double_count_after_resume() {
    // A BufWriter auto-flush can land part of a unit's samples on disk
    // before a crash; the resume then re-runs that unit in full. The
    // readers must keep exactly one copy per (unit, sample, trial) —
    // the resume's — and skip torn partial lines even when they carry a
    // real unit id.
    let ref_path = tmp("orphan-ref");
    let path = tmp("orphan");
    for p in [&ref_path, &path] {
        let _ = std::fs::remove_file(p);
    }
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut reference = JsonlSink::create(&ref_path).unwrap();
    runner.run_with_sink(&manifest, &mut reference).unwrap();
    drop(reference);

    let mut first = Runner::new(tiny_config());
    first.max_units = Some(4);
    let mut jsonl = JsonlSink::create(&path).unwrap();
    first.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);

    // Orphans of the *next* unit (pos 4): two well-formed sample lines
    // with sentinel error values (a real crash would flush the true
    // values; sentinels prove the resume's copy wins), plus a torn line.
    use std::io::Write;
    let victim = &manifest.units[4];
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    for trial in 0..2 {
        let orphan = ErrorSample {
            algorithm: victim.algorithm.clone(),
            setting: victim.setting.clone(),
            sample: victim.sample,
            trial,
            error: 999.0,
        };
        writeln!(f, "{}", sink::format_sample(victim.id, victim.pos, &orphan)).unwrap();
    }
    write!(
        f,
        "{{\"t\":\"s\",\"unit\":\"{}\",\"pos\":4,\"alg\":\"DA",
        victim.id
    )
    .unwrap();
    drop(f);

    let done = sink::read_ledger(&path).unwrap().done;
    assert_eq!(done.len(), 4, "orphans must not mark their unit done");
    let mut append = JsonlSink::append(&path).unwrap();
    Runner::new(tiny_config())
        .resume(&manifest, &done, &mut append)
        .unwrap();
    drop(append);

    let store = sink::read_store(&path).unwrap();
    assert_eq!(store.samples().len(), manifest.len() * 3);
    assert!(
        store.samples().iter().all(|s| s.error != 999.0),
        "resume's samples must supersede pre-crash orphans"
    );
    assert_eq!(keyed(&store), keyed(&sink::read_store(&ref_path).unwrap()));

    // One merge pass re-canonicalizes the dirty file to the reference
    // byte stream.
    let mut canonical = Vec::new();
    sink::merge_jsonl(&[&path], &mut canonical).unwrap();
    assert_eq!(canonical, std::fs::read(&ref_path).unwrap());
    for p in [&ref_path, &path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn merge_rejects_mismatched_runs() {
    let a_path = tmp("merge-a");
    let b_path = tmp("merge-b");
    for p in [&a_path, &b_path] {
        let _ = std::fs::remove_file(p);
    }
    let runner = Runner::new(tiny_config());
    let mut a = JsonlSink::create(&a_path).unwrap();
    runner.run_with_sink(&runner.manifest(), &mut a).unwrap();
    drop(a);

    let mut other_cfg = tiny_config();
    other_cfg.epsilons = vec![0.25];
    let other = Runner::new(other_cfg);
    let mut b = JsonlSink::create(&b_path).unwrap();
    other.run_with_sink(&other.manifest(), &mut b).unwrap();
    drop(b);

    let mut out = Vec::new();
    assert!(sink::merge_jsonl(&[&a_path, &b_path], &mut out).is_err());
    for p in [&a_path, &b_path] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn aggregating_sink_matches_exact_store_statistics() {
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut memory = MemorySink::new();
    let mut agg = AggregatingSink::new();
    let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut agg]);
    runner.run_with_sink(&manifest, &mut tee).unwrap();
    drop(tee);

    let store = memory.store();
    assert_eq!(agg.samples_seen() as usize, store.samples().len());
    for (alg, setting, summary) in agg.summaries() {
        let exact = store.errors_for(&alg, &setting);
        assert_eq!(summary.n, exact.len());
        // Welford moments are exact (up to fp associativity).
        let exact_mean = dpbench::stats::mean(exact);
        assert!(
            (summary.mean - exact_mean).abs() <= 1e-12 * exact_mean.abs().max(1.0),
            "{alg} {setting}: streaming mean {} vs exact {exact_mean}",
            summary.mean
        );
        // Six samples per group: one update past the P² bootstrap, so the
        // p95 is a sketch estimate. At this n the only sound claim is
        // range containment plus exact min/max — the convergence-to-exact
        // behavior at realistic sample counts is pinned by the
        // `dpbench-stats` streaming unit tests.
        let lo = exact.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = exact.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            summary.p95 >= lo && summary.p95 <= hi,
            "{alg} {setting}: p95 sketch {} escapes [{lo}, {hi}]",
            summary.p95
        );
        assert_eq!(summary.min, lo, "{alg} {setting}: min must be exact");
        assert_eq!(summary.max, hi, "{alg} {setting}: max must be exact");
    }
}

#[test]
fn resume_with_complete_ledger_runs_nothing() {
    let path = tmp("complete");
    let _ = std::fs::remove_file(&path);
    let runner = Runner::new(tiny_config());
    let manifest = runner.manifest();
    let mut jsonl = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&manifest, &mut jsonl).unwrap();
    drop(jsonl);

    let done = sink::read_ledger(&path).unwrap().done;
    let mut append = JsonlSink::append(&path).unwrap();
    let stats = runner.resume(&manifest, &done, &mut append).unwrap();
    assert_eq!(stats.units, 0);
    assert_eq!(stats.skipped, manifest.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn manifest_addresses_are_stable_across_processes() {
    // UnitIds must be pure content hashes: re-expanding the same config
    // (as a resuming process does) reproduces them exactly.
    let a = RunManifest::from_config(&tiny_config());
    let b = RunManifest::from_config(&tiny_config());
    let ids_a: Vec<UnitId> = a.units.iter().map(|u| u.id).collect();
    let ids_b: Vec<UnitId> = b.units.iter().map(|u| u.id).collect();
    assert_eq!(ids_a, ids_b);
    assert_eq!(
        ids_a.iter().collect::<HashSet<_>>().len(),
        a.len(),
        "unit ids must be unique"
    );
}
