//! Hot-path integration tests: the O(n log² n) DAWA partition must return
//! exactly the partition of the retained O(n²) DP, and executions drawing
//! scratch from a reused [`Workspace`] must be bit-identical to executions
//! with fresh scratch.

use dpbench_algorithms::dawa::{l1_partition, l1_partition_naive};
use dpbench_algorithms::registry::mechanism_by_name;
use dpbench_core::mechanism::execute_eps_with;
use dpbench_core::rng::rng_for;
use dpbench_core::{DataVector, Domain, Workload, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Property-style equivalence suite: ≥ 200 random vectors across varied
/// domain sizes and (ε₁, ε₂) pairs. The fast partition must return
/// *identical buckets* — same count, same boundaries — as the naive DP,
/// because both visit candidate lengths in the same order with the same
/// strict-improvement rule and the clamped-to-zero cost ties are exact in
/// both.
#[test]
fn fast_partition_equals_naive_on_random_vectors() {
    let mut rng = StdRng::seed_from_u64(0xDA3A);
    let eps_pairs = [(0.05, 0.5), (0.5, 0.05), (1.0, 1.0), (10.0, 0.1)];
    let mut cases = 0;
    for round in 0..60 {
        // Mix of sizes: mostly small/medium, a few larger; both
        // powers of two and awkward odd lengths.
        let n = match round % 6 {
            0 => rng.gen_range(2..=16),
            1 => rng.gen_range(17..=64),
            2 => 1 << rng.gen_range(5_usize..=8), // 32..256
            3 => rng.gen_range(65_usize..=200) | 1,
            4 => rng.gen_range(200..=384),
            _ => rng.gen_range(16..=128),
        };
        // Piecewise-constant signal + heavy noise: the regime DAWA's
        // partition actually faces (noisy counts), plus occasional
        // all-zero and constant vectors for the exact-tie paths.
        let noisy: Vec<f64> = match round % 5 {
            0 => vec![0.0; n],
            1 => vec![rng.gen_range(0.0..50.0); n],
            _ => {
                let level = rng.gen_range(0.0..200.0);
                (0..n)
                    .map(|i| {
                        let step = if (i / 16) % 2 == 0 { level } else { 0.0 };
                        step + rng.gen_range(-30.0..30.0)
                    })
                    .collect()
            }
        };
        for &(e1, e2) in &eps_pairs {
            let fast = l1_partition(&noisy, e1, e2);
            let naive = l1_partition_naive(&noisy, e1, e2);
            assert_eq!(fast, naive, "n={n} ε₁={e1} ε₂={e2} round={round}");
            cases += 1;
        }
    }
    assert!(cases >= 200, "suite must cover ≥ 200 cases, ran {cases}");
}

/// Executing any mechanism with a freshly created workspace per trial and
/// with one workspace reused across trials (and across mechanisms) must
/// produce bit-identical releases: pooled buffers are zero-filled on take,
/// so recycled scratch can never leak state into results.
#[test]
fn workspace_reuse_is_bit_identical_to_fresh_scratch() {
    let domain = Domain::D1(256);
    let workload = Workload::prefix_1d(256);
    let mut data_rng = StdRng::seed_from_u64(7);
    let counts: Vec<f64> = (0..256)
        .map(|i| {
            let base = if i > 100 && i < 140 { 80.0 } else { 4.0 };
            base + data_rng.gen_range(0.0_f64..8.0).floor()
        })
        .collect();
    let x = DataVector::new(counts, domain);

    let mut reused = Workspace::new();
    for name in [
        "IDENTITY", "H", "HB", "GREEDY_H", "PRIVELET", "UNIFORM", "DAWA", "PHP", "EFPA", "MWEM",
    ] {
        let mech = mechanism_by_name(name).unwrap();
        let plan = mech.plan(&domain, &workload).unwrap();
        for trial in 0..3_u64 {
            let mut fresh = Workspace::new();
            let a = execute_eps_with(
                plan.as_ref(),
                &x,
                0.1,
                &mut fresh,
                &mut rng_for(name, &[trial]),
            )
            .unwrap();
            let b = execute_eps_with(
                plan.as_ref(),
                &x,
                0.1,
                &mut reused,
                &mut rng_for(name, &[trial]),
            )
            .unwrap();
            assert_eq!(
                a.estimate, b.estimate,
                "{name} trial {trial} diverges under workspace reuse"
            );
            assert_eq!(a.budget_trace, b.budget_trace);
        }
    }
}

/// 2-D spot check of the same property (exercises the Hilbert flatten
/// buffers DAWA and GREEDY_H draw from the workspace).
#[test]
fn workspace_reuse_is_bit_identical_in_2d() {
    let domain = Domain::D2(32, 32);
    let mut wrng = StdRng::seed_from_u64(21);
    let workload = Workload::random_ranges(domain, 200, &mut wrng);
    let mut counts = vec![1.0; 32 * 32];
    counts[40] = 500.0;
    counts[700] = 300.0;
    let x = DataVector::new(counts, domain);

    let mut reused = Workspace::new();
    for name in ["DAWA", "GREEDY_H", "QUADTREE", "HB"] {
        let mech = mechanism_by_name(name).unwrap();
        let plan = mech.plan(&domain, &workload).unwrap();
        for trial in 0..2_u64 {
            let mut fresh = Workspace::new();
            let a = execute_eps_with(
                plan.as_ref(),
                &x,
                0.1,
                &mut fresh,
                &mut rng_for(name, &[trial]),
            )
            .unwrap();
            let b = execute_eps_with(
                plan.as_ref(),
                &x,
                0.1,
                &mut reused,
                &mut rng_for(name, &[trial]),
            )
            .unwrap();
            assert_eq!(a.estimate, b.estimate, "{name} 2-D trial {trial}");
        }
    }
}
