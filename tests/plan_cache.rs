//! Plan/execute API integration: cross-trial plan caching must preserve
//! results bit-for-bit and measurably amortize data-independent setup.

use dpbench::harness::runner::PlanCache;
use dpbench::prelude::*;
use dpbench_core::mechanism::execute_eps;
use dpbench_core::rng::rng_for;
use std::time::Instant;

/// Executing through a cached plan is bit-identical to planning fresh for
/// every trial, across the whole registry, under the same RNG streams.
#[test]
fn cached_plans_match_fresh_plans_across_registry() {
    let mut rng = rng_for("cache-data", &[1]);
    let d1 = dpbench::datasets::catalog::by_name("ADULT").unwrap();
    let x1 = DataGenerator::new().generate(&d1, Domain::D1(256), 10_000, &mut rng);
    let w1 = Workload::prefix_1d(256);
    let d2 = dpbench::datasets::catalog::by_name("STROKE").unwrap();
    let x2 = DataGenerator::new().generate(&d2, Domain::D2(32, 32), 10_000, &mut rng);
    let w2 = Workload::random_ranges(Domain::D2(32, 32), 200, &mut rng);

    let cache = PlanCache::new();
    let mut distinct_keys = std::collections::HashSet::new();
    let mut lookups = 0_u64;
    for name in NAMES_1D.iter().chain(NAMES_2D.iter()) {
        let mech = mechanism_by_name(name).unwrap();
        let (x, w, domain) = if mech.supports(&x1.domain()) {
            (&x1, &w1, x1.domain())
        } else {
            (&x2, &w2, x2.domain())
        };
        for trial in 0..3_u64 {
            let cached = cache.plan_for(mech.as_ref(), &domain, w).unwrap();
            let fresh = mech.plan(&domain, w).unwrap();
            let seed = [dpbench_core::rng::hash_str(name), trial];
            let a = execute_eps(cached.as_ref(), x, 0.1, &mut rng_for("t", &seed)).unwrap();
            let b = execute_eps(fresh.as_ref(), x, 0.1, &mut rng_for("t", &seed)).unwrap();
            assert_eq!(
                a.estimate, b.estimate,
                "{name} trial {trial}: cache changes results"
            );
            distinct_keys.insert((name.to_string(), domain));
            lookups += 1;
        }
    }
    // One build per distinct (mechanism, domain, workload) key — names
    // shared by the 1-D and 2-D suites route to the same key — and every
    // other lookup served from cache.
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, distinct_keys.len());
    assert_eq!(stats.hits, lookups - stats.misses);
}

/// The point of the redesign: on a multi-trial data-independent grid,
/// executing a cached plan beats replanning every trial on wall-clock.
/// The explicit matrix mechanism makes the gap structural — planning
/// Cholesky-factorizes the O(n³) normal matrix while each execution is
/// two O(n²) solves — so a 2× margin is robust to machine load.
#[test]
fn cached_plan_reduces_wall_clock_on_data_independent_grid() {
    use dpbench::algorithms::matrix_mechanism::MatrixMechanism;
    let n = 256;
    let domain = Domain::D1(n);
    let w = Workload::prefix_1d(n);
    let x = DataVector::new(vec![3.0; n], domain);
    let mech = MatrixMechanism::hierarchical(n, 2);
    let trials = 12_u64;

    // Warm up (page in code paths and allocator).
    let warm = mech.plan(&domain, &w).unwrap();
    execute_eps(warm.as_ref(), &x, 0.1, &mut rng_for("warm", &[0])).unwrap();

    let uncached = Instant::now();
    for t in 0..trials {
        let plan = mech.plan(&domain, &w).unwrap();
        execute_eps(plan.as_ref(), &x, 0.1, &mut rng_for("bench", &[t])).unwrap();
    }
    let uncached = uncached.elapsed();

    let cache = PlanCache::new();
    let cached = Instant::now();
    for t in 0..trials {
        let plan = cache.plan_for(&mech, &domain, &w).unwrap();
        execute_eps(plan.as_ref(), &x, 0.1, &mut rng_for("bench", &[t])).unwrap();
    }
    let cached = cached.elapsed();

    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().hits, trials - 1);
    assert!(
        cached.as_secs_f64() * 2.0 < uncached.as_secs_f64(),
        "cached {cached:?} should be well under uncached {uncached:?}"
    );
}

/// The serve-path contract: N worker threads racing `plan_for` on the
/// same (mechanism, domain, workload) key build the strategy exactly
/// once — everyone else blocks on the per-slot lock and then hits. The
/// barrier makes the race real: all threads issue their first lookup at
/// the same instant.
#[test]
fn concurrent_same_key_lookups_build_exactly_once() {
    use std::sync::{Arc, Barrier};
    let n_threads = 8;
    let domain = Domain::D1(512);
    let w = Arc::new(Workload::prefix_1d(512));
    let cache = Arc::new(PlanCache::new());
    let barrier = Arc::new(Barrier::new(n_threads));
    let handles: Vec<_> = (0..n_threads)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let w = Arc::clone(&w);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mech = mechanism_by_name("GREEDY_H").unwrap();
                barrier.wait();
                let plan = cache.plan_for(mech.as_ref(), &domain, &w).unwrap();
                // A second lookup from the same thread must be a pure hit.
                let again = cache.plan_for(mech.as_ref(), &domain, &w).unwrap();
                assert!(Arc::ptr_eq(&plan, &again), "same slot must be shared");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    assert_eq!(cache.len(), 1, "one key, one plan");
    assert_eq!(stats.misses, 1, "exactly one thread may build");
    assert_eq!(
        stats.hits,
        2 * n_threads as u64 - 1,
        "every other lookup is a hit"
    );
}

/// The grid runner's cache key must separate workloads sharing a domain:
/// two runs over the same domain with different workload specs produce
/// different GREEDY_H allocations, and the cache must never conflate them.
#[test]
fn runner_cache_keys_distinguish_workloads() {
    let domain = Domain::D1(128);
    let mech = mechanism_by_name("GREEDY_H").unwrap();
    let cache = PlanCache::new();
    let prefix = Workload::prefix_1d(128);
    let mut rng = rng_for("wl", &[7]);
    let random = Workload::random_ranges(domain, 64, &mut rng);

    let a = cache.plan_for(mech.as_ref(), &domain, &prefix).unwrap();
    let b = cache.plan_for(mech.as_ref(), &domain, &random).unwrap();
    assert_eq!(cache.stats().misses, 2, "workloads must get distinct plans");

    // Same data + RNG through the two plans: GREEDY_H allocates budget by
    // workload usage, so the estimates must differ.
    let x = DataVector::new(vec![5.0; 128], domain);
    let ra = execute_eps(a.as_ref(), &x, 0.1, &mut rng_for("x", &[1])).unwrap();
    let rb = execute_eps(b.as_ref(), &x, 0.1, &mut rng_for("x", &[1])).unwrap();
    assert_ne!(
        ra.estimate, rb.estimate,
        "distinct workloads should yield distinct allocations"
    );
}
