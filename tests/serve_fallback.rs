//! The portable `poll(2)` readiness backend, forced via
//! `ServeConfig::poller`, must satisfy the same hostile-client contract
//! as the default epoll path: clean 4xx rejects, slowloris 408, silent
//! idle reaping, the connection cap, and keep-alive pipelining. One
//! cross-platform smoke test runs the simulator backend too, so the
//! non-unix fallback is exercised everywhere.

use dpbench::harness::serve::{self, http, Backend, Limits, ServeConfig};
use dpbench::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server_on(backend: Backend, limits: Limits) -> serve::ServerHandle {
    serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        datasets: vec!["MEDCOST".into()],
        scale: 10_000,
        domain: Domain::D1(256),
        tenants: vec![("t".into(), 10.0)],
        threads: 2,
        seed: 7,
        limits,
        poller: backend,
        ..ServeConfig::default()
    })
    .unwrap()
}

fn raw_exchange(addr: &str, payload: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(payload).unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp).into_owned();
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

/// The forced-fallback server reports `"backend":"poll"` and answers the
/// malformed-byte matrix with the documented 4xx codes.
#[cfg(unix)]
#[test]
fn poll_backend_rejects_malformed_requests_cleanly() {
    let handle = server_on(Backend::Poll, Limits::default());
    let addr = handle.addr().to_string();

    let (status, body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"backend\":\"poll\""),
        "status must name the forced backend: {body}"
    );

    let cases: Vec<(Vec<u8>, u16, &str)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400, "bad_request_line"),
        (
            b"POST /v1/release HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            400,
            "bad_content_length",
        ),
        (
            b"POST /v1/release HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
            400,
            "bad_header",
        ),
    ];
    for (payload, want_status, want_code) in cases {
        let (status, text) = raw_exchange(&addr, &payload);
        assert_eq!(status, want_status, "{text}");
        assert!(text.contains(want_code), "{text}");
    }
    handle.shutdown().unwrap();
}

/// Slowloris dribble on the poll backend: 408 from the timer wheel, and
/// the `timeouts` + `timer_fires` counters move.
#[cfg(unix)]
#[test]
fn poll_backend_times_out_a_slowloris_dribble() {
    let limits = Limits {
        header_timeout: Duration::from_millis(300),
        ..Limits::default()
    };
    let handle = server_on(Backend::Poll, limits);
    let addr = handle.addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /v1/release HT").unwrap();
    std::thread::sleep(Duration::from_millis(120));
    s.write_all(b"TP/1.1\r\nContent-").unwrap();
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("request_timeout"), "{text}");

    assert_eq!(
        handle
            .state()
            .robust
            .timeouts
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    let (_, body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert!(body.contains("\"timeouts\":1"), "{body}");
    handle.shutdown().unwrap();
}

/// Idle keep-alive connections are reaped silently on the poll backend.
#[cfg(unix)]
#[test]
fn poll_backend_reaps_idle_connections() {
    let limits = Limits {
        idle_timeout: Duration::from_millis(250),
        ..Limits::default()
    };
    let handle = server_on(Backend::Poll, limits);
    let addr = handle.addr().to_string();

    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Never send a byte: the idle clock runs from accept.
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    assert!(buf.is_empty(), "idle reap must be silent, got {buf:?}");

    let (_, body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert!(body.contains("\"reaped_idle\":1"), "{body}");
    handle.shutdown().unwrap();
}

/// The connection cap sheds with 503 + Retry-After on the poll backend,
/// and capacity returns once a held connection drops.
#[cfg(unix)]
#[test]
fn poll_backend_sheds_at_the_connection_cap_and_recovers() {
    let limits = Limits {
        max_conns: 2,
        ..Limits::default()
    };
    let handle = server_on(Backend::Poll, limits);
    let addr = handle.addr().to_string();

    let held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(&addr).unwrap()).collect();
    // Accept registration is asynchronous; poll until a connect is shed.
    // The shed 503 arrives unsolicited, so read without writing.
    let mut shed = None;
    for _ in 0..100 {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut resp = Vec::new();
        if s.read_to_end(&mut resp).is_ok() && !resp.is_empty() {
            shed = Some(String::from_utf8_lossy(&resp).into_owned());
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let text = shed.expect("no connect was ever shed at the cap");
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(text.contains("\"error\":\"overloaded\""), "{text}");
    assert!(text.contains("Retry-After:"), "{text}");

    drop(held);
    // The poller sees the EOFs and frees the slots.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok((200, _)) = http::request(&addr, "GET", "/v1/healthz", None) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "capacity never recovered after held connections dropped"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown().unwrap();
}

/// Pipelined keep-alive requests on one connection: every response comes
/// back in order, and the poller counters show real event traffic.
#[cfg(unix)]
#[test]
fn poll_backend_serves_pipelined_keepalive_requests() {
    let handle = server_on(Backend::Poll, Limits::default());
    let addr = handle.addr().to_string();

    let mut conn = http::ClientConn::connect(&addr).unwrap();
    const N: usize = 8;
    for _ in 0..N {
        conn.send("GET", "/v1/healthz", None).unwrap();
    }
    for i in 0..N {
        let (status, body) = conn.recv().unwrap();
        assert_eq!(status, 200, "response {i}: {body}");
        assert!(body.contains("\"ok\":true"), "response {i}: {body}");
    }
    // A release round-trip over the same connection still works.
    let (status, body) = conn
        .request(
            "POST",
            "/v1/release",
            Some(r#"{"tenant":"t","dataset":"MEDCOST","eps":0.1,"mechanism":"IDENTITY"}"#),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");

    let (_, status_body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    let stats = handle.state().poller_stats();
    assert!(stats.wakeups > 0, "workers must have blocked on the poller");
    assert!(
        stats.events > 0,
        "readiness events must have been delivered"
    );
    assert!(
        status_body.contains("\"poller\":{\"backend\":\"poll\""),
        "{status_body}"
    );
    handle.shutdown().unwrap();
}

/// The simulator backend (what non-unix targets fall back to) serves the
/// basic request round-trip — run everywhere so the path cannot rot.
#[test]
fn sim_backend_serves_requests() {
    let handle = server_on(Backend::Sim, Limits::default());
    let addr = handle.addr().to_string();

    let (status, body) = http::request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = http::request(
        &addr,
        "POST",
        "/v1/release",
        Some(r#"{"tenant":"t","dataset":"MEDCOST","eps":0.1,"mechanism":"IDENTITY"}"#),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let (_, status_body) = http::request(&addr, "GET", "/v1/status", None).unwrap();
    assert!(
        status_body.contains("\"poller\":{\"backend\":\"sim\""),
        "{status_body}"
    );
    handle.shutdown().unwrap();
}
