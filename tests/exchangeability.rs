//! Empirical verification of scale-ε exchangeability (Definition 4,
//! Appendix C): for exchangeable algorithms, `(scale m, ε)` and
//! `(scale c·m, ε/c)` produce statistically equal scaled errors.

use dpbench::prelude::*;
use dpbench_core::rng::rng_for;

fn mean_error(name: &str, x: &DataVector, w: &Workload, eps: f64, trials: usize) -> f64 {
    let mech = mechanism_by_name(name).expect("registered");
    let y = w.evaluate(x);
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = rng_for(
            "exch",
            &[dpbench_core::rng::hash_str(name), eps.to_bits(), t as u64],
        );
        let est = mech.run_eps(x, w, eps, &mut rng).unwrap();
        total += scaled_per_query_error(&y, &w.evaluate_cells(&est), x.scale(), Loss::L2);
    }
    total / trials as f64
}

/// Exact-shape inputs at two scales (x2 = 100·x1), bypassing the sampling
/// noise of the generator so the check isolates the mechanism property.
fn paired_inputs(n: usize) -> (DataVector, DataVector) {
    let shape: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 + 1.0).collect();
    let total: f64 = shape.iter().sum();
    let m1 = 10_000.0;
    let x1: Vec<f64> = shape.iter().map(|v| (v / total * m1).round()).collect();
    let x2: Vec<f64> = x1.iter().map(|v| v * 100.0).collect();
    (
        DataVector::new(x1, Domain::D1(n)),
        DataVector::new(x2, Domain::D1(n)),
    )
}

#[test]
fn exchangeable_mechanisms_match_across_the_tradeoff() {
    let n = 256;
    let (x1, x2) = paired_inputs(n);
    let w = Workload::prefix_1d(n);
    let trials = 20;
    for name in [
        "IDENTITY", "HB", "PRIVELET", "DAWA", "PHP", "EFPA", "UNIFORM",
    ] {
        let e1 = mean_error(name, &x1, &w, 1.0, trials);
        let e2 = mean_error(name, &x2, &w, 0.01, trials);
        let ratio = e1 / e2;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{name}: scaled errors should match across the scale-ε tradeoff, got {e1:.3e} vs {e2:.3e} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn laplace_mechanism_exchangeability_is_exact_in_distribution() {
    // For IDENTITY the property is exact: scaled error = ||Lap(1/ε)||/(s·q),
    // and ε·s is constant across the pair. With enough trials the means
    // converge tightly.
    let n = 128;
    let (x1, x2) = paired_inputs(n);
    let w = Workload::identity(Domain::D1(n));
    let e1 = mean_error("IDENTITY", &x1, &w, 2.0, 60);
    let e2 = mean_error("IDENTITY", &x2, &w, 0.02, 60);
    let ratio = e1 / e2;
    assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
}
