//! Fault-matrix e2e suite: drive the fleet driver through the
//! deterministic [`FaultyTransport`] across every remote failure mode —
//! crash mid-unit, hang past the stall timeout, torn copy-back, empty
//! artifact, stale ledger, duplicate relaunch — with and without
//! retries, and assert the merged output stays **byte-identical** to a
//! one-shot single-process run in every surviving case. No real
//! machines, no child processes: the transport runs shards in-process
//! and injects failures by script, so the matrix is exact and fast.

use dpbench::harness::fleet::{
    run_fleet_with, shard_ledger_path, FaultyTransport, FetchFault, FleetOptions, LaunchFault,
};
use dpbench::harness::sink::JsonlSink;
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name("MEDCOST").unwrap()],
        scales: vec![10_000],
        domains: vec![Domain::D1(128)],
        epsilons: vec![0.5],
        algorithms: vec!["IDENTITY".into(), "UNIFORM".into()],
        n_samples: 2,
        n_trials: 2,
        workload: WorkloadSpec::Prefix,
        loss: Loss::L2,
    }
}

/// Fresh scratch directory for one test case.
fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dpbench-fleet-faults-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// One-shot single-process reference ledger (the byte oracle).
fn reference(dir: &Path) -> Vec<u8> {
    let path = dir.join("ref.jsonl");
    let runner = Runner::new(tiny_config());
    let mut sink = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&runner.manifest(), &mut sink).unwrap();
    drop(sink);
    std::fs::read(&path).unwrap()
}

fn opts() -> FleetOptions {
    FleetOptions {
        procs: 2,
        max_attempts: 3,
        poll_interval: Duration::from_millis(5),
        progress_interval: Duration::from_millis(20),
        ..FleetOptions::default()
    }
}

#[test]
fn crash_mid_unit_is_resumed_and_bytes_match() {
    let dir = tmp_dir("crash");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        1,
        0,
        LaunchFault::Crash {
            after_units: 1,
            torn_tail: false,
        },
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 1);
    assert_eq!(report.shards[1].attempts, 2, "crashed shard retries once");
    assert!(report.shards[1].resumed, "retry must resume, not restart");
    assert_eq!(report.launches, 3);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    // Remote scratch space is cleaned up only after the verified merge.
    assert_eq!(transport.cleanups(), vec![0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_with_torn_remote_tail_heals_on_resume() {
    let dir = tmp_dir("torn-tail");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // The crash tears the remote ledger's final line mid-write; the
    // fetched copy is Partial (torn tail tolerated), and the resuming
    // attempt heals the remote file before appending.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        0,
        0,
        LaunchFault::Crash {
            after_units: 1,
            torn_tail: true,
        },
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 2);
    assert!(report.shards[0].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_copy_back_triggers_a_noop_relaunch_and_refetch() {
    let dir = tmp_dir("torn-fetch");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Shard 1 finishes cleanly, but its first copy-back is torn. The
    // driver sees a Partial local ledger, relaunches with resume (a
    // duplicate launch of an already-complete shard — a cheap no-op on
    // the remote side), and the re-fetch delivers the full file.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_fetch(
        1,
        0,
        FetchFault::TornCopy { drop_bytes: 37 },
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(
        report.shards[1].attempts, 2,
        "torn copy-back re-dispatches the shard"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_artifact_redispatches_the_shard_fresh() {
    let dir = tmp_dir("empty");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_fetch(
        0,
        0,
        FetchFault::EmptyArtifact,
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 2);
    assert!(
        !report.shards[0].resumed,
        "an empty local ledger means a fresh relaunch, not a resume"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hang_is_stall_killed_and_retried() {
    let dir = tmp_dir("hang");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        1,
        0,
        LaunchFault::Hang,
    );
    let out = dir.join("fleet.jsonl");
    let mut o = opts();
    o.stall_timeout = Some(Duration::from_millis(150));
    let report = run_fleet_with(&manifest, &transport, &out, &o).unwrap();
    assert_eq!(report.shards[1].stall_kills, 1, "the hang must be killed");
    assert_eq!(report.shards[1].attempts, 2);
    assert_eq!(report.shards[0].stall_kills, 0);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_ledger_from_a_different_run_is_a_hard_error() {
    let dir = tmp_dir("stale");
    let manifest = Runner::new(tiny_config()).manifest();
    // The first copy-back delivers a ledger from some other run (stale
    // scratch space). Merging it would poison the output; the driver
    // must refuse loudly instead of retrying its way past it.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_fetch(
        0,
        0,
        FetchFault::StaleLedger,
    );
    let out = dir.join("fleet.jsonl");
    let err = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap_err();
    assert!(
        err.to_string().contains("different run"),
        "unexpected error: {err}"
    );
    assert!(
        transport.cleanups().is_empty(),
        "failed fleets must not clean up remote evidence"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_status_is_advisory_the_ledger_is_truth() {
    let dir = tmp_dir("lie");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Shard 0 does all its work, then reports a failing exit (an ssh
    // that died on the way out). The fetched ledger is complete, so no
    // relaunch happens at all.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        0,
        0,
        LaunchFault::LieAboutExit,
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(
        report.shards[0].attempts, 1,
        "a complete ledger must not be relaunched, whatever the exit said"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_crashes_across_retries_still_converge() {
    let dir = tmp_dir("repeat-crash");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Two crashing attempts in a row; the third completes the remainder.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"))
        .fail_launch(
            1,
            0,
            LaunchFault::Crash {
                after_units: 1,
                torn_tail: false,
            },
        )
        .fail_launch(
            1,
            1,
            LaunchFault::Crash {
                after_units: 0,
                torn_tail: true,
            },
        );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[1].attempts, 3);
    assert!(report.shards[1].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_local_partial_copy_with_wiped_remote_relaunches_fresh() {
    let dir = tmp_dir("wiped-remote");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let out = dir.join("fleet.jsonl");
    // A leftover *partial* local copy of shard 0 from an earlier fleet
    // whose remote scratch space has since been wiped. Resuming is
    // impossible (the remote has nothing to resume from); the driver
    // must relaunch fresh instead of looping failed resume attempts.
    let mut partial_runner = Runner::new(tiny_config());
    partial_runner.max_units = Some(1);
    let mut sink = JsonlSink::create(shard_ledger_path(&out, 0)).unwrap();
    partial_runner
        .run_with_sink(&manifest.shard(0, 2), &mut sink)
        .unwrap();
    drop(sink);
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"));
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 1);
    assert!(
        !report.shards[0].resumed,
        "a wiped remote must trigger a fresh relaunch, not a doomed resume"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_fail_loudly_and_a_second_fleet_finishes_the_job() {
    let dir = tmp_dir("exhausted");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // First attempt dies after one unit; the retry dies before running
    // anything (after_units: 0), so the shard is still short when the
    // round budget runs out.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"))
        .fail_launch(
            1,
            0,
            LaunchFault::Crash {
                after_units: 1,
                torn_tail: false,
            },
        )
        .fail_launch(
            1,
            1,
            LaunchFault::Crash {
                after_units: 0,
                torn_tail: false,
            },
        );
    let out = dir.join("fleet.jsonl");
    let mut o = opts();
    o.max_attempts = 2;
    let err = run_fleet_with(&manifest, &transport, &out, &o).unwrap_err();
    assert!(
        err.to_string().contains("shard 1 did not complete"),
        "unexpected error: {err}"
    );
    // The partial shard ledger survives locally as the crash record…
    let partial = shard_ledger_path(&out, 1);
    assert!(partial.exists());
    // …and a later fleet over the same scratch space resumes straight
    // through to the byte-identical merged output.
    let retry = FaultyTransport::new(tiny_config(), dir.join("remote"));
    let report = run_fleet_with(&manifest, &retry, &out, &opts()).unwrap();
    assert!(report.shards[1].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}
