//! Fault-matrix e2e suite: drive the fleet driver through the
//! deterministic [`FaultyTransport`] across every remote failure mode —
//! crash mid-unit, hang past the stall timeout, torn copy-back, empty
//! artifact, stale ledger, duplicate relaunch — with and without
//! retries, and assert the merged output stays **byte-identical** to a
//! one-shot single-process run in every surviving case. No real
//! machines, no child processes: the transport runs shards in-process
//! and injects failures by script, so the matrix is exact and fast.

use dpbench::harness::fleet::{
    run_fleet_with, shard_ledger_path, FaultyTransport, FetchFault, FleetOptions, LaunchFault,
};
use dpbench::harness::sink::JsonlSink;
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        datasets: vec![dpbench::datasets::catalog::by_name("MEDCOST").unwrap()],
        scales: vec![10_000],
        domains: vec![Domain::D1(128)],
        epsilons: vec![0.5],
        algorithms: vec!["IDENTITY".into(), "UNIFORM".into()],
        n_samples: 2,
        n_trials: 2,
        workload: WorkloadSpec::Prefix,
        loss: Loss::L2,
    }
}

/// Fresh scratch directory for one test case.
fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dpbench-fleet-faults-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// One-shot single-process reference ledger (the byte oracle).
fn reference(dir: &Path) -> Vec<u8> {
    let path = dir.join("ref.jsonl");
    let runner = Runner::new(tiny_config());
    let mut sink = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&runner.manifest(), &mut sink).unwrap();
    drop(sink);
    std::fs::read(&path).unwrap()
}

fn opts() -> FleetOptions {
    FleetOptions {
        procs: 2,
        max_attempts: 3,
        poll_interval: Duration::from_millis(5),
        progress_interval: Duration::from_millis(20),
        ..FleetOptions::default()
    }
}

#[test]
fn crash_mid_unit_is_resumed_and_bytes_match() {
    let dir = tmp_dir("crash");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        1,
        0,
        LaunchFault::Crash {
            after_units: 1,
            torn_tail: false,
        },
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 1);
    assert_eq!(report.shards[1].attempts, 2, "crashed shard retries once");
    assert!(report.shards[1].resumed, "retry must resume, not restart");
    assert_eq!(report.launches, 3);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    // Remote scratch space is cleaned up only after the verified merge.
    assert_eq!(transport.cleanups(), vec![0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_with_torn_remote_tail_heals_on_resume() {
    let dir = tmp_dir("torn-tail");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // The crash tears the remote ledger's final line mid-write; the
    // fetched copy is Partial (torn tail tolerated), and the resuming
    // attempt heals the remote file before appending.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        0,
        0,
        LaunchFault::Crash {
            after_units: 1,
            torn_tail: true,
        },
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 2);
    assert!(report.shards[0].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_copy_back_heals_on_refetch_without_burning_an_attempt() {
    let dir = tmp_dir("torn-fetch");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Shard 1 finishes cleanly, but its first copy-back is torn. The
    // remote work is done; a failed *copy* must cost a re-fetch, never a
    // launch attempt — the next round's fetch delivers the full file and
    // the shard counts as complete on its one and only launch.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_fetch(
        1,
        0,
        FetchFault::TornCopy { drop_bytes: 37 },
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(
        report.shards[1].attempts, 1,
        "a torn copy-back is a fetch problem; it must not burn a launch attempt"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_artifact_heals_on_refetch_without_burning_an_attempt() {
    let dir = tmp_dir("empty");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // One copy-back delivers an empty file (a fetch command that created
    // its output and then died). Like the torn copy, the remote ledger
    // is intact, so the next round's re-fetch completes the shard with
    // no extra launch and no resume.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_fetch(
        0,
        0,
        FetchFault::EmptyArtifact,
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 1);
    assert!(!report.shards[0].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hang_is_stall_killed_and_retried() {
    let dir = tmp_dir("hang");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        1,
        0,
        LaunchFault::Hang,
    );
    let out = dir.join("fleet.jsonl");
    let mut o = opts();
    o.stall_timeout = Some(Duration::from_millis(150));
    // Stealing would route around the hang (the finished shard would
    // take the hung shard's whole tail) — good operationally, but this
    // drill targets the stall-kill machinery itself.
    o.steal = false;
    let report = run_fleet_with(&manifest, &transport, &out, &o).unwrap();
    assert_eq!(report.shards[1].stall_kills, 1, "the hang must be killed");
    assert_eq!(report.shards[1].attempts, 2);
    assert_eq!(report.shards[0].stall_kills, 0);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_ledger_from_a_different_run_is_a_hard_error() {
    let dir = tmp_dir("stale");
    let manifest = Runner::new(tiny_config()).manifest();
    // The first copy-back delivers a ledger from some other run (stale
    // scratch space). Merging it would poison the output; the driver
    // must refuse loudly instead of retrying its way past it.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_fetch(
        0,
        0,
        FetchFault::StaleLedger,
    );
    let out = dir.join("fleet.jsonl");
    let err = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap_err();
    assert!(
        err.to_string().contains("different run"),
        "unexpected error: {err}"
    );
    assert!(
        transport.cleanups().is_empty(),
        "failed fleets must not clean up remote evidence"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_status_is_advisory_the_ledger_is_truth() {
    let dir = tmp_dir("lie");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Shard 0 does all its work, then reports a failing exit (an ssh
    // that died on the way out). The fetched ledger is complete, so no
    // relaunch happens at all.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote")).fail_launch(
        0,
        0,
        LaunchFault::LieAboutExit,
    );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(
        report.shards[0].attempts, 1,
        "a complete ledger must not be relaunched, whatever the exit said"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_crashes_across_retries_still_converge() {
    let dir = tmp_dir("repeat-crash");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Two crashing attempts in a row; the third completes the remainder.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"))
        .fail_launch(
            1,
            0,
            LaunchFault::Crash {
                after_units: 1,
                torn_tail: false,
            },
        )
        .fail_launch(
            1,
            1,
            LaunchFault::Crash {
                after_units: 0,
                torn_tail: true,
            },
        );
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[1].attempts, 3);
    assert!(report.shards[1].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_local_partial_copy_with_wiped_remote_relaunches_fresh() {
    let dir = tmp_dir("wiped-remote");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    let out = dir.join("fleet.jsonl");
    // A leftover *partial* local copy of shard 0 from an earlier fleet
    // whose remote scratch space has since been wiped. Resuming is
    // impossible (the remote has nothing to resume from); the driver
    // must relaunch fresh instead of looping failed resume attempts.
    let mut partial_runner = Runner::new(tiny_config());
    partial_runner.max_units = Some(1);
    let mut sink = JsonlSink::create(shard_ledger_path(&out, 0)).unwrap();
    partial_runner
        .run_with_sink(&manifest.shard(0, 2), &mut sink)
        .unwrap();
    drop(sink);
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"));
    let report = run_fleet_with(&manifest, &transport, &out, &opts()).unwrap();
    assert_eq!(report.shards[0].attempts, 1);
    assert!(
        !report.shards[0].resumed,
        "a wiped remote must trigger a fresh relaunch, not a doomed resume"
    );
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_fail_loudly_and_a_second_fleet_finishes_the_job() {
    let dir = tmp_dir("exhausted");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // First attempt dies after one unit; the retry dies before running
    // anything (after_units: 0), so the shard is still short when the
    // round budget runs out.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"))
        .fail_launch(
            1,
            0,
            LaunchFault::Crash {
                after_units: 1,
                torn_tail: false,
            },
        )
        .fail_launch(
            1,
            1,
            LaunchFault::Crash {
                after_units: 0,
                torn_tail: false,
            },
        );
    let out = dir.join("fleet.jsonl");
    let mut o = opts();
    o.max_attempts = 2;
    let err = run_fleet_with(&manifest, &transport, &out, &o).unwrap_err();
    assert!(
        err.to_string().contains("shard 1 did not complete"),
        "unexpected error: {err}"
    );
    // The partial shard ledger survives locally as the crash record…
    let partial = shard_ledger_path(&out, 1);
    assert!(partial.exists());
    // …and a later fleet over the same scratch space resumes straight
    // through to the byte-identical merged output.
    let retry = FaultyTransport::new(tiny_config(), dir.join("remote"));
    let report = run_fleet_with(&manifest, &retry, &out, &opts()).unwrap();
    assert!(report.shards[1].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fetch_deferrals_do_not_burn_the_launch_budget() {
    let dir = tmp_dir("defer");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Shard 1 crashes after one unit, then its next three copy-backs all
    // fail (unreachable network). The remote work is intact the whole
    // time; only the *view* of it is stale. Deferred rounds must burn
    // time, never launch budget — under a round-counting loop the three
    // unreachable rounds would exhaust max_attempts = 3 and the fleet
    // would die without ever relaunching the shard.
    let transport = FaultyTransport::new(tiny_config(), dir.join("remote"))
        .fail_launch(
            1,
            0,
            LaunchFault::Crash {
                after_units: 1,
                torn_tail: false,
            },
        )
        .fail_fetch(1, 1, FetchFault::Unreachable)
        .fail_fetch(1, 2, FetchFault::Unreachable)
        .fail_fetch(1, 3, FetchFault::Unreachable);
    let out = dir.join("fleet.jsonl");
    let mut o = opts();
    o.progress_interval = Duration::from_millis(5);
    let report = run_fleet_with(&manifest, &transport, &out, &o).unwrap();
    assert_eq!(
        report.shards[1].attempts, 2,
        "three deferrals plus one resume must fit a launch budget of 3"
    );
    assert!(report.shards[1].resumed);
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bigger grid for the elasticity drills: 60 units (30 samples × 2
/// algorithms) so a slow shard leaves a meaty stealable tail.
fn drill_config() -> ExperimentConfig {
    ExperimentConfig {
        n_samples: 30,
        ..tiny_config()
    }
}

/// One-shot oracle for [`drill_config`].
fn drill_reference(dir: &Path) -> Vec<u8> {
    let path = dir.join("drill-ref.jsonl");
    let runner = Runner::new(drill_config());
    let mut sink = JsonlSink::create(&path).unwrap();
    runner.run_with_sink(&runner.manifest(), &mut sink).unwrap();
    drop(sink);
    std::fs::read(&path).unwrap()
}

#[test]
fn straggler_tail_is_stolen_and_wall_clock_stays_bounded() {
    let dir = tmp_dir("straggler");
    let oracle = drill_reference(&dir);
    let manifest = Runner::new(drill_config()).manifest();
    let mut o = opts();
    o.procs = 5;
    let fast = Duration::from_millis(40);

    // Baseline: five equally-paced slots. (Every slot gets a slow_slot
    // entry so all five run concurrently on threads; a delay-free
    // fault-free launch runs synchronously and would serialize.)
    let mut base_t = FaultyTransport::new(drill_config(), dir.join("remote-base"));
    for slot in 0..5 {
        base_t = base_t.slow_slot(slot, fast);
    }
    let out_base = dir.join("base.jsonl");
    let started = Instant::now();
    run_fleet_with(&manifest, &base_t, &out_base, &o).unwrap();
    let baseline = started.elapsed();
    assert_eq!(std::fs::read(&out_base).unwrap(), oracle);

    // Straggler: slot 0 runs 10× slower. Without stealing the fleet
    // would take ~10× the baseline (the slow shard alone holds 12 units
    // at 400 ms each); with its tail re-dealt across the four finished
    // slots it must stay near the baseline. The constant term absorbs
    // probe/poll scheduling latency, which doesn't shrink with load.
    let mut slow_t = FaultyTransport::new(drill_config(), dir.join("remote-slow"))
        .slow_slot(0, Duration::from_millis(400));
    for slot in 1..5 {
        slow_t = slow_t.slow_slot(slot, fast);
    }
    let out = dir.join("elastic.jsonl");
    let started = Instant::now();
    let report = run_fleet_with(&manifest, &slow_t, &out, &o).unwrap();
    let elastic = started.elapsed();

    assert!(
        report.steal_launches >= 1,
        "no tails were stolen: {report:?}"
    );
    assert!(report.shards[0].tails_stolen >= 1);
    assert_eq!(
        std::fs::read(&out).unwrap(),
        oracle,
        "stolen tails must merge byte-identically"
    );
    let bound = baseline.mul_f64(1.5) + Duration::from_millis(300);
    assert!(
        elastic <= bound,
        "straggler fleet too slow: {elastic:?} vs baseline {baseline:?} (bound {bound:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pull one `"key":<int>` field out of a status line without a JSON
/// parser (the harness deliberately has no JSON dependency).
fn field_usize(s: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let i = s.find(&pat)? + pat.len();
    let digits: String = s[i..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[test]
fn status_file_is_atomic_monotone_and_reaches_complete() {
    let dir = tmp_dir("status");
    let manifest = Runner::new(drill_config()).manifest();
    let total = manifest.len();
    let status = dir.join("status.json");
    let mut o = opts();
    o.procs = 5;
    o.status_file = Some(status.clone());
    let mut t = FaultyTransport::new(drill_config(), dir.join("remote"))
        .slow_slot(0, Duration::from_millis(200));
    for slot in 1..5 {
        t = t.slow_slot(slot, Duration::from_millis(30));
    }

    // Hostile poller: read the file as fast as it can while the fleet
    // runs. Every successful read must be one complete, parseable
    // snapshot (temp+rename means no torn reads), and units_done must
    // never move backwards — not even while tails are being re-dealt.
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let status = status.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<usize, String> {
            let mut last = 0usize;
            let mut reads = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(s) = std::fs::read_to_string(&status) {
                    if !(s.starts_with("{\"t\":\"fleet-status\"") && s.ends_with("}\n")) {
                        return Err(format!("torn status read: {s:?}"));
                    }
                    let done = field_usize(&s, "units_done")
                        .ok_or_else(|| format!("no units_done in {s:?}"))?;
                    if done < last {
                        return Err(format!("units_done went backwards: {last} -> {done}"));
                    }
                    last = done;
                    reads += 1;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(reads)
        })
    };

    let out = dir.join("fleet.jsonl");
    run_fleet_with(&manifest, &t, &out, &o).unwrap();
    stop.store(true, Ordering::Relaxed);
    let reads = poller
        .join()
        .unwrap()
        .expect("status poller saw a bad read");
    assert!(reads >= 3, "too few status snapshots observed: {reads}");

    // The final snapshot says so explicitly, with every unit accounted.
    let last = std::fs::read_to_string(&status).unwrap();
    assert!(last.contains("\"complete\":true"), "{last}");
    assert_eq!(field_usize(&last, "units_done"), Some(total));
    assert_eq!(field_usize(&last, "units_total"), Some(total));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ranged_fetch_moves_only_new_bytes() {
    let dir = tmp_dir("ranged");
    let oracle = reference(&dir);
    let manifest = Runner::new(tiny_config()).manifest();
    // Both slots run slow enough to span several probe ticks with the
    // ranged protocol enabled: each probe should move only the ledger
    // bytes appended since the previous one.
    let t = FaultyTransport::new(tiny_config(), dir.join("remote"))
        .with_ranged()
        .slow_slot(0, Duration::from_millis(60))
        .slow_slot(1, Duration::from_millis(60));
    let out = dir.join("fleet.jsonl");
    let report = run_fleet_with(&manifest, &t, &out, &opts()).unwrap();
    assert_eq!(std::fs::read(&out).unwrap(), oracle);
    assert!(
        report.fetch_ranged_bytes > 0,
        "ranged protocol was offered but never used: {report:?}"
    );
    assert_eq!(
        report.fetch_full_bytes, 0,
        "every copy-back should have gone through the ranged path"
    );
    // O(new bytes): every ledger byte crosses the wire about once, no
    // matter how many probe ticks ran. (The 2× slack covers re-fetched
    // torn tail fragments and defensive re-fetches.) A whole-ledger copy
    // per probe would transfer many multiples of the final size.
    let ledger_bytes: u64 = (0..2)
        .map(|i| std::fs::metadata(shard_ledger_path(&out, i)).unwrap().len())
        .sum();
    assert!(
        report.fetch_ranged_bytes <= 2 * ledger_bytes,
        "ranged fetch re-transferred old bytes: {} moved for {} byte(s) of ledger",
        report.fetch_ranged_bytes,
        ledger_bytes
    );
    assert!(
        report.probe_fetch_bytes.len() >= 2,
        "expected multiple probe ticks: {:?}",
        report.probe_fetch_bytes
    );
    let _ = std::fs::remove_dir_all(&dir);
}
