//! Data-independent algorithms (Section 3.1) must show the same expected
//! error on every dataset over a given domain — their noise distribution
//! does not depend on the input. Data-dependent algorithms must *not*: on
//! sufficiently different shapes their errors diverge.

use dpbench::prelude::*;
use dpbench_core::rng::rng_for;

fn mean_error(name: &str, x: &DataVector, w: &Workload, trials: usize, salt: u64) -> f64 {
    let mech = mechanism_by_name(name).expect("registered");
    let y = w.evaluate(x);
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = rng_for(
            "dataindep",
            &[dpbench_core::rng::hash_str(name), salt, t as u64],
        );
        let est = mech.run_eps(x, w, 0.5, &mut rng).unwrap();
        // Absolute (unscaled) L2 so different-scale inputs stay comparable.
        total += Loss::L2.eval(&y, &w.evaluate_cells(&est));
    }
    total / trials as f64
}

fn shapes(n: usize) -> (DataVector, DataVector) {
    // Uniform vs. single spike, equal scale.
    let uniform = DataVector::new(vec![100.0; n], Domain::D1(n));
    let mut spike = vec![0.0; n];
    spike[0] = 100.0 * n as f64;
    (uniform, DataVector::new(spike, Domain::D1(n)))
}

#[test]
fn data_independent_error_is_shape_invariant() {
    let n = 256;
    let (a, b) = shapes(n);
    let w = Workload::prefix_1d(n);
    for name in ["IDENTITY", "H", "HB", "PRIVELET", "GREEDY_H"] {
        let ea = mean_error(name, &a, &w, 40, 1);
        let eb = mean_error(name, &b, &w, 40, 2);
        let ratio = ea / eb;
        assert!(
            (0.75..1.35).contains(&ratio),
            "{name} is data-independent but errors differ: {ea:.3} vs {eb:.3}"
        );
    }
}

#[test]
fn data_dependent_error_varies_with_shape() {
    let n = 256;
    let (a, b) = shapes(n);
    let w = Workload::prefix_1d(n);
    // DAWA collapses the uniform shape into a single bucket → much lower
    // error than on the spike... and in all cases different from uniform.
    let ea = mean_error("DAWA", &a, &w, 20, 3);
    let eb = mean_error("DAWA", &b, &w, 20, 4);
    let ratio = ea / eb;
    assert!(
        !(0.8..1.25).contains(&ratio),
        "DAWA should be shape-sensitive: {ea:.3} vs {eb:.3}"
    );
}

#[test]
fn uniform_baseline_is_the_extreme_data_dependent_case() {
    let n = 128;
    let (a, b) = shapes(n);
    let w = Workload::prefix_1d(n);
    let ea = mean_error("UNIFORM", &a, &w, 20, 5);
    let eb = mean_error("UNIFORM", &b, &w, 20, 6);
    // Perfect on uniform data, terrible on the spike.
    assert!(
        eb > ea * 10.0,
        "UNIFORM: uniform-shape {ea:.3} vs spike {eb:.3}"
    );
}
