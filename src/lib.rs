//! # dpbench
//!
//! A complete Rust reproduction of **DPBench** — *"Principled Evaluation
//! of Differentially Private Algorithms using DPBench"* (Hay,
//! Machanavajjhala, Miklau, Chen, Zhang; SIGMOD 2016).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — data model, workloads, DP primitives, budget ledger,
//!   mechanism trait, error standard;
//! * [`transforms`] — Haar wavelets, FFT, Hilbert curves, dense linear
//!   algebra, weighted tree least squares;
//! * [`stats`] — t-tests, percentiles, bias/variance decomposition,
//!   regret;
//! * [`datasets`] — the 27 calibrated dataset shapes and the data
//!   generator `G`;
//! * [`algorithms`] — the full Table 1 mechanism suite (IDENTITY, H, Hb,
//!   GREEDY_H, PRIVELET, UNIFORM, MWEM/MWEM★, AHP/AHP★, DPCUBE, DAWA,
//!   PHP, EFPA, SF, QUADTREE, UGRID, AGRID, HYBRIDTREE);
//! * [`harness`] — the experiment grid runner, `Rparam` tuning, `Rside`
//!   repair, and competitive-set analysis.
//!
//! ## Quickstart
//!
//! Mechanisms run in two phases: [`Mechanism::plan`] does all
//! data-independent setup (strategy matrices, hierarchy layouts — cache
//! it across trials), and [`Plan::execute`](core::Plan::execute) performs
//! the private part, returning a structured [`Release`](core::Release)
//! with the estimate, the per-step budget trace, and strategy
//! diagnostics. `run_eps` remains the one-line shim for single runs.
//!
//! ```
//! use dpbench::prelude::*;
//! use rand::SeedableRng;
//!
//! // Generate a benchmark dataset: MEDCOST shape, 10,000 records, n=256.
//! let dataset = dpbench::datasets::catalog::by_name("MEDCOST").unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x = DataGenerator::new().generate(&dataset, Domain::D1(256), 10_000, &mut rng);
//!
//! // Answer the Prefix workload with DAWA at ε = 0.1.
//! let workload = Workload::prefix_1d(256);
//! let dawa = mechanism_by_name("DAWA").unwrap();
//!
//! // Phase 1: plan (data-independent, reusable across trials) …
//! let plan = dawa.plan(&x.domain(), &workload).unwrap();
//! // … phase 2: execute (private), yielding a structured Release.
//! let release = execute_eps(plan.as_ref(), &x, 0.1, &mut rng).unwrap();
//! assert!(release.spent() <= 0.1 + 1e-12);
//!
//! // Measure the scaled per-query error (paper Definition 3).
//! let y = workload.evaluate(&x);
//! let y_hat = workload.evaluate_cells(&release.estimate);
//! let err = scaled_per_query_error(&y, &y_hat, x.scale(), Loss::L2);
//! assert!(err.is_finite());
//!
//! // One-liner equivalent when no reuse is needed:
//! let estimate = dawa.run_eps(&x, &workload, 0.1, &mut rng).unwrap();
//! assert_eq!(estimate.len(), 256);
//! ```
//!
//! The grid harness caches plans keyed by `(mechanism, domain, workload)`
//! (see [`harness::runner::PlanCache`]), so data-independent strategies
//! are built once per grid cell instead of once per trial.

pub use dpbench_algorithms as algorithms;
pub use dpbench_core as core;
pub use dpbench_datasets as datasets;
pub use dpbench_harness as harness;
pub use dpbench_stats as stats;
pub use dpbench_transforms as transforms;

/// Convenient re-exports for typical benchmark use.
pub mod prelude {
    pub use dpbench_algorithms::registry::{
        mechanism_by_name, mechanisms_1d, mechanisms_2d, FIGURE_1A, FIGURE_1B, NAMES_1D, NAMES_2D,
    };
    pub use dpbench_core::mechanism::execute_eps;
    pub use dpbench_core::{
        scaled_per_query_error, BudgetLedger, DataVector, Domain, Loss, MechError, MechInfo,
        Mechanism, Plan, PlanDiagnostics, RangeQuery, Release, SpendRecord, Workload,
    };
    pub use dpbench_datasets::{datasets_1d, datasets_2d, DataGenerator, Dataset};
    pub use dpbench_harness::config::{ExperimentConfig, WorkloadSpec};
    pub use dpbench_harness::runner::{PlanCache, PlanCacheStats};
    pub use dpbench_harness::{ErrorSample, ResultStore, Runner};
    pub use dpbench_stats::Summary;
}
