//! # dpbench
//!
//! A complete Rust reproduction of **DPBench** — *"Principled Evaluation
//! of Differentially Private Algorithms using DPBench"* (Hay,
//! Machanavajjhala, Miklau, Chen, Zhang; SIGMOD 2016).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — data model, workloads, DP primitives, budget ledger,
//!   mechanism trait, error standard;
//! * [`transforms`] — Haar wavelets, FFT, Hilbert curves, dense linear
//!   algebra, weighted tree least squares;
//! * [`stats`] — t-tests, percentiles, bias/variance decomposition,
//!   regret;
//! * [`datasets`] — the 27 calibrated dataset shapes and the data
//!   generator `G`;
//! * [`algorithms`] — the full Table 1 mechanism suite (IDENTITY, H, Hb,
//!   GREEDY_H, PRIVELET, UNIFORM, MWEM/MWEM★, AHP/AHP★, DPCUBE, DAWA,
//!   PHP, EFPA, SF, QUADTREE, UGRID, AGRID, HYBRIDTREE);
//! * [`harness`] — the experiment grid runner, `Rparam` tuning, `Rside`
//!   repair, and competitive-set analysis.
//!
//! ## Quickstart
//!
//! ```
//! use dpbench::prelude::*;
//! use rand::SeedableRng;
//!
//! // Generate a benchmark dataset: MEDCOST shape, 10,000 records, n=256.
//! let dataset = dpbench::datasets::catalog::by_name("MEDCOST").unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x = DataGenerator::new().generate(&dataset, Domain::D1(256), 10_000, &mut rng);
//!
//! // Answer the Prefix workload with DAWA at ε = 0.1.
//! let workload = Workload::prefix_1d(256);
//! let dawa = mechanism_by_name("DAWA").unwrap();
//! let estimate = dawa.run_eps(&x, &workload, 0.1, &mut rng).unwrap();
//!
//! // Measure the scaled per-query error (paper Definition 3).
//! let y = workload.evaluate(&x);
//! let y_hat = workload.evaluate_cells(&estimate);
//! let err = scaled_per_query_error(&y, &y_hat, x.scale(), Loss::L2);
//! assert!(err.is_finite());
//! ```

pub use dpbench_algorithms as algorithms;
pub use dpbench_core as core;
pub use dpbench_datasets as datasets;
pub use dpbench_harness as harness;
pub use dpbench_stats as stats;
pub use dpbench_transforms as transforms;

/// Convenient re-exports for typical benchmark use.
pub mod prelude {
    pub use dpbench_algorithms::registry::{
        mechanism_by_name, mechanisms_1d, mechanisms_2d, FIGURE_1A, FIGURE_1B, NAMES_1D, NAMES_2D,
    };
    pub use dpbench_core::{
        scaled_per_query_error, BudgetLedger, DataVector, Domain, Loss, MechError, MechInfo,
        Mechanism, RangeQuery, Workload,
    };
    pub use dpbench_datasets::{datasets_1d, datasets_2d, DataGenerator, Dataset};
    pub use dpbench_harness::config::{ExperimentConfig, WorkloadSpec};
    pub use dpbench_harness::{ErrorSample, ResultStore, Runner};
    pub use dpbench_stats::Summary;
}
