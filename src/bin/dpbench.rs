//! `dpbench` — command-line front end to the benchmark.
//!
//! ```text
//! dpbench list-datasets                 # Table 2 with calibration stats
//! dpbench list-algorithms               # Table 1 metadata
//! dpbench shapes                        # shape statistics per dataset
//! dpbench run --dataset MEDCOST --algorithms IDENTITY,DAWA \
//!             --scale 100000 --eps 0.1 --trials 5 [--domain 1024]
//!             [--workload prefix|identity|random:2000] [--loss l1|l2]
//!             [--threads N] [--verbose 1] [--csv out.csv]
//!             [--out run.jsonl] [--resume 1] [--shard i/k]
//!             [--max-units N] [--data-cache-mb MB]
//! dpbench merge --out merged.jsonl shard0.jsonl shard1.jsonl ...
//! ```
//!
//! The streaming flags address the grid as a manifest of content-hashed
//! units: `--out` streams every sample (and a completed-unit ledger) to
//! an append-only JSONL file, `--shard i/k` runs the i-th of k disjoint
//! unit slices, `--resume 1` continues an interrupted run from its
//! ledger, and `merge` interleaves shard/partial files back into the
//! canonical byte stream a single uninterrupted process would have
//! written.

use dpbench::harness::sink::{self, JsonlSink, MemorySink, ResultSink, Tee};
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list-datasets") => list_datasets(),
        Some("list-algorithms") => list_algorithms(),
        Some("shapes") => shapes(),
        Some("run") => return run(&args[1..]),
        Some("merge") => return merge(&args[1..]),
        _ => {
            eprintln!("usage: dpbench <list-datasets|list-algorithms|shapes|run|merge> [options]");
            eprintln!("run options: --dataset NAME --algorithms A,B --scale N");
            eprintln!("             [--domain N|RxC] [--eps E] [--trials T]");
            eprintln!("             [--samples S] [--workload prefix|identity|random:N]");
            eprintln!("             [--loss l1|l2] [--threads N] [--verbose 1]");
            eprintln!("             [--csv FILE] [--out FILE.jsonl] [--resume 1]");
            eprintln!("             [--shard i/k] [--max-units N] [--data-cache-mb MB]");
            eprintln!("merge: --out MERGED.jsonl IN1.jsonl IN2.jsonl ...");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `dpbench merge --out OUT IN...`: interleave shard / partial JSONL
/// files into canonical manifest order.
fn merge(args: &[String]) -> ExitCode {
    let mut out = None;
    let mut inputs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            match args.get(i + 1) {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            inputs.push(args[i].clone());
            i += 1;
        }
    }
    let Some(out) = out else {
        eprintln!("error: merge requires --out FILE");
        return ExitCode::FAILURE;
    };
    if inputs.is_empty() {
        eprintln!("error: merge requires at least one input file");
        return ExitCode::FAILURE;
    }
    // Stream straight to the output file; merge_jsonl holds the unit
    // table in memory but the rendered bytes never are.
    let result = std::fs::File::create(&out)
        .map_err(|e| std::io::Error::new(e.kind(), format!("creating {out}: {e}")))
        .and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            sink::merge_jsonl(&inputs, &mut w)?;
            use std::io::Write;
            w.flush()
        });
    if let Err(e) = result {
        eprintln!("error merging: {e}");
        return ExitCode::FAILURE;
    }
    println!("merged {} files into {out}", inputs.len());
    ExitCode::SUCCESS
}

fn list_datasets() {
    println!(
        "{:<12} {:>12} {:>8} {:>10}  source family",
        "name", "orig scale", "% zero", "domain"
    );
    for d in dpbench::datasets::catalog::all_datasets() {
        println!(
            "{:<12} {:>12} {:>7.1}% {:>10}",
            d.name,
            d.original_scale,
            d.zero_fraction * 100.0,
            d.base_domain.to_string(),
        );
    }
}

fn list_algorithms() {
    println!(
        "{:<11} {:<8} {:<10} {:>4} {:>4} {:<9} {:<10} {:<12}",
        "name", "dims", "type", "H", "P", "sideinfo", "consistent", "exchangeable"
    );
    for info in dpbench::algorithms::registry::table1() {
        println!(
            "{:<11} {:<8} {:<10} {:>4} {:>4} {:<9} {:<10} {:<12}",
            info.name,
            format!("{:?}", info.dims),
            if info.data_dependent {
                "data-dep"
            } else {
                "indep"
            },
            if info.hierarchical { "H" } else { "" },
            if info.partitioning { "P" } else { "" },
            info.side_info.as_deref().unwrap_or(""),
            info.consistent,
            info.scale_eps_exchangeable,
        );
    }
}

fn shapes() {
    println!(
        "{:<12} {:>9} {:>8} {:>9} {:>10} {:>9}",
        "name", "entropy*", "gini", "top cell", "support", "tv-smooth"
    );
    for d in dpbench::datasets::catalog::all_datasets() {
        let s = dpbench::datasets::shape_stats(&d.base_shape());
        println!(
            "{:<12} {:>9.3} {:>8.3} {:>9.4} {:>9.1}% {:>9.4}",
            d.name,
            s.normalized_entropy,
            s.gini,
            s.top_cell,
            s.support_fraction * 100.0,
            s.total_variation_1d,
        );
    }
    println!("\n* entropy normalized by ln(n); 1.0 = uniform shape");
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        let val = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(flags)
}

fn run(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(dataset_name) = flags.get("dataset") else {
        eprintln!("error: --dataset is required (see `dpbench list-datasets`)");
        return ExitCode::FAILURE;
    };
    let Some(dataset) = dpbench::datasets::catalog::by_name(dataset_name) else {
        eprintln!("error: unknown dataset {dataset_name}");
        return ExitCode::FAILURE;
    };
    let algorithms: Vec<String> = flags
        .get("algorithms")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["IDENTITY".into(), "DAWA".into()]);
    for a in &algorithms {
        if mechanism_by_name(a).is_none() {
            eprintln!("error: unknown algorithm {a} (see `dpbench list-algorithms`)");
            return ExitCode::FAILURE;
        }
    }
    let scale: u64 = flags
        .get("scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let domain = match flags.get("domain") {
        Some(s) => match dpbench::harness::results::parse_domain(s) {
            Some(d) => d,
            None => {
                eprintln!("error: bad --domain {s} (use N or RxC)");
                return ExitCode::FAILURE;
            }
        },
        None => dataset.base_domain,
    };
    let epsilon: f64 = flags.get("eps").and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let trials: usize = flags
        .get("trials")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let samples: usize = flags
        .get("samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let workload = match flags.get("workload").map(String::as_str) {
        None => {
            if domain.dims() == 1 {
                WorkloadSpec::Prefix
            } else {
                WorkloadSpec::RandomRanges(2000)
            }
        }
        Some("prefix") => WorkloadSpec::Prefix,
        Some("identity") => WorkloadSpec::Identity,
        Some(s) if s.starts_with("random:") => match s["random:".len()..].parse() {
            Ok(n) => WorkloadSpec::RandomRanges(n),
            Err(_) => {
                eprintln!("error: bad workload {s}");
                return ExitCode::FAILURE;
            }
        },
        Some(s) => {
            eprintln!("error: unknown workload {s}");
            return ExitCode::FAILURE;
        }
    };
    let loss = match flags.get("loss").map(String::as_str) {
        None | Some("l2") => Loss::L2,
        Some("l1") => Loss::L1,
        Some(s) => {
            eprintln!("error: unknown loss {s} (use l1 or l2)");
            return ExitCode::FAILURE;
        }
    };
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("error: --threads needs a positive integer, got {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    let verbose = flags.get("verbose").map(|v| v == "1").unwrap_or(false);
    let resume = flags.get("resume").map(|v| v == "1").unwrap_or(false);
    let out = flags.get("out").cloned();
    let shard: Option<(usize, usize)> = match flags.get("shard") {
        None => None,
        Some(s) => match s.split_once('/').and_then(|(i, k)| {
            let i: usize = i.parse().ok()?;
            let k: usize = k.parse().ok()?;
            (i < k && k > 0).then_some((i, k))
        }) {
            Some(v) => Some(v),
            None => {
                eprintln!("error: bad --shard {s} (use i/k with i < k, e.g. 0/4)");
                return ExitCode::FAILURE;
            }
        },
    };
    let max_units: Option<usize> = match flags.get("max-units") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --max-units {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    let data_cache_mb: Option<usize> = flags.get("data-cache-mb").and_then(|s| s.parse().ok());
    if resume && out.is_none() {
        eprintln!("error: --resume 1 needs --out FILE (the ledger to continue)");
        return ExitCode::FAILURE;
    }

    let config = ExperimentConfig {
        datasets: vec![dataset],
        scales: vec![scale],
        domains: vec![domain],
        epsilons: vec![epsilon],
        algorithms,
        n_samples: samples,
        n_trials: trials,
        workload,
        loss,
    };
    let mut runner = Runner::new(config);
    if let Some(n) = threads {
        runner.threads = n;
    }
    runner.verbose = verbose;
    runner.max_units = max_units;
    if let Some(mb) = data_cache_mb {
        runner.data_cache_bytes = mb << 20;
    }

    let full = runner.manifest();
    let manifest = match shard {
        Some((i, k)) => full.shard(i, k),
        None => full,
    };
    println!(
        "running {} units ({} trials each{})...",
        manifest.len(),
        manifest.n_trials,
        shard
            .map(|(i, k)| format!(", shard {i}/{k} of {}", manifest.total_units))
            .unwrap_or_default()
    );

    // Execute: results stream to a memory sink for the summary table, and
    // (with --out) to an append-only JSONL ledger. A resumed run appends
    // only the missing units and reads the summary back from the ledger.
    let mut memory = MemorySink::new();
    let stats = if resume {
        let path = out.as_deref().expect("checked above");
        let ledger = match sink::read_ledger(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error reading ledger {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if ledger.fingerprint != manifest.fingerprint {
            eprintln!("error: ledger {path} belongs to a different run configuration");
            return ExitCode::FAILURE;
        }
        let mut jsonl = match JsonlSink::append(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error opening {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        runner.resume(&manifest, &ledger.done, &mut jsonl)
    } else if let Some(path) = out.as_deref() {
        let mut jsonl = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut jsonl]);
        runner.run_with_sink(&manifest, &mut tee)
    } else {
        runner.run_with_sink(&manifest, &mut memory)
    };
    let stats = match stats {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats.skipped > 0 {
        println!(
            "resumed: {} units already in ledger, {} run now",
            stats.skipped, stats.units
        );
    }
    if verbose {
        let plan = runner.plan_cache.stats();
        println!(
            "plan cache: {} plans built, {} hits / {} misses ({:.1}% hit rate)",
            runner.plan_cache.len(),
            plan.hits,
            plan.misses,
            plan.hit_rate() * 100.0
        );
        let d = stats.data_cache;
        println!(
            "data cache: {} hits / {} misses, {} evictions, {} KiB resident",
            d.hits,
            d.misses,
            d.evictions,
            d.resident_bytes >> 10
        );
        let h = stats.hier_cache;
        println!(
            "hierarchy pool: {} hits / {} misses ({:.1}% hit rate)",
            h.hits,
            h.misses,
            h.hit_rate() * 100.0
        );
    }

    // Summary table: from memory for a fresh run; from the ledger (which
    // holds the union of all phases) after a resume.
    let store = if resume {
        match sink::read_store(out.as_deref().expect("checked above")) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading results back: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        memory.into_store()
    };
    println!(
        "\n{:<11} {:>13} {:>13} {:>13}",
        "algorithm", "mean err", "p95 err", "std dev"
    );
    for s in store.summaries() {
        println!(
            "{:<11} {:>13.4e} {:>13.4e} {:>13.4e}",
            s.algorithm, s.summary.mean, s.summary.p95, s.summary.std_dev
        );
    }
    if let Some(path) = flags.get("csv") {
        if let Err(e) = std::fs::write(path, store.to_csv()) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nraw samples written to {path}");
    }
    ExitCode::SUCCESS
}
