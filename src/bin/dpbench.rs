//! `dpbench` — command-line front end to the benchmark.
//!
//! ```text
//! dpbench list-datasets                 # Table 2 with calibration stats
//! dpbench list-algorithms               # Table 1 metadata
//! dpbench shapes                        # shape statistics per dataset
//! dpbench run --dataset MEDCOST --algorithms IDENTITY,DAWA \
//!             --scale 100000 --eps 0.1 --trials 5 [--domain 1024]
//!             [--workload prefix|identity|random:2000] [--loss l1|l2]
//!             [--threads N] [--verbose] [--csv out.csv]
//!             [--out run.jsonl] [--resume] [--shard i/k]
//!             [--from-pos N --until-pos M] [--agg summary.jsonl]
//!             [--max-units N] [--fail-after N] [--unit-delay-ms MS]
//!             [--data-cache-mb MB]
//! dpbench fleet --procs k --out run.jsonl <run flags...>
//!               [--retries N] [--kill-shard i:N] [--agg summary.jsonl]
//!               [--progress] [--stall-timeout SECS] [--steal 0/1]
//!               [--status-file FILE.json] [--slow-shard i:MS]
//!               [--launch-cmd TPL --workdir DIR [--remote-exe PATH]
//!                [--fetch-cmd TPL] [--cleanup-cmd TPL]]
//! dpbench merge --out merged.jsonl shard0.jsonl shard1.jsonl ...
//! dpbench recommend --summaries a.sum.jsonl,b.sum.jsonl
//!                   [--profile profile.json] [--dataset NAME]
//!                   [--domain N|RxC --scale S --eps E]
//! dpbench serve --port 8787 --datasets MEDCOST,NETTRACE \
//!               --tenants alice=1.0,bob=0.5 [--tenant-config FILE]
//!               [--journal spend.jsonl] [--scale N] [--domain N|RxC]
//!               [--threads N] [--batch-window-ms MS] [--seed S]
//!               [--slo] [--profile profile.json] [--verbose]
//!               [--max-conns N] [--max-queue N] [--max-wait-ms MS]
//!               [--header-timeout-ms MS] [--idle-timeout-ms MS]
//!               [--write-timeout-ms MS] [--rate-limit RPS[:BURST]]
//!               [--poller auto|epoll|poll]
//! ```
//!
//! The streaming flags address the grid as a manifest of content-hashed
//! units: `--out` streams every sample (and a completed-unit ledger) to
//! an append-only JSONL file, `--shard i/k` runs the i-th of k disjoint
//! unit slices, `--resume` continues an interrupted run from its ledger,
//! and `merge` interleaves shard/partial files back into the canonical
//! byte stream a single uninterrupted process would have written.
//!
//! `fleet` is the one-command driver over all of that: it launches `k`
//! shards, monitors them, retries/resumes any shard that dies
//! (`--kill-shard i:N` is a built-in crash drill that kills shard `i`'s
//! first attempt after `N` units), and stream-merges the shard ledgers
//! into `--out` — byte-identical to a single-process run. With `--agg`,
//! each shard also ships a mergeable t-digest summary and the fleet
//! combines them without re-reading raw samples.
//!
//! By default shards are local child processes. `--launch-cmd` swaps in
//! a templated wrapper command line — `{cmd}` is replaced by the shard
//! command — so `ssh worker{index} {cmd}` or `docker run … {cmd}` runs
//! the fleet over machines or containers: each shard writes into its own
//! `--workdir` directory and the driver copies ledgers (and summaries)
//! back before validating and merging them. `--progress` tails the
//! (fetched) shard ledgers into live per-shard `done/total` lines, and
//! `--stall-timeout` kills and retries a shard whose ledger stops
//! moving.
//!
//! The fleet is *elastic*: when some shards finish early while a
//! straggler still grinds, the driver re-deals the straggler's
//! unfinished tail to the idle slots as sub-shard launches
//! (`run --shard v/k --from-pos N --until-pos M`) and releases the
//! victim once its units are covered — the merged output is still
//! byte-identical to a one-shot run (`--steal 0` disables).
//! `--status-file` writes an atomically-replaced one-line JSON snapshot
//! of fleet progress (per-shard done counts, attempts, stall kills, and
//! steal events) on every probe tick, safe to poll from dashboards.
//! `--slow-shard i:MS` is the built-in straggler drill (per-unit delay
//! injected on slot `i`), the elasticity analogue of `--kill-shard`.
//! A `--fetch-cmd` template that accepts `{offset}` upgrades copy-backs
//! to incremental, O(new-bytes) ranged fetches.
//!
//! `recommend` turns merged `--agg` summary files into a *selection
//! profile*: per (dimensionality, shape class, scale bucket, ε bucket)
//! cell, the regret-ranked mechanism list with competitive-tie sets and
//! tuned free parameters. The profile file is deterministic (byte-
//! identical regardless of summary merge order) and is what
//! `serve --profile` routes `"mechanism":"auto"` through.
//!
//! `serve` runs the online release server: datasets load once at
//! startup, each `POST /v1/release` passes per-tenant admission control
//! (atomic ε check-and-reserve against a journaled [`BudgetLedger`])
//! before the mechanism draws noise, and `GET /v1/tenants/:id/budget` /
//! `GET /v1/status` expose live balances and counters. SIGINT/SIGTERM
//! drain in-flight requests and fsync the spend journal; a restart with
//! the same `--journal` recovers every balance bit-exactly.
//!
//! [`BudgetLedger`]: dpbench_core::BudgetLedger

use dpbench::harness::fleet::{
    self, CommandTransport, FleetOptions, LaunchSpec, LocalTransport, RemotePaths, ShardLauncher,
};
use dpbench::harness::serve::{self, shutdown, Limits, RateLimit, ServeConfig};
use dpbench::harness::sink::{self, AggregatingSink, JsonlSink, MemorySink, ResultSink, Tee};
use dpbench::harness::{config, RunManifest};
use dpbench::prelude::*;
use dpbench_core::Loss;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Exit code of a `--fail-after` simulated crash (distinct from 1 so a
/// drill is distinguishable from an ordinary CLI error).
const SIMULATED_CRASH_EXIT: u8 = 3;

/// Exit code after a graceful SIGINT/SIGTERM drain (128 + SIGINT, the
/// shell convention — but reached only after sinks flushed cleanly).
const INTERRUPTED_EXIT: u8 = 130;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list-datasets") => list_datasets(),
        Some("list-algorithms") => list_algorithms(),
        Some("shapes") => shapes(),
        Some("run") => return run(&args[1..]),
        Some("fleet") => return run_fleet_cmd(&args[1..]),
        Some("merge") => return merge(&args[1..]),
        Some("recommend") => return recommend_cmd(&args[1..]),
        Some("serve") => return serve_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: dpbench <list-datasets|list-algorithms|shapes|run|fleet|merge|recommend|serve> [options]"
            );
            eprintln!("run options: --dataset NAME --algorithms A,B --scale N");
            eprintln!("             [--domain N|RxC] [--eps E] [--trials T]");
            eprintln!("             [--samples S] [--workload prefix|identity|random:N]");
            eprintln!("             [--loss l1|l2] [--threads N] [--verbose]");
            eprintln!("             [--csv FILE] [--out FILE.jsonl] [--resume]");
            eprintln!("             [--shard i/k] [--from-pos N --until-pos M]");
            eprintln!("             [--agg FILE.jsonl] [--max-units N]");
            eprintln!("             [--fail-after N] [--unit-delay-ms MS]");
            eprintln!("             [--data-cache-mb MB]");
            eprintln!("fleet: --procs K --out FILE.jsonl <run flags...>");
            eprintln!("       [--retries N] [--kill-shard i:N] [--agg FILE.jsonl]");
            eprintln!("       [--progress] [--stall-timeout SECS] [--steal 0/1]");
            eprintln!("       [--status-file FILE.json] [--slow-shard i:MS]");
            eprintln!("       [--launch-cmd TPL --workdir DIR [--remote-exe PATH]");
            eprintln!("        [--fetch-cmd TPL] [--cleanup-cmd TPL]]");
            eprintln!("merge: --out MERGED.jsonl IN1.jsonl IN2.jsonl ...");
            eprintln!("recommend: --summaries A.jsonl,B.jsonl [--profile OUT.json]");
            eprintln!("           [--dataset NAME] [--domain N|RxC --scale S --eps E]");
            eprintln!("serve: --tenants NAME=EPS,... [--tenant-config FILE]");
            eprintln!("       [--port P] [--datasets A,B] [--scale N] [--domain N|RxC]");
            eprintln!("       [--journal FILE.jsonl] [--threads N]");
            eprintln!("       [--batch-window-ms MS] [--seed S] [--slo] [--verbose]");
            eprintln!("       [--profile FILE.json] (auto routes through the profile)");
            eprintln!("       [--max-conns N] [--max-queue N] [--max-wait-ms MS]");
            eprintln!("          (connections park on a readiness poller between requests,");
            eprintln!("           so --max-conns in the thousands is practical; default 1024)");
            eprintln!("       [--header-timeout-ms MS] [--idle-timeout-ms MS]");
            eprintln!("       [--write-timeout-ms MS] [--rate-limit RPS[:BURST]]");
            eprintln!("       [--poller auto|epoll|poll] (auto = epoll on Linux)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `dpbench merge --out OUT IN...`: interleave shard / partial JSONL
/// files into canonical manifest order (streaming k-way merge — inputs
/// are never loaded whole).
fn merge(args: &[String]) -> ExitCode {
    let mut out = None;
    let mut inputs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            match args.get(i + 1) {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            inputs.push(args[i].clone());
            i += 1;
        }
    }
    let Some(out) = out else {
        eprintln!("error: merge requires --out FILE");
        return ExitCode::FAILURE;
    };
    if inputs.is_empty() {
        eprintln!("error: merge requires at least one input file");
        return ExitCode::FAILURE;
    }
    let result = std::fs::File::create(&out)
        .map_err(|e| std::io::Error::new(e.kind(), format!("creating {out}: {e}")))
        .and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            sink::merge_jsonl(&inputs, &mut w)?;
            use std::io::Write;
            w.flush()
        });
    if let Err(e) = result {
        eprintln!("error merging: {e}");
        return ExitCode::FAILURE;
    }
    println!("merged {} files into {out}", inputs.len());
    ExitCode::SUCCESS
}

fn list_datasets() {
    println!(
        "{:<12} {:>12} {:>8} {:>10}  source family",
        "name", "orig scale", "% zero", "domain"
    );
    for d in dpbench::datasets::catalog::all_datasets() {
        println!(
            "{:<12} {:>12} {:>7.1}% {:>10}",
            d.name,
            d.original_scale,
            d.zero_fraction * 100.0,
            d.base_domain.to_string(),
        );
    }
}

fn list_algorithms() {
    println!(
        "{:<11} {:<8} {:<10} {:>4} {:>4} {:<9} {:<10} {:<12}",
        "name", "dims", "type", "H", "P", "sideinfo", "consistent", "exchangeable"
    );
    for info in dpbench::algorithms::registry::table1() {
        println!(
            "{:<11} {:<8} {:<10} {:>4} {:>4} {:<9} {:<10} {:<12}",
            info.name,
            format!("{:?}", info.dims),
            if info.data_dependent {
                "data-dep"
            } else {
                "indep"
            },
            if info.hierarchical { "H" } else { "" },
            if info.partitioning { "P" } else { "" },
            info.side_info.as_deref().unwrap_or(""),
            info.consistent,
            info.scale_eps_exchangeable,
        );
    }
}

fn shapes() {
    println!(
        "{:<12} {:>9} {:>8} {:>9} {:>10} {:>9}",
        "name", "entropy*", "gini", "top cell", "support", "tv-smooth"
    );
    for d in dpbench::datasets::catalog::all_datasets() {
        let s = dpbench::datasets::shape_stats(&d.base_shape());
        println!(
            "{:<12} {:>9.3} {:>8.3} {:>9.4} {:>9.1}% {:>9.4}",
            d.name,
            s.normalized_entropy,
            s.gini,
            s.top_cell,
            s.support_fraction * 100.0,
            s.total_variation_1d,
        );
    }
    println!("\n* entropy normalized by ln(n); 1.0 = uniform shape");
}

/// Flags that may appear bare (`--resume`) or with an explicit value
/// (`--resume 1`).
const BOOL_FLAGS: &[&str] = &["resume", "verbose", "progress", "slo", "steal"];

/// Grid/runner flags shared by `run` and `fleet`.
const GRID_FLAGS: &[&str] = &[
    "dataset",
    "algorithms",
    "scale",
    "domain",
    "eps",
    "trials",
    "samples",
    "workload",
    "loss",
    "threads",
    "verbose",
    "data-cache-mb",
];

/// Flags only `run` accepts (on top of [`GRID_FLAGS`]).
const RUN_ONLY_FLAGS: &[&str] = &[
    "csv",
    "out",
    "resume",
    "shard",
    "from-pos",
    "until-pos",
    "agg",
    "max-units",
    "fail-after",
    "unit-delay-ms",
];

/// Flags only `fleet` accepts (on top of [`GRID_FLAGS`]).
const FLEET_ONLY_FLAGS: &[&str] = &[
    "out",
    "agg",
    "procs",
    "retries",
    "kill-shard",
    "slow-shard",
    "progress",
    "stall-timeout",
    "steal",
    "status-file",
    "launch-cmd",
    "fetch-cmd",
    "cleanup-cmd",
    "workdir",
    "remote-exe",
];

/// Flags `serve` accepts (a different shape from the grid: datasets are
/// plural, there is no trial grid, and tenants replace algorithms).
const SERVE_FLAGS: &[&str] = &[
    "port",
    "datasets",
    "scale",
    "domain",
    "tenants",
    "tenant-config",
    "max-conns",
    "max-queue",
    "max-wait-ms",
    "header-timeout-ms",
    "idle-timeout-ms",
    "write-timeout-ms",
    "rate-limit",
    "poller",
    "journal",
    "threads",
    "batch-window-ms",
    "seed",
    "slo",
    "profile",
    "verbose",
];

/// Flags `recommend` accepts.
const RECOMMEND_FLAGS: &[&str] = &["summaries", "profile", "dataset", "domain", "scale", "eps"];

/// [`GRID_FLAGS`] plus a subcommand's own flags — the full allow-list
/// for `run` and `fleet` (serve passes [`SERVE_FLAGS`] alone; grid
/// flags like `--trials` are meaningless to a server and must error).
fn grid_plus(extra: &[&'static str]) -> Vec<&'static str> {
    GRID_FLAGS.iter().chain(extra).copied().collect()
}

/// Parse `--flag value` pairs, rejecting flag names outside `allowed` —
/// a misspelled flag name (`--trails`) must not silently vanish into a
/// run with default values, for the same reason malformed flag *values*
/// are errors.
fn parse_flags(
    args: &[String],
    subcommand: &str,
    allowed: &[&str],
) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        if !allowed.contains(&key) {
            return Err(format!(
                "unknown flag --{key} for `dpbench {subcommand}` (run `dpbench` for usage)"
            ));
        }
        let next = args.get(i + 1);
        if BOOL_FLAGS.contains(&key) && next.is_none_or(|v| v.starts_with("--")) {
            // Bare boolean flag.
            flags.insert(key.to_string(), "1".to_string());
            i += 1;
            continue;
        }
        let val = next.ok_or_else(|| format!("--{key} needs a value"))?;
        // `--progress true` silently meaning "off" would be the same
        // silent-misparse class as a malformed numeric value; explicit
        // boolean values must be 0 or 1.
        if BOOL_FLAGS.contains(&key) && val != "0" && val != "1" {
            return Err(format!(
                "bad --{key} value {val:?} (use --{key} bare, or --{key} 0/1)"
            ));
        }
        flags.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(flags)
}

/// The grid definition plus runner knobs shared by `run` and `fleet`.
struct RunSpec {
    config: ExperimentConfig,
    threads: Option<usize>,
    verbose: bool,
    data_cache_mb: Option<usize>,
}

/// Build an [`ExperimentConfig`] (and shared runner knobs) from parsed
/// flags — the common front half of `run` and `fleet`.
fn build_spec(flags: &HashMap<String, String>) -> Result<RunSpec, String> {
    let dataset_name = flags
        .get("dataset")
        .ok_or("--dataset is required (see `dpbench list-datasets`)")?;
    let dataset = dpbench::datasets::catalog::by_name(dataset_name)
        .ok_or_else(|| format!("unknown dataset {dataset_name}"))?;
    let algorithms: Vec<String> = flags
        .get("algorithms")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["IDENTITY".into(), "DAWA".into()]);
    for a in &algorithms {
        if mechanism_by_name(a).is_none() {
            return Err(format!(
                "unknown algorithm {a} (see `dpbench list-algorithms`)"
            ));
        }
    }
    // Numeric grid flags parse strictly: a malformed value is an error,
    // never a silent fall-back to the default (an operator typo must not
    // quietly benchmark the wrong grid).
    let scale: u64 = match flags.get("scale") {
        Some(s) => config::parse_flag_value("scale", s)?,
        None => 100_000,
    };
    let domain = match flags.get("domain") {
        Some(s) => dpbench::harness::results::parse_domain(s)
            .ok_or_else(|| format!("bad --domain {s} (use N or RxC)"))?,
        None => dataset.base_domain,
    };
    let epsilon: f64 = match flags.get("eps") {
        Some(s) => config::parse_flag_value("eps", s)?,
        None => 0.1,
    };
    let trials: usize = match flags.get("trials") {
        Some(s) => config::parse_flag_value("trials", s)?,
        None => 5,
    };
    let samples: usize = match flags.get("samples") {
        Some(s) => config::parse_flag_value("samples", s)?,
        None => 1,
    };
    let workload = match flags.get("workload").map(String::as_str) {
        None => {
            if domain.dims() == 1 {
                WorkloadSpec::Prefix
            } else {
                WorkloadSpec::RandomRanges(2000)
            }
        }
        Some("prefix") => WorkloadSpec::Prefix,
        Some("identity") => WorkloadSpec::Identity,
        Some(s) if s.starts_with("random:") => WorkloadSpec::RandomRanges(
            s["random:".len()..]
                .parse()
                .map_err(|_| format!("bad workload {s}"))?,
        ),
        Some(s) => return Err(format!("unknown workload {s}")),
    };
    let loss = match flags.get("loss").map(String::as_str) {
        None | Some("l2") => Loss::L2,
        Some("l1") => Loss::L1,
        Some(s) => return Err(format!("unknown loss {s} (use l1 or l2)")),
    };
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--threads needs a positive integer, got {s}")),
        },
    };
    let config = ExperimentConfig {
        datasets: vec![dataset],
        scales: vec![scale],
        domains: vec![domain],
        epsilons: vec![epsilon],
        algorithms,
        n_samples: samples,
        n_trials: trials,
        workload,
        loss,
    };
    config.validate()?;
    Ok(RunSpec {
        config,
        threads,
        verbose: flags.get("verbose").map(|v| v == "1").unwrap_or(false),
        data_cache_mb: match flags.get("data-cache-mb") {
            Some(s) => Some(config::parse_flag_value("data-cache-mb", s)?),
            None => None,
        },
    })
}

fn run(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args, "run", &grid_plus(RUN_ONLY_FLAGS)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match build_spec(&flags) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let verbose = spec.verbose;
    let resume = flags.get("resume").map(|v| v == "1").unwrap_or(false);
    let out = flags.get("out").cloned();
    let agg_out = flags.get("agg").cloned();
    // A shard launched on a remote machine is the only process on that
    // machine; nothing else can have created its workdir, so the ledger
    // and summary writers make their own parent directories.
    for path in [out.as_deref(), agg_out.as_deref()].into_iter().flatten() {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("error creating directory {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let shard: Option<(usize, usize)> = match flags.get("shard") {
        None => None,
        Some(s) => match s.split_once('/').and_then(|(i, k)| {
            let i: usize = i.parse().ok()?;
            let k: usize = k.parse().ok()?;
            (i < k && k > 0).then_some((i, k))
        }) {
            Some(v) => Some(v),
            None => {
                eprintln!("error: bad --shard {s} (use i/k with i < k, e.g. 0/4)");
                return ExitCode::FAILURE;
            }
        },
    };
    // --from-pos/--until-pos restrict to a span of full-run positions —
    // the sub-shard form the fleet's work stealing launches
    // (`--shard v/k --from-pos N --until-pos M` runs the victim's tail).
    let from_pos: Option<usize> = match flags.get("from-pos") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --from-pos {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    let until_pos: Option<usize> = match flags.get("until-pos") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --until-pos {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    // --unit-delay-ms throttles unit completion — the deterministic
    // straggler behind `fleet --slow-shard` drills.
    let unit_delay: Option<Duration> = match flags.get("unit-delay-ms") {
        None => None,
        Some(s) => match s.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                eprintln!("error: bad --unit-delay-ms {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    let max_units: Option<usize> = match flags.get("max-units") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --max-units {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    // --fail-after N: run N units cleanly, then exit like a crash (for
    // resume/fleet drills). Implies the --max-units cutoff.
    let fail_after: Option<usize> = match flags.get("fail-after") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --fail-after {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    if resume && out.is_none() {
        eprintln!("error: --resume needs --out FILE (the ledger to continue)");
        return ExitCode::FAILURE;
    }

    let mut runner = Runner::new(spec.config);
    if let Some(n) = spec.threads {
        runner.threads = n;
    }
    runner.verbose = verbose;
    runner.max_units = fail_after.or(max_units);
    if let Some(mb) = spec.data_cache_mb {
        runner.data_cache_bytes = mb << 20;
    }

    // Graceful interruption: SIGINT/SIGTERM sets the process-wide flag;
    // a watcher thread relays it to the runner's cancel flag, workers
    // finish their in-flight units, and sinks flush before exit — the
    // ledger stays resumable instead of tearing mid-record.
    shutdown::install();
    let cancel = Arc::new(AtomicBool::new(false));
    runner.cancel = Some(Arc::clone(&cancel));
    let watcher_stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let cancel = Arc::clone(&cancel);
        let stop = Arc::clone(&watcher_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if shutdown::requested() {
                    cancel.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let full = runner.manifest();
    let manifest = match shard {
        Some((i, k)) => full.shard(i, k),
        None => full,
    };
    let manifest = if from_pos.is_some() || until_pos.is_some() {
        manifest.span(from_pos.unwrap_or(0), until_pos.unwrap_or(usize::MAX))
    } else {
        manifest
    };
    println!(
        "running {} units ({} trials each{})...",
        manifest.len(),
        manifest.n_trials,
        shard
            .map(|(i, k)| format!(", shard {i}/{k} of {}", manifest.total_units))
            .unwrap_or_default()
    );

    // Execute: results stream to a memory sink for the summary table, to
    // an append-only JSONL ledger (--out), and to a mergeable t-digest
    // aggregation (--agg). A resumed run appends only the missing units
    // and reads summaries back from the ledger.
    let mut memory = MemorySink::new();
    let mut agg = AggregatingSink::new();
    let stats = if resume {
        let path = out.as_deref().expect("checked above");
        let ledger = match sink::read_ledger(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error reading ledger {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if ledger.fingerprint != manifest.fingerprint {
            eprintln!("error: ledger {path} belongs to a different run configuration");
            match &ledger.cfg {
                Some(cfg) => {
                    for line in config::summary_diff(cfg, &manifest.config_summary) {
                        eprintln!("  {line}");
                    }
                }
                None => eprintln!(
                    "  (ledger predates recorded config summaries; \
                     cannot name the diverging field)"
                ),
            }
            return ExitCode::FAILURE;
        }
        let mut jsonl = match JsonlSink::append(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error opening {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match unit_delay {
            Some(d) => runner.resume(
                &manifest,
                &ledger.done,
                &mut sink::Throttle::new(&mut jsonl, d),
            ),
            None => runner.resume(&manifest, &ledger.done, &mut jsonl),
        }
    } else if let Some(path) = out.as_deref() {
        let mut jsonl = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut tee = Tee::new(vec![
            &mut memory as &mut dyn ResultSink,
            &mut jsonl,
            &mut agg,
        ]);
        match unit_delay {
            Some(d) => runner.run_with_sink(&manifest, &mut sink::Throttle::new(&mut tee, d)),
            None => runner.run_with_sink(&manifest, &mut tee),
        }
    } else {
        let mut tee = Tee::new(vec![&mut memory as &mut dyn ResultSink, &mut agg]);
        match unit_delay {
            Some(d) => runner.run_with_sink(&manifest, &mut sink::Throttle::new(&mut tee, d)),
            None => runner.run_with_sink(&manifest, &mut tee),
        }
    };
    watcher_stop.store(true, Ordering::Relaxed);
    let _ = watcher.join();
    let stats = match stats {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if shutdown::requested() && fail_after.is_none() {
        eprintln!(
            "interrupted: {} unit(s) completed and flushed; resume with --resume",
            stats.units
        );
        return ExitCode::from(INTERRUPTED_EXIT);
    }
    if let Some(n) = fail_after {
        eprintln!(
            "simulated crash: stopped after {} unit(s) (--fail-after {n}); \
             resume with --resume",
            stats.units
        );
        return ExitCode::from(SIMULATED_CRASH_EXIT);
    }
    if stats.skipped > 0 {
        println!(
            "resumed: {} units already in ledger, {} run now",
            stats.skipped, stats.units
        );
    }
    if verbose {
        let plan = runner.plan_cache.stats();
        println!(
            "plan cache: {} plans built, {} hits / {} misses ({:.1}% hit rate)",
            runner.plan_cache.len(),
            plan.hits,
            plan.misses,
            plan.hit_rate() * 100.0
        );
        let d = stats.data_cache;
        println!(
            "data cache: {} hits / {} misses, {} evictions, {} KiB resident",
            d.hits,
            d.misses,
            d.evictions,
            d.resident_bytes >> 10
        );
        let h = stats.hier_cache;
        println!(
            "hierarchy pool: {} hits / {} misses ({:.1}% hit rate)",
            h.hits,
            h.misses,
            h.hit_rate() * 100.0
        );
    }

    // The mergeable per-shard summary: streamed directly on a fresh run,
    // rebuilt from the ledger (which holds the union of all phases)
    // after a resume.
    if let Some(agg_path) = agg_out.as_deref() {
        let result = if resume {
            sink::summary_from_ledger(out.as_deref().expect("checked above"))
                .and_then(|mut rebuilt| rebuilt.write_summary_file(agg_path))
        } else {
            agg.write_summary_file(agg_path)
        };
        if let Err(e) = result {
            eprintln!("error writing summary {agg_path}: {e}");
            return ExitCode::FAILURE;
        }
        if verbose {
            println!("mergeable summary written to {agg_path}");
        }
    }

    // Summary table: from memory for a fresh run; from the ledger (which
    // holds the union of all phases) after a resume.
    let store = if resume {
        match sink::read_store(out.as_deref().expect("checked above")) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading results back: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        memory.into_store()
    };
    println!(
        "\n{:<11} {:>13} {:>13} {:>13}",
        "algorithm", "mean err", "p95 err", "std dev"
    );
    for s in store.summaries() {
        println!(
            "{:<11} {:>13.4e} {:>13.4e} {:>13.4e}",
            s.algorithm, s.summary.mean, s.summary.p95, s.summary.std_dev
        );
    }
    if let Some(path) = flags.get("csv") {
        if let Err(e) = std::fs::write(path, store.to_csv()) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nraw samples written to {path}");
    }
    ExitCode::SUCCESS
}

/// Parse `--tenants alice=1.0,bob=0.5` grants.
fn parse_tenants_flag(s: &str) -> Result<Vec<(String, f64)>, String> {
    let mut tenants = Vec::new();
    for part in s.split(',') {
        let (name, eps) = part
            .split_once('=')
            .ok_or_else(|| format!("bad tenant grant {part:?} (use name=eps)"))?;
        let eps: f64 = eps
            .trim()
            .parse()
            .map_err(|_| format!("bad epsilon in tenant grant {part:?}"))?;
        tenants.push((name.trim().to_string(), eps));
    }
    Ok(tenants)
}

/// Parse a tenant-config file (grammar lives in the harness so the
/// server's hot-reload path reads the file exactly as startup does).
fn parse_tenant_config(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serve::parse_tenant_grants(&text).map_err(|e| format!("{path} {e}"))
}

/// `dpbench recommend`: build a selection profile from merged `--agg`
/// summary files, optionally write it to a file `serve --profile` can
/// route through, and (given `--domain --scale --eps`) print the
/// regret-ranked recommendation for that concrete query.
fn recommend_cmd(args: &[String]) -> ExitCode {
    use dpbench::harness::{SelectionProfile, SelectorQuery, ShapeClass};
    let flags = match parse_flags(args, "recommend", RECOMMEND_FLAGS) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = (|| -> Result<(), String> {
        let Some(summaries) = flags.get("summaries") else {
            return Err("recommend requires --summaries FILE[,FILE...]".into());
        };
        let paths: Vec<PathBuf> = summaries
            .split(',')
            .filter(|s| !s.is_empty())
            .map(PathBuf::from)
            .collect();
        if paths.is_empty() {
            return Err("--summaries needs at least one file".into());
        }
        let profile = SelectionProfile::from_summary_files(&paths)
            .map_err(|e| format!("building profile: {e}"))?;
        println!(
            "profile: {} cell(s) from {} summary file(s), {} error sample(s)",
            profile.cells.len(),
            profile.sources,
            profile.total_samples
        );
        if let Some(out) = flags.get("profile") {
            profile
                .write_file(out)
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote profile to {out}");
        }

        let query_parts = ["domain", "scale", "eps"]
            .iter()
            .filter(|f| flags.contains_key(**f))
            .count();
        if query_parts == 0 {
            if !flags.contains_key("profile") {
                return Err(
                    "nothing to do: give --profile OUT.json and/or a query (--domain N|RxC --scale S --eps E)"
                        .into(),
                );
            }
            return Ok(());
        }
        if query_parts != 3 {
            return Err("a query needs all three of --domain, --scale, and --eps".into());
        }
        let domain_s = flags.get("domain").expect("checked above");
        let domain = dpbench::harness::results::parse_domain(domain_s)
            .ok_or_else(|| format!("bad --domain {domain_s} (use N or RxC)"))?;
        let scale: u64 = config::parse_flag_value("scale", flags.get("scale").expect("checked"))?;
        let eps: f64 = config::parse_flag_value("eps", flags.get("eps").expect("checked"))?;
        if !(eps.is_finite() && eps > 0.0) {
            return Err("--eps must be positive and finite".into());
        }
        let shape = match flags.get("dataset") {
            Some(name) => {
                if dpbench::datasets::catalog::by_name(name).is_none() {
                    return Err(format!(
                        "unknown dataset {name} (see `dpbench list-datasets`)"
                    ));
                }
                Some(ShapeClass::of_dataset(name))
            }
            None => None,
        };
        let query = SelectorQuery {
            domain,
            shape,
            scale,
            epsilon: eps,
        };
        let Some(rec) = profile.lookup(&query) else {
            return Err(format!(
                "profile has no cell for domain {domain}; run a fleet at this dimensionality first"
            ));
        };
        match shape {
            Some(s) => println!(
                "query: domain={domain} scale={scale} eps={eps} shape={} ({})",
                s.as_str(),
                flags.get("dataset").expect("shape implies dataset")
            ),
            None => println!("query: domain={domain} scale={scale} eps={eps}"),
        }
        println!("decided by: {}", rec.reason());
        println!(
            "{:<4} {:<11} {:>8} {:>13} {:>13} {:>6}  {:<4} params",
            "rank", "mechanism", "regret", "mean err", "p95 err", "n", "tie"
        );
        for (i, m) in rec.cell.ranked.iter().enumerate() {
            println!(
                "{:<4} {:<11} {:>8.3} {:>13.6} {:>13.6} {:>6}  {:<4} {}",
                i + 1,
                m.mechanism,
                m.regret,
                m.mean_error,
                m.p95_error,
                m.n,
                if m.competitive { "yes" } else { "" },
                m.params.as_deref().unwrap_or("-"),
            );
        }
        let winner = rec.cell.winner();
        println!(
            "winner: {} (regret {:.3}, confidence {})",
            winner.mechanism,
            winner.regret,
            rec.confidence.as_str()
        );
        let ties = rec.cell.ties();
        if ties.len() > 1 {
            println!("competitive tie set: {}", ties.join(", "));
        }
        Ok(())
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dpbench serve`: start the online release server and run until a
/// shutdown signal, then drain and fsync the spend journal.
fn serve_cmd(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args, "serve", SERVE_FLAGS) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = (|| -> Result<ServeConfig, String> {
        let port: u16 = match flags.get("port") {
            Some(s) => config::parse_flag_value("port", s)?,
            None => 8787,
        };
        let datasets: Vec<String> = flags
            .get("datasets")
            .map(|s| s.split(',').map(str::to_string).collect())
            .unwrap_or_else(|| vec!["MEDCOST".into()]);
        for name in &datasets {
            if dpbench::datasets::catalog::by_name(name).is_none() {
                return Err(format!(
                    "unknown dataset {name} (see `dpbench list-datasets`)"
                ));
            }
        }
        let scale: u64 = match flags.get("scale") {
            Some(s) => config::parse_flag_value("scale", s)?,
            None => 100_000,
        };
        let domain = match flags.get("domain") {
            Some(s) => dpbench::harness::results::parse_domain(s)
                .ok_or_else(|| format!("bad --domain {s} (use N or RxC)"))?,
            None => {
                // Default to the first dataset's base domain — every
                // loaded dataset serves at one common domain.
                dpbench::datasets::catalog::by_name(&datasets[0])
                    .expect("validated above")
                    .base_domain
            }
        };
        let mut tenants = Vec::new();
        if let Some(path) = flags.get("tenant-config") {
            tenants.extend(parse_tenant_config(path)?);
        }
        if let Some(s) = flags.get("tenants") {
            tenants.extend(parse_tenants_flag(s)?);
        }
        let threads: usize = match flags.get("threads") {
            Some(s) => config::parse_flag_value("threads", s)?,
            None => 4,
        };
        let batch_ms: u64 = match flags.get("batch-window-ms") {
            Some(s) => config::parse_flag_value("batch-window-ms", s)?,
            None => 0,
        };
        let seed: u64 = match flags.get("seed") {
            Some(s) => config::parse_flag_value("seed", s)?,
            None => 0,
        };
        let mut limits = Limits::default();
        if let Some(s) = flags.get("max-conns") {
            limits.max_conns = config::parse_flag_value("max-conns", s)?;
        }
        if let Some(s) = flags.get("max-queue") {
            limits.max_queue = config::parse_flag_value("max-queue", s)?;
        }
        let ms_flag = |name: &str| -> Result<Option<Duration>, String> {
            match flags.get(name) {
                Some(s) => Ok(Some(Duration::from_millis(config::parse_flag_value(
                    name, s,
                )?))),
                None => Ok(None),
            }
        };
        if let Some(d) = ms_flag("max-wait-ms")? {
            limits.max_wait = d;
        }
        if let Some(d) = ms_flag("header-timeout-ms")? {
            limits.header_timeout = d;
        }
        if let Some(d) = ms_flag("idle-timeout-ms")? {
            limits.idle_timeout = d;
        }
        if let Some(d) = ms_flag("write-timeout-ms")? {
            limits.write_timeout = d;
        }
        if let Some(s) = flags.get("rate-limit") {
            limits.rate_limit = Some(RateLimit::parse(s)?);
        }
        let poller = match flags.get("poller") {
            Some(s) => serve::Backend::parse(s)?,
            None => serve::Backend::Auto,
        };
        Ok(ServeConfig {
            addr: format!("127.0.0.1:{port}"),
            datasets,
            scale,
            domain,
            tenants,
            tenant_config: flags.get("tenant-config").map(PathBuf::from),
            journal: flags.get("journal").map(PathBuf::from),
            threads,
            batch_window: Duration::from_millis(batch_ms),
            limits,
            poller,
            seed,
            slo: flags.get("slo").map(|v| v == "1").unwrap_or(false),
            profile: flags.get("profile").map(PathBuf::from),
            verbose: flags.get("verbose").map(|v| v == "1").unwrap_or(false),
        })
    })();
    let cfg = match parsed {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    shutdown::install();
    shutdown::install_reload();
    let n_tenants = cfg.tenants.len();
    let handle = match serve::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error starting server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving on http://{} ({n_tenants} tenant(s); POST /v1/release, \
         GET /v1/tenants/:id/budget, GET /v1/status, GET /v1/healthz)",
        handle.addr()
    );
    while !shutdown::requested() {
        if shutdown::take_reload() {
            // SIGHUP: re-read the tenant config (and selection profile,
            // when one is configured) and apply them in place.
            match handle.reload() {
                Ok(o) => eprintln!(
                    "config reloaded: {} added, {} extended, {} shrunk, {} unchanged",
                    o.added, o.extended, o.shrunk, o.unchanged
                ),
                Err(e) => eprintln!("reload failed (config unchanged): {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested: draining in-flight requests...");
    match handle.shutdown() {
        Ok(()) => {
            eprintln!("spend journal synced; bye");
            ExitCode::from(INTERRUPTED_EXIT)
        }
        Err(e) => {
            eprintln!("error syncing spend journal: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The shard command recipe shared by both transports: the `run`
/// subcommand argv for one shard attempt, given where that attempt
/// should write its ledger and summary.
#[derive(Clone)]
struct ShardArgs {
    /// Shared `run` flags (everything but out/shard/resume/fail-after).
    base_args: Vec<String>,
    /// Crash drill: kill this shard's first attempt after N units.
    kill_shard: Option<(usize, usize)>,
    /// Straggler drill: per-unit delay injected on this *slot* — a
    /// machine property, so a stolen tail running on a fast slot runs
    /// fast even when its victim is the slow one.
    slow_shard: Option<(usize, u64)>,
}

impl ShardArgs {
    /// Arguments after the program name for one attempt — a primary
    /// shard, or a stolen tail (`--shard victim/k --from-pos/--until-pos`,
    /// never resumed, never crash-drilled).
    fn run_args(&self, spec: &LaunchSpec, ledger: &Path, summary: Option<&Path>) -> Vec<String> {
        let mut args = vec!["run".to_string()];
        args.extend(self.base_args.iter().cloned());
        args.push("--out".into());
        args.push(ledger.display().to_string());
        args.push("--shard".into());
        match spec.steal {
            Some(st) => {
                args.push(format!("{}/{}", st.victim, spec.procs));
                args.push("--from-pos".into());
                args.push(st.from_pos.to_string());
                args.push("--until-pos".into());
                args.push(st.until_pos.to_string());
            }
            None => args.push(format!("{}/{}", spec.index, spec.procs)),
        }
        if spec.resume {
            args.push("--resume".into());
        }
        if let Some(summary) = summary {
            args.push("--agg".into());
            args.push(summary.display().to_string());
        }
        if let Some((victim, units)) = self.kill_shard {
            if spec.steal.is_none() && victim == spec.index && spec.attempt == 0 {
                args.push("--fail-after".into());
                args.push(units.to_string());
            }
        }
        if let Some((slot, ms)) = self.slow_shard {
            if slot == spec.index {
                args.push("--unit-delay-ms".into());
                args.push(ms.to_string());
            }
        }
        args
    }
}

/// Spawns `dpbench run --shard i/k` children, teeing each child's stderr
/// to `<ledger>.log` so k concurrent shards don't interleave on the
/// parent's terminal.
struct CliShardLauncher {
    exe: PathBuf,
    args: ShardArgs,
    /// Request a mergeable summary (`--agg`) from every shard.
    want_agg: bool,
    /// The fleet's merged output path (shard paths derive from it).
    out: PathBuf,
}

impl ShardLauncher for CliShardLauncher {
    fn launch(&self, spec: &LaunchSpec) -> std::io::Result<std::process::Child> {
        // Steals ship no summary: the fleet's t-digest merge reads the
        // primaries, and the merged ledger is the canonical artifact.
        let summary = (self.want_agg && spec.steal.is_none())
            .then(|| fleet::shard_summary_path(&self.out, spec.index));
        let mut cmd = std::process::Command::new(&self.exe);
        cmd.args(self.args.run_args(spec, &spec.ledger, summary.as_deref()));
        // Append: the log keeps the whole attempt history of the shard.
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(spec.ledger.with_extension("log"))?;
        cmd.stdout(std::process::Stdio::null());
        cmd.stderr(std::process::Stdio::from(log));
        cmd.spawn()
    }
}

/// Parse and validate `--kill-shard i:N`. An out-of-range shard index is
/// its own error (naming the range) rather than a generic format
/// complaint — and never accepted silently: a drill that targets a
/// nonexistent shard would otherwise "pass" by testing nothing.
fn parse_kill_shard(s: &str, procs: usize) -> Result<(usize, usize), String> {
    let (i, n) = s
        .split_once(':')
        .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)))
        .ok_or_else(|| format!("bad --kill-shard {s} (use i:N, e.g. 1:5)"))?;
    if i >= procs {
        return Err(format!(
            "--kill-shard shard index {i} is out of range (fleet has {procs} shard(s), \
             valid indexes are 0..={})",
            procs - 1
        ));
    }
    Ok((i, n))
}

/// Parse and validate `--slow-shard i:MS` — same shape and same
/// out-of-range contract as `--kill-shard`.
fn parse_slow_shard(s: &str, procs: usize) -> Result<(usize, u64), String> {
    let (i, ms) = s
        .split_once(':')
        .and_then(|(i, ms)| Some((i.parse::<usize>().ok()?, ms.parse::<u64>().ok()?)))
        .ok_or_else(|| format!("bad --slow-shard {s} (use i:MS, e.g. 1:200)"))?;
    if i >= procs {
        return Err(format!(
            "--slow-shard shard index {i} is out of range (fleet has {procs} shard(s), \
             valid indexes are 0..={})",
            procs - 1
        ));
    }
    Ok((i, ms))
}

/// `dpbench fleet`: expand the manifest once, launch `--procs` shards
/// (local children, or through a `--launch-cmd` transport with per-shard
/// workdirs and copy-back), retry/resume failures, and merge to `--out`
/// byte-identically to a single-process run.
fn run_fleet_cmd(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args, "fleet", &grid_plus(FLEET_ONLY_FLAGS)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match build_spec(&flags) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let procs: usize = match flags.get("procs") {
        None => {
            eprintln!("error: fleet requires --procs K (a positive integer)");
            return ExitCode::FAILURE;
        }
        Some(s) => match config::parse_flag_value("procs", s) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if procs == 0 {
        eprintln!("error: --procs must be at least 1");
        return ExitCode::FAILURE;
    }
    let Some(out) = flags.get("out").cloned() else {
        eprintln!("error: fleet requires --out FILE.jsonl (the merged output)");
        return ExitCode::FAILURE;
    };
    let retries: usize = match flags.get("retries") {
        None => 2,
        Some(s) => match config::parse_flag_value("retries", s) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let kill_shard: Option<(usize, usize)> = match flags.get("kill-shard") {
        None => None,
        Some(s) => match parse_kill_shard(s, procs) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let slow_shard: Option<(usize, u64)> = match flags.get("slow-shard") {
        None => None,
        Some(s) => match parse_slow_shard(s, procs) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let steal = flags.get("steal").map(|v| v == "1").unwrap_or(true);
    let status_file = flags.get("status-file").map(PathBuf::from);
    let stall_timeout = match flags.get("stall-timeout") {
        None => None,
        Some(s) => match config::parse_flag_value::<f64>("stall-timeout", s) {
            // try_from_secs_f64 rejects NaN/inf/overflow; `inf` parses as
            // a positive f64 and would panic in from_secs_f64.
            Ok(secs) if secs > 0.0 => match std::time::Duration::try_from_secs_f64(secs) {
                Ok(d) => Some(d),
                Err(_) => {
                    eprintln!("error: --stall-timeout {s} is not a representable duration");
                    return ExitCode::FAILURE;
                }
            },
            Ok(_) => {
                eprintln!("error: --stall-timeout must be positive");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let progress = flags.get("progress").map(|v| v == "1").unwrap_or(false);
    let agg_out = flags.get("agg").cloned();
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error locating dpbench binary: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Children share the grid flags; threads divide across the fleet
    // (explicit --threads T means T total, like a single-process run).
    let total_threads = spec.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let child_threads = (total_threads / procs).max(1);
    let mut base_args: Vec<String> = Vec::new();
    for key in [
        "dataset",
        "algorithms",
        "scale",
        "domain",
        "eps",
        "trials",
        "samples",
        "workload",
        "loss",
        "data-cache-mb",
    ] {
        if let Some(v) = flags.get(key) {
            base_args.push(format!("--{key}"));
            base_args.push(v.clone());
        }
    }
    base_args.push("--threads".into());
    base_args.push(child_threads.to_string());

    let manifest = RunManifest::from_config(&spec.config);
    println!(
        "fleet: {} units across {procs} process(es) ({} trials each, {} thread(s)/shard)...",
        manifest.len(),
        manifest.n_trials,
        child_threads
    );
    let want_agg = agg_out.is_some();
    let shard_args = ShardArgs {
        base_args,
        kill_shard,
        slow_shard,
    };
    let opts = FleetOptions {
        procs,
        max_attempts: retries + 1,
        verbose: spec.verbose,
        progress,
        stall_timeout,
        fetch_summaries: want_agg,
        steal,
        status_file,
        ..FleetOptions::default()
    };

    // Pick the transport: local child processes by default; a templated
    // wrapper command line (ssh / docker run / sh -c) with per-shard
    // workdirs and copy-back when --launch-cmd is given.
    let report = if let Some(launch_cmd) = flags.get("launch-cmd") {
        let Some(workdir) = flags.get("workdir") else {
            eprintln!("error: --launch-cmd requires --workdir DIR (per-shard scratch space)");
            return ExitCode::FAILURE;
        };
        let remote_exe = flags
            .get("remote-exe")
            .cloned()
            .unwrap_or_else(|| exe.display().to_string());
        let build = {
            let shard_args = shard_args.clone();
            move |spec: &LaunchSpec, paths: &RemotePaths| -> Vec<String> {
                let summary = (want_agg && spec.steal.is_none()).then_some(paths.summary.as_path());
                let mut argv = vec![remote_exe.clone()];
                argv.extend(shard_args.run_args(spec, &paths.ledger, summary));
                argv
            }
        };
        let transport = match CommandTransport::new(launch_cmd.clone(), workdir, Box::new(build)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let transport = match flags.get("fetch-cmd") {
            Some(t) => transport.with_fetch_template(t.clone()),
            None => transport,
        };
        let transport = match flags.get("cleanup-cmd") {
            Some(t) => transport.with_cleanup_template(t.clone()),
            None => transport,
        };
        fleet::run_fleet_with(&manifest, &transport, Path::new(&out), &opts)
    } else {
        let launcher = CliShardLauncher {
            exe,
            args: shard_args,
            want_agg,
            out: PathBuf::from(&out),
        };
        fleet::run_fleet_with(
            &manifest,
            &LocalTransport {
                launcher: &launcher,
            },
            Path::new(&out),
            &opts,
        )
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &report.shards {
        println!(
            "  shard {}: {} units, {} launch(es){}{}{}",
            s.index,
            s.units,
            s.attempts,
            if s.resumed { ", resumed" } else { "" },
            if s.stall_kills > 0 {
                format!(", {} stall kill(s)", s.stall_kills)
            } else {
                String::new()
            },
            if s.tails_stolen > 0 {
                format!(", {} tail(s) stolen", s.tails_stolen)
            } else {
                String::new()
            }
        );
    }
    for ev in &report.steals {
        println!(
            "  steal {}: {} unit(s) of shard {} (pos {}..{}) ran on slot {}",
            ev.seq, ev.units, ev.victim, ev.from_pos, ev.until_pos, ev.slot
        );
    }
    if spec.verbose {
        println!(
            "  copy-back traffic: {} byte(s) full, {} byte(s) ranged over {} probe tick(s)",
            report.fetch_full_bytes,
            report.fetch_ranged_bytes,
            report.probe_fetch_bytes.len()
        );
    }
    println!("merged {} units into {out}", report.merged_units);

    // Cross-shard aggregation: merge the shards' t-digest summaries —
    // no raw sample ever crosses a shard boundary. A shard that was
    // already complete before this fleet ran may lack a summary file;
    // rebuild it locally from its ledger.
    if let Some(agg_path) = agg_out {
        let mut shard_summaries: Vec<PathBuf> = Vec::with_capacity(procs);
        for i in 0..procs {
            let summary = fleet::shard_summary_path(Path::new(&out), i);
            let expected = manifest.shard(i, procs).len() as u64 * manifest.n_trials as u64;
            let fresh = sink::read_summary(&summary)
                .ok()
                .is_some_and(|s| s.samples_seen() == expected);
            if !fresh {
                let ledger = fleet::shard_ledger_path(Path::new(&out), i);
                let rebuilt = sink::summary_from_ledger(&ledger)
                    .and_then(|mut s| s.write_summary_file(&summary));
                if let Err(e) = rebuilt {
                    eprintln!("error rebuilding shard {i} summary: {e}");
                    return ExitCode::FAILURE;
                }
            }
            shard_summaries.push(summary);
        }
        let mut merged = match sink::merge_summary_files(&shard_summaries) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error merging shard summaries: {e}");
                return ExitCode::FAILURE;
            }
        };
        if merged.fingerprint() != Some(manifest.fingerprint) {
            eprintln!("error: merged summary fingerprint does not match this fleet's run");
            return ExitCode::FAILURE;
        }
        if let Err(e) = merged.write_summary_file(&agg_path) {
            eprintln!("error writing {agg_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("merged t-digest summary written to {agg_path}");
        println!(
            "\n{:<11} {:>13} {:>13} {:>13}",
            "algorithm", "mean err", "p95 err", "std dev"
        );
        for (alg, _setting, summary) in merged.summaries() {
            println!(
                "{:<11} {:>13.4e} {:>13.4e} {:>13.4e}",
                alg, summary.mean, summary.p95, summary.std_dev
            );
        }
    }
    ExitCode::SUCCESS
}
