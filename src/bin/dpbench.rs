//! `dpbench` — command-line front end to the benchmark.
//!
//! ```text
//! dpbench list-datasets                 # Table 2 with calibration stats
//! dpbench list-algorithms               # Table 1 metadata
//! dpbench shapes                        # shape statistics per dataset
//! dpbench run --dataset MEDCOST --algorithms IDENTITY,DAWA \
//!             --scale 100000 --eps 0.1 --trials 5 [--domain 1024]
//!             [--workload prefix|identity|random:2000] [--loss l1|l2]
//!             [--threads N] [--verbose 1] [--csv out.csv]
//! ```

use dpbench::prelude::*;
use dpbench_core::Loss;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list-datasets") => list_datasets(),
        Some("list-algorithms") => list_algorithms(),
        Some("shapes") => shapes(),
        Some("run") => return run(&args[1..]),
        _ => {
            eprintln!("usage: dpbench <list-datasets|list-algorithms|shapes|run> [options]");
            eprintln!("run options: --dataset NAME --algorithms A,B --scale N");
            eprintln!("             [--domain N|RxC] [--eps E] [--trials T]");
            eprintln!("             [--samples S] [--workload prefix|identity|random:N]");
            eprintln!("             [--loss l1|l2] [--threads N] [--verbose 1]");
            eprintln!("             [--csv FILE]");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn list_datasets() {
    println!(
        "{:<12} {:>12} {:>8} {:>10}  source family",
        "name", "orig scale", "% zero", "domain"
    );
    for d in dpbench::datasets::catalog::all_datasets() {
        println!(
            "{:<12} {:>12} {:>7.1}% {:>10}",
            d.name,
            d.original_scale,
            d.zero_fraction * 100.0,
            d.base_domain.to_string(),
        );
    }
}

fn list_algorithms() {
    println!(
        "{:<11} {:<8} {:<10} {:>4} {:>4} {:<9} {:<10} {:<12}",
        "name", "dims", "type", "H", "P", "sideinfo", "consistent", "exchangeable"
    );
    for info in dpbench::algorithms::registry::table1() {
        println!(
            "{:<11} {:<8} {:<10} {:>4} {:>4} {:<9} {:<10} {:<12}",
            info.name,
            format!("{:?}", info.dims),
            if info.data_dependent {
                "data-dep"
            } else {
                "indep"
            },
            if info.hierarchical { "H" } else { "" },
            if info.partitioning { "P" } else { "" },
            info.side_info.as_deref().unwrap_or(""),
            info.consistent,
            info.scale_eps_exchangeable,
        );
    }
}

fn shapes() {
    println!(
        "{:<12} {:>9} {:>8} {:>9} {:>10} {:>9}",
        "name", "entropy*", "gini", "top cell", "support", "tv-smooth"
    );
    for d in dpbench::datasets::catalog::all_datasets() {
        let s = dpbench::datasets::shape_stats(&d.base_shape());
        println!(
            "{:<12} {:>9.3} {:>8.3} {:>9.4} {:>9.1}% {:>9.4}",
            d.name,
            s.normalized_entropy,
            s.gini,
            s.top_cell,
            s.support_fraction * 100.0,
            s.total_variation_1d,
        );
    }
    println!("\n* entropy normalized by ln(n); 1.0 = uniform shape");
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        let val = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), val.clone());
        i += 2;
    }
    Ok(flags)
}

fn run(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(dataset_name) = flags.get("dataset") else {
        eprintln!("error: --dataset is required (see `dpbench list-datasets`)");
        return ExitCode::FAILURE;
    };
    let Some(dataset) = dpbench::datasets::catalog::by_name(dataset_name) else {
        eprintln!("error: unknown dataset {dataset_name}");
        return ExitCode::FAILURE;
    };
    let algorithms: Vec<String> = flags
        .get("algorithms")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["IDENTITY".into(), "DAWA".into()]);
    for a in &algorithms {
        if mechanism_by_name(a).is_none() {
            eprintln!("error: unknown algorithm {a} (see `dpbench list-algorithms`)");
            return ExitCode::FAILURE;
        }
    }
    let scale: u64 = flags
        .get("scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let domain = match flags.get("domain") {
        Some(s) => match dpbench::harness::results::parse_domain(s) {
            Some(d) => d,
            None => {
                eprintln!("error: bad --domain {s} (use N or RxC)");
                return ExitCode::FAILURE;
            }
        },
        None => dataset.base_domain,
    };
    let epsilon: f64 = flags.get("eps").and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let trials: usize = flags
        .get("trials")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let samples: usize = flags
        .get("samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let workload = match flags.get("workload").map(String::as_str) {
        None => {
            if domain.dims() == 1 {
                WorkloadSpec::Prefix
            } else {
                WorkloadSpec::RandomRanges(2000)
            }
        }
        Some("prefix") => WorkloadSpec::Prefix,
        Some("identity") => WorkloadSpec::Identity,
        Some(s) if s.starts_with("random:") => match s["random:".len()..].parse() {
            Ok(n) => WorkloadSpec::RandomRanges(n),
            Err(_) => {
                eprintln!("error: bad workload {s}");
                return ExitCode::FAILURE;
            }
        },
        Some(s) => {
            eprintln!("error: unknown workload {s}");
            return ExitCode::FAILURE;
        }
    };
    let loss = match flags.get("loss").map(String::as_str) {
        None | Some("l2") => Loss::L2,
        Some("l1") => Loss::L1,
        Some(s) => {
            eprintln!("error: unknown loss {s} (use l1 or l2)");
            return ExitCode::FAILURE;
        }
    };
    let threads: Option<usize> = match flags.get("threads") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("error: --threads needs a positive integer, got {s}");
                return ExitCode::FAILURE;
            }
        },
    };
    let verbose = flags.get("verbose").map(|v| v == "1").unwrap_or(false);

    let config = ExperimentConfig {
        datasets: vec![dataset],
        scales: vec![scale],
        domains: vec![domain],
        epsilons: vec![epsilon],
        algorithms,
        n_samples: samples,
        n_trials: trials,
        workload,
        loss,
    };
    println!(
        "running {} mechanism executions ({} settings)...",
        config.total_runs(),
        config.settings().len()
    );
    let mut runner = Runner::new(config);
    if let Some(n) = threads {
        runner.threads = n;
    }
    runner.verbose = verbose;
    let store = runner.run();
    if verbose {
        let stats = runner.plan_cache.stats();
        println!(
            "plan cache: {} plans built, {} hits / {} misses ({:.1}% hit rate)",
            runner.plan_cache.len(),
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }

    println!(
        "\n{:<11} {:>13} {:>13} {:>13}",
        "algorithm", "mean err", "p95 err", "std dev"
    );
    for s in store.summaries() {
        println!(
            "{:<11} {:>13.4e} {:>13.4e} {:>13.4e}",
            s.algorithm, s.summary.mean, s.summary.p95, s.summary.std_dev
        );
    }
    if let Some(path) = flags.get("csv") {
        if let Err(e) = std::fs::write(path, store.to_csv()) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nraw samples written to {path}");
    }
    ExitCode::SUCCESS
}
