//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this vendored crate
//! supplies the trait names and derive macros the workspace references.
//! Nothing in the workspace currently serializes through serde (results
//! are exported via hand-written CSV), so the traits are markers: deriving
//! them records serializability intent and keeps the door open for a real
//! serde swap-in later without touching call sites.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

macro_rules! primitive_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
primitive_impls!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
