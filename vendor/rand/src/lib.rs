//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of the rand 0.8 API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ with SplitMix64 seeding. Streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`, but every consumer
//! in this workspace only requires determinism for a fixed seed, not a
//! specific stream.

/// The core trait every random-number generator implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG's raw bits (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `v ∈ [0, n)` by rejection sampling (unbiased).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % n;
        }
    }
}

/// Ranges that can produce a uniform sample (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start + uniform_u64_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                lo + uniform_u64_below(rng, width) as $t
            }
        }
    )*};
}
int_range_impl!(usize, u64, u32, u16, u8);

macro_rules! signed_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, width) as i128) as $t
            }
        }
    )*};
}
signed_range_impl!(i64, i32, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, v) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Not the same stream as upstream rand's ChaCha-based `StdRng`, but a
    /// high-quality, fast, reproducible PRNG — all the workspace requires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must never start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut r = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 7];
        for _ in 0..70_000 {
            hits[r.gen_range(0..7usize)] += 1;
        }
        for &h in &hits {
            assert!((h as f64 / 10_000.0 - 1.0).abs() < 0.05, "hits {hits:?}");
        }
        for _ in 0..1000 {
            let v = r.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_trait_object() {
        let mut r = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&v));
        let i = dyn_rng.gen_range(0..10usize);
        assert!(i < 10);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
