//! No-op `Serialize` / `Deserialize` derives for the offline serde
//! stand-in. Emits empty marker-trait impls; handles plain (non-generic)
//! structs and enums, which covers every derived type in the workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct` / `enum` / `union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "offline serde derive does not support generic type {name}"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, got {other:?}"),
                }
            }
        }
    }
    panic!("no struct/enum/union found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
